"""Tests for the cost model, access paths, join enumeration and annotation."""

import math
import random

import pytest

from repro import Database, DataType, EngineConfig
from repro.core.modes import DynamicMode
from repro.errors import ConfigError
from repro.optimizer import (
    CostModel,
    OperatorCost,
    Optimizer,
    OptimizerCalibration,
    calibrate_unit,
    pages_for,
)
from repro.plans.physical import (
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)

from .conftest import make_two_table_db


class TestOperatorCost:
    def test_total_units(self, config):
        cost = OperatorCost(seq_read_pages=10, rand_read_pages=2, write_pages=4,
                            cpu_units=1.0, stats_cpu_units=0.5)
        total = cost.total_units(config.cost)
        assert total == pytest.approx(10 * 1.0 + 2 * 4.0 + 4 * 1.5 + 1.5)

    def test_plus(self):
        a = OperatorCost(seq_read_pages=1, cpu_units=2)
        b = OperatorCost(seq_read_pages=3, write_pages=1)
        c = a.plus(b)
        assert c.seq_read_pages == 4 and c.write_pages == 1 and c.cpu_units == 2


class TestPagesFor:
    def test_zero_rows(self):
        assert pages_for(0, 100, 4096) == 0.0

    def test_minimum_one_page(self):
        assert pages_for(1, 10, 4096) == 1.0

    def test_scaling(self):
        assert pages_for(1000, 41, 4096) == math.ceil(1000 / (4096 // 41))


class TestCostModelFormulas:
    def test_seq_scan(self, cost_model):
        cost = cost_model.seq_scan(pages=100, rows=5000)
        assert cost.seq_read_pages == 100
        assert cost.cpu_units == pytest.approx(5000 * cost_model.params.cpu_per_tuple)

    def test_index_scan_clustered_vs_unclustered(self, cost_model):
        clustered = cost_model.index_scan(2, 100, 500, True, 50, 200)
        unclustered = cost_model.index_scan(2, 100, 500, False, 50, 200)
        assert clustered.total_units(cost_model.params) < unclustered.total_units(
            cost_model.params
        )

    def test_hash_join_no_spill_when_memory_sufficient(self, cost_model):
        minimum, maximum = cost_model.hash_join_memory(50)
        assert cost_model.hash_join_spill_fraction(50, maximum) == 0.0
        assert cost_model.hash_join_spill_fraction(50, minimum) > 0.3

    def test_hash_join_memory_bounds(self, cost_model):
        minimum, maximum = cost_model.hash_join_memory(100)
        assert minimum >= math.sqrt(100)
        assert maximum >= 100

    def test_hash_join_spill_io_grows_as_memory_shrinks(self, cost_model):
        full = cost_model.hash_join(1000, 50, 5000, 200, 3000, memory_pages=100)
        tight = cost_model.hash_join(1000, 50, 5000, 200, 3000, memory_pages=10)
        assert tight.total_units(cost_model.params) > full.total_units(cost_model.params)
        assert tight.write_pages > 0

    def test_sort_in_memory_vs_external(self, cost_model):
        in_memory = cost_model.sort(1000, 50, memory_pages=100)
        external = cost_model.sort(1000, 50, memory_pages=10)
        assert in_memory.seq_read_pages == 0
        assert external.seq_read_pages == 50 and external.write_pages == 50

    def test_aggregate_spill(self, cost_model):
        fits = cost_model.aggregate(1000, 100, group_pages=10, memory_pages=50)
        spills = cost_model.aggregate(1000, 100, group_pages=10, memory_pages=3)
        assert fits.write_pages == 0
        assert spills.write_pages > 0

    def test_block_nl_join_rescans(self, cost_model):
        one_block = cost_model.block_nl_join(100, 10, 100, 20, memory_pages=50)
        many_blocks = cost_model.block_nl_join(100, 10, 100, 20, memory_pages=3)
        assert many_blocks.seq_read_pages > one_block.seq_read_pages

    def test_collector_cost_scales_with_statistics(self, cost_model):
        bare = cost_model.collector(1000, 0)
        loaded = cost_model.collector(1000, 3)
        assert loaded.stats_cpu_units > bare.stats_cpu_units
        assert bare.stats_cpu_units > 0

    def test_materialize(self, cost_model):
        assert cost_model.materialize(10).write_pages == 10


class TestCalibration:
    def test_estimated_units_grow_with_joins(self):
        cal = OptimizerCalibration()
        assert cal.estimated_units(6) > cal.estimated_units(3) > cal.estimated_units(1)

    def test_calibrate_unit_fits_measurements(self):
        # Synthetic measurements consistent with unit=0.25 at 2000 units/s.
        probe = OptimizerCalibration(unit=0.25)
        samples = [
            (n, probe.estimated_units(n) / 2000.0) for n in (2, 3, 4, 5)
        ]
        fitted = calibrate_unit(samples, cost_units_per_second=2000.0)
        assert fitted.unit == pytest.approx(0.25, rel=1e-6)

    def test_calibrate_requires_samples(self):
        with pytest.raises(ConfigError):
            calibrate_unit([], 2000.0)
        with pytest.raises(ConfigError):
            calibrate_unit([(0, 1.0)], 2000.0)

    def test_invalid_unit(self):
        with pytest.raises(ConfigError):
            OptimizerCalibration(unit=0.0)


class TestAccessPathSelection:
    def test_index_chosen_for_selective_predicate(self):
        db = make_two_table_db()
        db.create_index("ix_r1_a", "r1", "a")
        plan, __, __opt = db.plan("SELECT id one FROM r1 WHERE a = 3", mode=DynamicMode.OFF)
        scans = [n for n in plan.walk() if isinstance(n, IndexScanNode)]
        assert scans, "expected an index scan for a selective equality"
        assert scans[0].low == 3 and scans[0].high == 3

    def test_seq_scan_for_unselective_predicate(self):
        db = make_two_table_db()
        db.create_index("ix_r1_a", "r1", "a")
        plan, __, __opt = db.plan("SELECT id one FROM r1 WHERE a >= 0", mode=DynamicMode.OFF)
        assert any(isinstance(n, SeqScanNode) for n in plan.walk())
        assert not any(isinstance(n, IndexScanNode) for n in plan.walk())

    def test_range_bounds_combined(self):
        db = make_two_table_db(r1_rows=20_000)
        db.create_index("ix_r1_a", "r1", "a", clustered=True)
        plan, __, __opt = db.plan(
            "SELECT id one FROM r1 WHERE a >= 10 AND a < 12", mode=DynamicMode.OFF
        )
        scans = [n for n in plan.walk() if isinstance(n, IndexScanNode)]
        assert scans
        assert scans[0].low == 10 and scans[0].high == 12
        assert scans[0].low_inclusive and not scans[0].high_inclusive

    def test_residual_predicates_filtered_above_index(self):
        db = make_two_table_db()
        db.create_index("ix_r1_a", "r1", "a")
        plan, __, __opt = db.plan(
            "SELECT id one FROM r1 WHERE a = 3 AND b < 10", mode=DynamicMode.OFF
        )
        filters = [n for n in plan.walk() if isinstance(n, FilterNode)]
        index_scans = [n for n in plan.walk() if isinstance(n, IndexScanNode)]
        if index_scans:
            assert filters and len(filters[0].predicates) == 1


class TestJoinEnumeration:
    def test_single_table_plan(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan("SELECT a FROM r1", mode=DynamicMode.OFF)
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, SeqScanNode)

    def test_two_table_hash_join_builds_on_smaller(self):
        db = make_two_table_db(r1_rows=500, r2_rows=20_000)
        plan, __, __opt = db.plan(
            "SELECT r1.a FROM r1, r2 WHERE r1.id = r2.r1_id", mode=DynamicMode.OFF
        )
        joins = [n for n in plan.walk() if isinstance(n, HashJoinNode)]
        assert joins
        build_rows = joins[0].build.est.rows
        probe_rows = joins[0].probe.est.rows
        assert build_rows < probe_rows

    def test_index_nl_join_when_outer_tiny(self):
        db = make_two_table_db(r1_rows=40_000, r2_rows=40_000)
        db.create_index("ix_r2_r1id", "r2", "r1_id", clustered=True)
        plan, __, __opt = db.plan(
            "SELECT r2.c FROM r1, r2 WHERE r1.id = r2.r1_id AND r1.a = 7 AND r1.b = 3",
            mode=DynamicMode.OFF,
        )
        assert any(isinstance(n, IndexNLJoinNode) for n in plan.walk())

    def test_cross_join_falls_back_to_block_nl(self):
        db = make_two_table_db(r1_rows=50, r2_rows=50)
        plan, __, __opt = db.plan("SELECT r1.a FROM r1, r2", mode=DynamicMode.OFF)
        from repro.plans.physical import BlockNLJoinNode

        assert any(isinstance(n, BlockNLJoinNode) for n in plan.walk())

    def test_three_way_join_covers_all_relations(self):
        db = Database()
        rng = random.Random(5)
        for name in ("x", "y", "z"):
            db.create_table(
                name, [("k", DataType.INTEGER), (f"{name}v", DataType.INTEGER)], key=["k"]
            )
            db.load_rows(name, [(i, rng.randrange(20)) for i in range(300)])
        db.analyze()
        plan, __, __opt = db.plan(
            "SELECT x.xv FROM x, y, z WHERE x.k = y.k AND y.k = z.k",
            mode=DynamicMode.OFF,
        )
        assert plan.base_aliases == frozenset({"x", "y", "z"})

    def test_sort_and_limit_on_top(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan(
            "SELECT a, sum(b) s FROM r1 GROUP BY a ORDER BY s LIMIT 3",
            mode=DynamicMode.OFF,
        )
        assert isinstance(plan, LimitNode)
        assert isinstance(plan.child, SortNode)
        assert isinstance(plan.child.child, HashAggregateNode)

    def test_invocation_counter(self):
        db = make_two_table_db()
        __, __s, optimizer = db.plan("SELECT a FROM r1", mode=DynamicMode.OFF)
        assert optimizer.invocations == 1


class TestAnnotation:
    def test_every_node_annotated(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan(
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id GROUP BY r1.a",
            mode=DynamicMode.OFF,
        )
        for node in plan.walk():
            assert node.est.total_cost > 0
            assert node.est.rows >= 0

    def test_total_cost_is_cumulative(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan(
            "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id", mode=DynamicMode.OFF
        )
        for node in plan.walk():
            children_total = sum(c.est.total_cost for c in node.children)
            assert node.est.total_cost == pytest.approx(
                node.est.op_cost + children_total
            )

    def test_memory_demands_only_on_blocking_ops(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan(
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id GROUP BY r1.a",
            mode=DynamicMode.OFF,
        )
        for node in plan.walk():
            if isinstance(node, (SeqScanNode, FilterNode, ProjectNode)):
                assert node.est.max_memory_pages == 0
            if isinstance(node, (HashJoinNode, HashAggregateNode)):
                assert node.est.max_memory_pages >= node.est.min_memory_pages > 0

    def test_allocation_changes_costs(self):
        db = make_two_table_db(r1_rows=20_000, r2_rows=40_000)
        plan, __, optimizer = db.plan(
            "SELECT r1.a one, r2.c two FROM r1, r2 WHERE r1.id = r2.r1_id",
            mode=DynamicMode.OFF,
        )
        join = next(n for n in plan.walk() if isinstance(n, HashJoinNode))
        generous = plan.est.total_cost
        optimizer.annotator(allocation={join.node_id: join.est.min_memory_pages}).annotate(plan)
        assert plan.est.total_cost > generous

    def test_profile_override_replaces_estimates(self):
        from repro.stats.estimator import RelProfile

        db = make_two_table_db()
        plan, __, optimizer = db.plan("SELECT a FROM r1 WHERE a < 50", mode=DynamicMode.OFF)
        filt = next(n for n in plan.walk() if isinstance(n, FilterNode))
        override = RelProfile(rows=7.0, row_bytes=20.0, aliases=frozenset({"r1"}))
        optimizer.annotator(profile_overrides={filt.node_id: override}).annotate(plan)
        assert filt.est.rows == 7.0
        assert plan.est.rows <= 7.0
