"""Unit tests for improved-estimate propagation and remaining-cost math."""

import pytest

from repro import Database, DynamicMode
from repro.core.improve import (
    apply_improved_estimates,
    blocking_consumer,
    hash_join_probe_remaining,
    observed_profiles,
    parent_of,
    remaining_cost,
)
from repro.executor.collector import ObservedStatistics
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.plans.physical import HashJoinNode, StatsCollectorNode
from repro.plans.printer import collector_nodes
from repro.storage import BufferPool, CostClock, TempTableManager

from .conftest import make_two_table_db

SQL = (
    "SELECT r1.a, sum(r2.c) s FROM r1, r2 "
    "WHERE r1.id = r2.r1_id AND r1.a < 50 GROUP BY r1.a"
)


def make_ctx(db):
    clock = CostClock(db.config.cost)
    pool = BufferPool(db.config.buffer_pool_pages, clock)
    return RuntimeContext(
        catalog=db.catalog,
        config=db.config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(db.config),
    )


@pytest.fixture
def setup():
    db = make_two_table_db(r1_rows=5000, r2_rows=20_000)
    plan, scia, optimizer = db.plan(SQL, mode=DynamicMode.FULL)
    ctx = make_ctx(db)
    return db, plan, optimizer, ctx


class TestTreeHelpers:
    def test_parent_of(self, setup):
        __, plan, __o, __c = setup
        for node in plan.walk():
            for child in node.children:
                assert parent_of(plan, child.node_id) is node
        assert parent_of(plan, plan.node_id) is None

    def test_blocking_consumer_is_collector_parent(self, setup):
        __, plan, __o, __c = setup
        collectors = collector_nodes(plan)
        assert collectors
        for collector in collectors:
            consumer = blocking_consumer(plan, collector.node_id)
            assert consumer is not None and consumer.is_blocking


class TestImprovedEstimates:
    def test_observed_profiles_only_for_seen_collectors(self, setup):
        __, plan, __o, ctx = setup
        assert observed_profiles(plan, ctx.observed) == {}
        collector = collector_nodes(plan)[0]
        ctx.observed[collector.node_id] = ObservedStatistics(
            node_id=collector.node_id, row_count=123, row_bytes=20.0
        )
        overrides = observed_profiles(plan, ctx.observed)
        assert set(overrides) == {collector.node_id}
        assert overrides[collector.node_id].rows == 123

    def test_apply_improved_estimates_changes_downstream(self, setup):
        __, plan, optimizer, ctx = setup
        optimizer.annotator().annotate(plan)
        before_total = plan.est.total_cost
        collector = collector_nodes(plan)[0]
        # Pretend the collector saw 10x the estimated rows.
        ctx.observed[collector.node_id] = ObservedStatistics(
            node_id=collector.node_id,
            row_count=int(collector.est.rows * 10) + 1,
            row_bytes=collector.est.row_bytes,
        )
        apply_improved_estimates(plan, optimizer, ctx)
        assert plan.est.total_cost > before_total

    def test_remaining_cost_excludes_completed(self, setup):
        __, plan, optimizer, ctx = setup
        optimizer.annotator().annotate(plan)
        full = remaining_cost(plan, ctx, optimizer.cost_model)
        assert full == pytest.approx(
            sum(n.est.op_cost for n in plan.walk())
        )
        # Mark the deepest subtree completed: remaining shrinks accordingly.
        some_leaf = [n for n in plan.walk() if not n.children][0]
        ctx.completed.add(some_leaf.node_id)
        reduced = remaining_cost(plan, ctx, optimizer.cost_model)
        assert reduced == pytest.approx(full - some_leaf.est.op_cost)

    def test_remaining_cost_in_flight_join_owes_probe_only(self, setup):
        __, plan, optimizer, ctx = setup
        optimizer.annotator().annotate(plan)
        join = next(n for n in plan.walk() if isinstance(n, HashJoinNode))
        full = remaining_cost(plan, ctx, optimizer.cost_model)
        with_in_flight = remaining_cost(
            plan, ctx, optimizer.cost_model, in_flight=join
        )
        assert with_in_flight <= full

    def test_probe_remaining_positive(self, setup):
        db, plan, optimizer, ctx = setup
        optimizer.annotator().annotate(plan)
        join = next(n for n in plan.walk() if isinstance(n, HashJoinNode))
        probe_cost = hash_join_probe_remaining(
            join, optimizer.cost_model, db.catalog.page_size,
            grant=join.est.max_memory_pages,
        )
        assert 0 < probe_cost <= join.est.op_cost + 1e-9
