"""Tests for parametric plans and the section 4 hybrid."""

import pytest

from repro import Database, DynamicMode, EngineConfig
from repro.bench.harness import rows_equivalent
from repro.core.parametric import (
    DEFAULT_SCENARIOS,
    ParametricOptimizer,
    actual_parameter_selectivity,
    choose_plan,
    has_parameter_predicates,
    plan_signature,
)
from repro.errors import OptimizerError
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

from .conftest import make_two_table_db


@pytest.fixture(scope="module")
def db():
    database = Database()
    build_running_example(
        database,
        SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=0.0),
    )
    return database


class TestParametricOptimizer:
    def test_requires_parameters(self, db):
        query = db.bind_sql("SELECT groupattr one FROM rel1")
        with pytest.raises(OptimizerError):
            ParametricOptimizer(db.catalog, db.config).optimize(query)

    def test_has_parameter_predicates(self, db):
        with_params = db.bind_sql(
            "SELECT groupattr one FROM rel1 WHERE selectattr1 < :v", params={"v": 5}
        )
        without = db.bind_sql("SELECT groupattr one FROM rel1 WHERE selectattr1 < 5")
        assert has_parameter_predicates(with_params)
        assert not has_parameter_predicates(without)

    def test_scenarios_deduplicated(self, db):
        query = db.bind_sql(
            RUNNING_EXAMPLE_SQL, params={"value1": 50, "value2": 50}
        )
        parametric = ParametricOptimizer(db.catalog, db.config).optimize(query)
        assert 1 <= parametric.plan_count <= len(DEFAULT_SCENARIOS)
        signatures = {plan_signature(s.plan) for s in parametric.scenarios}
        assert len(signatures) == parametric.plan_count

    def test_scenarios_annotated(self, db):
        query = db.bind_sql(
            RUNNING_EXAMPLE_SQL, params={"value1": 50, "value2": 50}
        )
        parametric = ParametricOptimizer(db.catalog, db.config).optimize(query)
        for scenario in parametric.scenarios:
            assert scenario.estimated_cost > 0
            assert scenario.plan.est.total_cost > 0


class TestChoice:
    def test_actual_selectivity_tracks_values(self, db):
        selective = db.bind_sql(
            RUNNING_EXAMPLE_SQL, params={"value1": 3, "value2": 3}
        )
        broad = db.bind_sql(
            RUNNING_EXAMPLE_SQL, params={"value1": 95, "value2": 95}
        )
        sel_low = actual_parameter_selectivity(selective, db.catalog)
        sel_high = actual_parameter_selectivity(broad, db.catalog)
        assert sel_low < 0.1 < sel_high

    def test_choose_matches_regime(self, db):
        optimizer = ParametricOptimizer(db.catalog, db.config)
        selective_query = db.bind_sql(
            RUNNING_EXAMPLE_SQL, params={"value1": 3, "value2": 3}
        )
        parametric = optimizer.optimize(selective_query)
        scenario, actual = choose_plan(parametric, db.catalog)
        assert actual == pytest.approx(
            actual_parameter_selectivity(selective_query, db.catalog)
        )
        # The chosen scenario must be the nearest anticipated case.
        import math

        best_distance = abs(
            math.log(max(scenario.assumed_selectivity, 1e-6)) - math.log(max(actual, 1e-6))
        )
        for other in parametric.scenarios:
            distance = abs(
                math.log(max(other.assumed_selectivity, 1e-6))
                - math.log(max(actual, 1e-6))
            )
            assert best_distance <= distance + 1e-12

    def test_no_parameters_means_selectivity_one(self, db):
        query = db.bind_sql("SELECT groupattr one FROM rel1")
        assert actual_parameter_selectivity(query, db.catalog) == 1.0


class TestHybridExecution:
    def test_parametric_execution_matches_results(self, db):
        params = {"value1": 85, "value2": 85}
        plain = db.execute(RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.OFF)
        hybrid = db.execute(
            RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.FULL,
            parametric=True,
        )
        assert rows_equivalent(plain.rows, hybrid.rows)
        assert hybrid.profile.parametric_plan_count >= 1
        assert "chose" in hybrid.profile.parametric_choice

    def test_parametric_beats_static_on_misparameterised_query(self, db):
        # Broad parameters: the static plan assumed the 1/3 default, the
        # parametric choice knows the true ~0.85 selectivity up front.
        params = {"value1": 85, "value2": 85}
        static = db.execute(RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.OFF)
        parametric_only = db.execute(
            RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.OFF,
            parametric=True,
        )
        assert parametric_only.profile.total_cost <= static.profile.total_cost * 1.02

    def test_parametric_flag_is_noop_without_parameters(self, db):
        sql = "SELECT groupattr, count(*) n FROM rel1 GROUP BY groupattr"
        result = db.execute(sql, mode=DynamicMode.OFF, parametric=True)
        assert result.profile.parametric_plan_count == 0
        assert result.profile.parametric_choice == ""

    def test_hybrid_keeps_reoptimization_armed(self):
        # Correlated data: the parametric choice fixes the parameter error
        # but not the correlation error, so the hybrid may still switch.
        # Feedback off: the comparison needs all three runs cold.
        database = Database(EngineConfig(feedback_enabled=False))
        build_running_example(
            database,
            SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0),
        )
        params = {"value1": 80, "value2": 80}
        hybrid = database.execute(
            RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.FULL,
            parametric=True,
        )
        static_full = database.execute(
            RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.FULL,
        )
        off = database.execute(RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.OFF)
        assert rows_equivalent(off.rows, hybrid.rows)
        assert hybrid.profile.total_cost <= off.profile.total_cost
        # The hybrid is at least as good as pure re-optimization here.
        assert hybrid.profile.total_cost <= static_full.profile.total_cost * 1.05
