"""Deparser round-trips: parse -> bind -> deparse must reach a fixpoint.

The deparser is load-bearing in two places: mid-query re-optimization
round-trips the remainder query through SQL text (paper section 2.4), and
the plan cache keys exact entries by the deparsed bound query — so the
deparsed text must itself parse, bind to an equivalent query, and deparse
to byte-identical text.
"""

import pytest

from repro import Database, EngineConfig
from repro.sql.binder import bind
from repro.sql.deparser import deparse
from repro.sql.parser import parse
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)
from repro.workloads.tpcd import ALL_QUERIES, TpcdConfig, generate_tpcd

from .conftest import make_two_table_db


@pytest.fixture(scope="module")
def tpcd_db():
    # Feedback off: the direct execution would otherwise absorb records
    # that re-plan the roundtripped execution (a tie-flipped join order
    # perturbs float aggregates at ULP level), and these tests compare
    # the two executions row for row.
    db = Database(EngineConfig(feedback_enabled=False))
    generate_tpcd(db, TpcdConfig(scale_factor=0.002))
    return db


def roundtrip(db, sql, params=None):
    query = bind(parse(sql), db.catalog, params=params)
    once = deparse(query)
    requery = bind(parse(once), db.catalog)
    twice = deparse(requery)
    return query, once, requery, twice


class TestTpcdRoundTrips:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_fixpoint(self, tpcd_db, query):
        __, once, __, twice = roundtrip(tpcd_db, query.sql)
        assert once == twice

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_rebound_query_is_equivalent(self, tpcd_db, query):
        bound, once, rebound, __ = roundtrip(tpcd_db, query.sql)
        assert [r.alias for r in bound.relations] == [
            r.alias for r in rebound.relations
        ]
        assert len(bound.predicates) == len(rebound.predicates)
        assert [o.name for o in bound.output] == [o.name for o in rebound.output]

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_roundtripped_sql_executes_identically(self, tpcd_db, query):
        direct = tpcd_db.execute(query.sql)
        once = deparse(tpcd_db.bind_sql(query.sql))
        again = tpcd_db.execute(once)
        assert again.rows == direct.rows


class TestParameterRoundTrips:
    def test_bound_parameters_roundtrip_as_values(self):
        db = make_two_table_db()
        sql = "SELECT r1.a FROM r1 WHERE r1.a < :cutoff"
        __, once, __, twice = roundtrip(db, sql, params={"cutoff": 40})
        assert once == twice
        assert ":cutoff" not in once  # bound constants deparse as literals

    def test_running_example_fixpoint(self):
        db = Database()
        build_running_example(
            db, SyntheticConfig(rel1_rows=500, rel2_rows=100, rel3_rows=800)
        )
        __, once, __, twice = roundtrip(
            db, RUNNING_EXAMPLE_SQL, params={"value1": 50, "value2": 50}
        )
        assert once == twice
