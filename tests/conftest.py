"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Database, DataType, EngineConfig
from repro.config import CostParameters
from repro.optimizer import CostModel
from repro.stats.histogram import HistogramKind
from repro.storage import BufferPool, Catalog, Column, CostClock, Schema, TempTableManager


@pytest.fixture
def config() -> EngineConfig:
    """Default engine configuration."""
    return EngineConfig()


@pytest.fixture
def clock(config) -> CostClock:
    """A fresh cost clock."""
    return CostClock(config.cost)


@pytest.fixture
def catalog(config) -> Catalog:
    """An empty catalog."""
    return Catalog(config.page_size)


@pytest.fixture
def buffer_pool(config, clock) -> BufferPool:
    """A buffer pool bound to the clock."""
    return BufferPool(config.buffer_pool_pages, clock)


def make_two_table_db(
    r1_rows: int = 2000, r2_rows: int = 8000, seed: int = 3,
    histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
) -> Database:
    """A small two-table database: r1(id, a, b) and r2(id, r1_id, c)."""
    db = Database()
    rng = random.Random(seed)
    db.create_table(
        "r1",
        [("id", DataType.INTEGER), ("a", DataType.INTEGER), ("b", DataType.INTEGER)],
        key=["id"],
    )
    db.load_rows(
        "r1", [(i, rng.randrange(100), rng.randrange(50)) for i in range(r1_rows)]
    )
    db.create_table(
        "r2",
        [("id", DataType.INTEGER), ("r1_id", DataType.INTEGER), ("c", DataType.INTEGER)],
        key=["id"],
    )
    db.load_rows(
        "r2",
        [(i, rng.randrange(r1_rows), rng.randrange(10)) for i in range(r2_rows)],
    )
    db.analyze(histogram_kind=histogram_kind)
    return db


@pytest.fixture
def two_table_db() -> Database:
    """Module-standard small join database."""
    return make_two_table_db()


@pytest.fixture
def cost_model(config) -> CostModel:
    """Cost model under default parameters."""
    return CostModel(config)


def simple_schema() -> Schema:
    """A three-column test schema."""
    return Schema(
        [
            Column("id", DataType.INTEGER),
            Column("value", DataType.FLOAT),
            Column("name", DataType.STRING),
        ]
    )
