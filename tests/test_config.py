"""Tests for configuration validation and the error hierarchy."""

import pytest

from repro import EngineConfig, ReproError
from repro.config import CostParameters, ReoptimizationParameters
from repro.errors import (
    BindError,
    CatalogError,
    ConfigError,
    ExecutionError,
    LexerError,
    MemoryGrantError,
    OptimizerError,
    ParseError,
    SqlError,
    StatisticsError,
    StorageError,
)


class TestCostParameters:
    def test_defaults_valid(self):
        CostParameters().validate()

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            CostParameters(seq_page_read=0).validate()
        with pytest.raises(ConfigError):
            CostParameters(cpu_per_tuple=-1).validate()

    def test_random_costs_more_than_sequential(self):
        params = CostParameters()
        assert params.rand_page_read > params.seq_page_read

    def test_stats_cpu_below_tuple_cpu(self):
        # The paper treats cardinality counting as negligible.
        params = CostParameters()
        assert params.cpu_stats_per_tuple < params.cpu_per_tuple


class TestReoptimizationParameters:
    def test_paper_defaults(self):
        params = ReoptimizationParameters()
        assert params.mu == 0.05
        assert params.theta1 == 0.05
        assert params.theta2 == 0.2

    def test_mu_range(self):
        with pytest.raises(ConfigError):
            ReoptimizationParameters(mu=-0.1).validate()
        with pytest.raises(ConfigError):
            ReoptimizationParameters(mu=1.5).validate()
        ReoptimizationParameters(mu=0.0).validate()
        ReoptimizationParameters(mu=1.0).validate()

    def test_thetas_non_negative(self):
        with pytest.raises(ConfigError):
            ReoptimizationParameters(theta1=-1).validate()
        with pytest.raises(ConfigError):
            ReoptimizationParameters(theta2=-1).validate()


class TestEngineConfig:
    def test_defaults_valid(self):
        EngineConfig().validate()

    def test_with_updates_returns_validated_copy(self):
        base = EngineConfig()
        updated = base.with_updates(query_memory_pages=64)
        assert updated.query_memory_pages == 64
        assert base.query_memory_pages != 64 or base is not updated

    def test_with_updates_rejects_invalid(self):
        with pytest.raises(ConfigError):
            EngineConfig().with_updates(page_size=0)
        with pytest.raises(ConfigError):
            EngineConfig().with_updates(buffer_pool_pages=-5)
        with pytest.raises(ConfigError):
            EngineConfig().with_updates(hash_fudge_factor=0.5)
        with pytest.raises(ConfigError):
            EngineConfig().with_updates(reservoir_sample_size=0)
        with pytest.raises(ConfigError):
            EngineConfig().with_updates(runtime_histogram_buckets=0)

    def test_paper_memory_example(self):
        # 8 MB at 4 KB pages = 2048 pages (the section 2.3 walk-through).
        config = EngineConfig()
        assert config.query_memory_pages * config.page_size == 8 * 1024 * 1024


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (
            BindError, CatalogError, ConfigError, ExecutionError, LexerError,
            MemoryGrantError, OptimizerError, ParseError, SqlError,
            StatisticsError, StorageError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_sql_errors_grouped(self):
        assert issubclass(LexerError, SqlError)
        assert issubclass(ParseError, SqlError)
        assert issubclass(BindError, SqlError)

    def test_memory_grant_is_execution_error(self):
        assert issubclass(MemoryGrantError, ExecutionError)

    def test_lexer_error_carries_position(self):
        err = LexerError("bad", 17)
        assert err.position == 17
        assert "17" in str(err)
