"""Tests for the experiment harness and reporting."""

import pytest

from repro.bench import (
    ExperimentConfig,
    build_database,
    comparison_table,
    render_table,
    rows_equivalent,
    run_comparison,
    run_experiment,
)
from repro.core.modes import DynamicMode
from repro.workloads.tpcd import CatalogProfile, query_by_name


class TestRowsEquivalent:
    def test_identical(self):
        assert rows_equivalent([(1, "a")], [(1, "a")])

    def test_order_insensitive(self):
        assert rows_equivalent([(1,), (2,)], [(2,), (1,)])

    def test_float_tolerance(self):
        assert rows_equivalent([(0.1 + 0.2,)], [(0.3,)])

    def test_length_mismatch(self):
        assert not rows_equivalent([(1,)], [(1,), (2,)])

    def test_value_mismatch(self):
        assert not rows_equivalent([(1,)], [(2,)])

    def test_arity_mismatch(self):
        assert not rows_equivalent([(1,)], [(1, 2)])


class TestExperimentConfig:
    def test_engine_config_carries_memory(self):
        config = ExperimentConfig(memory_pages=64)
        assert config.engine_config().query_memory_pages == 64

    def test_tpcd_config_carries_skew(self):
        config = ExperimentConfig(zipf_z=0.6, catalog=CatalogProfile.STALE)
        tpcd = config.tpcd_config()
        assert tpcd.zipf_z == 0.6
        assert tpcd.catalog is CatalogProfile.STALE


class TestHarness:
    @pytest.fixture(scope="class")
    def db(self):
        return build_database(ExperimentConfig(scale_factor=0.002))

    def test_run_comparison(self, db):
        comp = run_comparison(
            db, query_by_name("Q3"), (DynamicMode.OFF, DynamicMode.FULL)
        )
        assert comp.row_sets_match
        assert comp.normalized(DynamicMode.OFF) == pytest.approx(100.0)
        assert comp.cost(DynamicMode.FULL) > 0
        assert comp.improvement_pct(DynamicMode.OFF) == pytest.approx(0.0)

    def test_run_experiment_covers_queries(self):
        comps = run_experiment(
            ExperimentConfig(scale_factor=0.002),
            queries=(query_by_name("Q1"), query_by_name("Q6")),
            modes=(DynamicMode.OFF, DynamicMode.FULL),
        )
        assert [c.query.name for c in comps] == ["Q1", "Q6"]

    def test_comparison_table_rendering(self, db):
        comp = run_comparison(
            db, query_by_name("Q6"), (DynamicMode.OFF, DynamicMode.FULL)
        )
        table = comparison_table([comp], [DynamicMode.OFF, DynamicMode.FULL],
                                 title="demo")
        assert "demo" in table
        assert "Q6" in table
        assert "100.0" in table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["col", "x"], [["a", "1"], ["bbbb", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2  # consistent widths

    def test_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text
