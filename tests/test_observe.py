"""The observe subsystem: tracer, metrics registry, EXPLAIN ANALYZE.

Unit coverage for ``repro.observe`` (span recording, Chrome export and its
schema validator, the metrics registry) plus integration coverage for
``Database.explain_analyze`` and the traced mid-query plan switch — the
exported trace must be valid Chrome trace-event JSON containing the switch
decision with its triggering estimate delta.  Trace *parity* (tracing
cannot change any simulated quantity) lives in ``test_trace_parity.py``.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    Database,
    DynamicMode,
    EngineConfig,
    MetricsRegistry,
    QueryTracer,
    default_registry,
)
from repro.bench import ExperimentConfig, build_database
from repro.engine.profile import ExecutionProfile
from repro.observe.analyze import Q_ERROR_BAD, q_error
from repro.observe.metrics import Counter, Gauge, Histogram
from repro.observe.validate import main as validate_main
from repro.observe.validate import validate_trace
from repro.plans.printer import collector_nodes, explain_with_attribution
from repro.storage.buffer import BufferStats
from repro.storage.disk import CostBreakdown, CostClock
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)
from repro.workloads.tpcd import ALL_QUERIES

SWITCH_PARAMS = {"value1": 80, "value2": 80}


def build_switch_db(tracing: bool = True) -> Database:
    """The running example sized so FULL mode performs a mid-query switch."""
    db = Database(EngineConfig(tracing=tracing))
    build_running_example(
        db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
    )
    return db


# ----------------------------------------------------------------------
# QueryTracer
# ----------------------------------------------------------------------


class TestQueryTracer:
    def test_begin_end_records_wall_and_sim(self):
        clock = CostClock()
        tracer = QueryTracer(clock, label="t")
        span = tracer.begin("work", "phase")
        clock.charge_cpu(5.0)
        tracer.end(span, rows=3)
        assert span.closed
        assert span.sim_cost == pytest.approx(5.0)
        assert span.wall_end_us >= span.wall_start_us
        assert span.args["rows"] == 3

    def test_tracer_never_charges_the_clock(self):
        clock = CostClock()
        tracer = QueryTracer(clock)
        span = tracer.begin("a", "plan")
        tracer.instant("e", "event", k=1)
        tracer.end(span)
        tracer.to_chrome()
        tracer.timeline()
        assert clock.now == 0.0

    def test_end_is_noop_on_none_and_closed(self):
        tracer = QueryTracer()
        tracer.end(None)
        span = tracer.begin("a")
        tracer.end(span)
        seq = span.end_seq
        tracer.end(span, extra=1)  # already closed: ignored
        assert span.end_seq == seq and "extra" not in span.args

    def test_record_compile_phases_backdates_epoch(self):
        tracer = QueryTracer()
        tracer.record_compile_phases(
            {"parse": 0.001, "bind": 0.002, "optimize": 0.003, "scia": 0.004}
        )
        phases = [s for s in tracer.spans if s.category == "phase"]
        assert [s.name for s in phases] == ["parse", "bind", "optimize", "scia"]
        assert phases[0].wall_start_us == 0.0
        # Contiguous, ordered, and everything recorded later lands after.
        for before, after in zip(phases, phases[1:]):
            assert after.wall_start_us == pytest.approx(before.wall_end_us)
        later = tracer.begin("exec", "phase")
        assert later.wall_start_us >= phases[-1].wall_end_us
        assert validate_trace(tracer.to_chrome()) == []

    def test_record_compile_phases_only_applies_once(self):
        tracer = QueryTracer()
        tracer.record_compile_phases({"parse": 0.001})
        count = len(tracer.spans)
        tracer.record_compile_phases({"parse": 0.5})
        assert len(tracer.spans) == count

    def test_close_open_spans_is_lifo_and_selective(self):
        tracer = QueryTracer()
        plan = tracer.begin("plan-1", "plan")
        outer = tracer.begin("outer", "operator")
        inner = tracer.begin("inner", "pipeline")
        tracer.close_open_spans({"operator", "pipeline"}, abandoned=True)
        assert inner.closed and outer.closed and not plan.closed
        assert inner.end_seq < outer.end_seq
        assert inner.args["abandoned"] is True

    def test_open_spans_auto_close_in_export(self):
        tracer = QueryTracer()
        tracer.begin("plan-1", "plan")
        tracer.begin("op", "operator")
        doc = tracer.to_chrome()
        assert validate_trace(doc) == []
        auto = [e for e in doc["traceEvents"] if e.get("args", {}).get("auto_closed")]
        assert auto

    def test_node_handle_stack_survives_reexecution(self):
        class FakeNode:
            node_id = 7
            label = "Inner"

            def detail(self):
                return ""

        tracer = QueryTracer(CostClock())
        node = FakeNode()
        for __ in range(3):  # e.g. a re-scanned block-NL inner
            tracer.node_started(node)
            tracer.node_completed(node, rows=10)
        spans = [s for s in tracer.spans if s.category == "operator"]
        assert len(spans) == 3 and all(s.closed for s in spans)
        # One window: first start to last completion.
        assert tracer.node_windows[7][2] == 10

    def test_morsel_merged_lands_on_worker_tid(self):
        tracer = QueryTracer()
        tracer.morsel_merged(1, 0, pid=4242, elapsed_s=0.001, rows_shipped=9)
        morsel = next(s for s in tracer.spans if s.category == "morsel")
        assert morsel.tid == 4242 and morsel.closed
        assert morsel.args == {"pipeline": 1, "rows_shipped": 9}
        assert validate_trace(tracer.to_chrome()) == []

    def test_chrome_export_shapes(self):
        clock = CostClock()
        tracer = QueryTracer(clock, label="shapes")
        plan = tracer.begin("plan-1", "plan")
        op = tracer.begin("Scan", "operator")
        tracer.instant("note", "event", k="v")
        tracer.end(op, rows=1)
        tracer.end(plan)
        doc = tracer.to_chrome()
        assert validate_trace(doc) == []
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "E"}
        assert by_name["plan-1"]["ph"] == "B"  # paired category
        assert by_name["Scan"]["ph"] == "X" and by_name["Scan"]["dur"] >= 0
        assert by_name["note"]["ph"] == "i"
        assert doc["otherData"]["label"] == "shapes"

    def test_timeline_renders_nesting(self):
        tracer = QueryTracer()
        plan = tracer.begin("plan-1", "plan")
        op = tracer.begin("Scan", "operator")
        tracer.end(op, rows=5)
        tracer.end(plan)
        text = tracer.timeline()
        assert "plan:plan-1" in text and "operator:Scan" in text
        assert "rows=5" in text


# ----------------------------------------------------------------------
# validate_trace
# ----------------------------------------------------------------------


class TestValidateTrace:
    def test_rejects_non_object_and_missing_list(self):
        assert validate_trace([]) != []
        assert validate_trace({}) == ["missing 'traceEvents' list"]

    def test_missing_keys_and_unknown_phase(self):
        doc = {"traceEvents": [{"name": "a", "ph": "B"}]}
        assert any("missing keys" in e for e in validate_trace(doc))
        doc = {"traceEvents": [
            {"name": "a", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("unknown phase" in e for e in validate_trace(doc))

    def test_backwards_timestamps(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "i", "s": "t", "ts": 10, "pid": 1, "tid": 1},
            {"name": "b", "ph": "i", "s": "t", "ts": 5, "pid": 1, "tid": 1},
        ]}
        assert any("goes backwards" in e for e in validate_trace(doc))

    def test_unbalanced_and_interleaved_spans(self):
        base = {"ts": 0, "pid": 1, "tid": 1}
        unbalanced = {"traceEvents": [dict(base, name="a", ph="B")]}
        assert any("still open" in e for e in validate_trace(unbalanced))
        stray = {"traceEvents": [dict(base, name="a", ph="E")]}
        assert any("no open 'B'" in e for e in validate_trace(stray))
        interleaved = {"traceEvents": [
            dict(base, name="a", ph="B"),
            dict(base, name="b", ph="B"),
            dict(base, name="a", ph="E"),
            dict(base, name="b", ph="E"),
        ]}
        assert any("interleaved" in e for e in validate_trace(interleaved))

    def test_x_needs_duration(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
        ]}
        assert any("non-negative dur" in e for e in validate_trace(doc))

    def test_cli_roundtrip(self, tmp_path, capsys):
        tracer = QueryTracer()
        span = tracer.begin("a", "plan")
        tracer.end(span)
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        assert validate_main([str(path)]) == 0
        path.write_text(json.dumps({"traceEvents": "nope"}))
        assert validate_main([str(path)]) == 1
        assert validate_main([]) == 2


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_is_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.snapshot() == {"type": "gauge", "value": 1.5}

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 500.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(505.5)
        assert snap["min"] == 0.5 and snap["max"] == 500.0
        assert snap["buckets"] == {"le_1": 1, "le_10": 1, "le_inf": 1}

    def test_registry_accessors_and_type_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.gauge("b").set(1)
        with pytest.raises(TypeError):
            registry.counter("b")
        assert len(registry) == 2
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]  # sorted
        registry.reset()
        assert len(registry) == 0

    def test_default_registry_is_process_wide(self):
        assert default_registry() is default_registry()

    def test_database_records_metrics(self):
        registry = MetricsRegistry()
        db = Database(metrics=registry)
        from repro import DataType

        db.create_table("t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)])
        db.load_rows("t", [(i, i % 5) for i in range(100)])
        db.analyze()
        db.execute("SELECT v, count(*) n FROM t GROUP BY v")
        db.execute("SELECT v, count(*) n FROM t GROUP BY v")
        snap = db.metrics_snapshot()
        assert snap["engine.queries"]["value"] == 2
        assert snap["engine.rows_returned"]["value"] == 10
        assert snap["plan_cache.hits"]["value"] == 1
        assert snap["plan_cache.misses"]["value"] == 1
        assert snap["query.simulated_cost"]["count"] == 2
        assert 0.0 <= snap["buffer_pool.hit_rate"]["value"] <= 1.0
        # The injected registry was used, not the process-wide default.
        assert db.metrics is registry
        assert registry.snapshot() == snap


# ----------------------------------------------------------------------
# q_error and the profile satellites
# ----------------------------------------------------------------------


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_floored_at_one_row(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0.2, 1) == 1.0

    def test_exact_estimate(self):
        assert q_error(42, 42) == 1.0
        assert Q_ERROR_BAD > 1.0


def make_profile(**overrides) -> ExecutionProfile:
    base = dict(
        sql="SELECT 1",
        mode="full",
        total_cost=1.0,
        breakdown=CostBreakdown(),
        buffer=BufferStats(),
        row_count=0,
        optimizer_invocations=1,
        plan_switches=0,
        memory_reallocations=0,
        initial_estimated_cost=1.0,
        collectors_inserted=0,
        statistics_kept=0,
        statistics_dropped=0,
        statistics_budget=0.0,
    )
    base.update(overrides)
    return ExecutionProfile(**base)


class TestWorkerWallRounding:
    def test_sub_microsecond_contributions_survive_summation(self):
        # Three pipelines each contribute 0.4us on the same worker.  Rounding
        # per addition would floor every contribution to zero; rounding once
        # after summation keeps the 1.2us total (as 1e-6 at 6 digits).
        profile = make_profile(
            pipeline_wall_s={
                "1": {"101": 4e-7},
                "2": {"101": 4e-7},
                "3": {"101": 4e-7},
            }
        )
        assert profile.worker_wall_s == {"101": 1e-06}

    def test_totals_are_order_independent_across_pipelines(self):
        forward = make_profile(
            pipeline_wall_s={"1": {"7": 0.1000004}, "2": {"7": 0.2000004}}
        )
        backward = make_profile(
            pipeline_wall_s={"1": {"7": 0.2000004}, "2": {"7": 0.1000004}}
        )
        assert forward.worker_wall_s == backward.worker_wall_s == {"7": 0.300001}


class TestParallelSummaryLine:
    def test_summary_includes_parallel_telemetry(self):
        profile = make_profile(
            workers=4,
            morsels=12,
            parallel_pipelines=3,
            parallel_join_pipelines=2,
            parallel_preagg_pipelines=1,
            parallel_rows_shipped=100,
            parallel_rows_preaggregated=900,
            parallel_prefetched_morsels=5,
            parallel_build_pipelines=1,
            parallel_sort_pipelines=1,
            sort_runs_merged=4,
            rows_spilled=37,
            partitions_spilled=2,
        )
        summary = profile.summary()
        assert "parallel: workers=4 morsels=12 pipelines=3" in summary
        assert "(join=2, preagg=1, build=1, sort=1)" in summary
        assert "rows shipped/preaggregated=100/900" in summary
        assert "prefetched=5" in summary
        assert "spilled=37 rows/2 partitions" in summary
        assert "sort runs merged=4" in summary

    def test_serial_summary_has_no_parallel_line(self):
        assert "parallel:" not in make_profile().summary()


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return build_database(ExperimentConfig(scale_factor=0.01))


class TestExplainAnalyze:
    def test_tpcd_report_has_est_vs_actual_per_node(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        report = tpcd_db.explain_analyze(query.sql, mode=DynamicMode.FULL)
        assert len(report.plans) >= 1
        rendered = report.render()
        assert rendered.startswith("EXPLAIN ANALYZE")
        executed = [n for n in report.plans[-1].nodes if n.executed]
        assert executed  # Q3 has a LIMIT, so nodes above it never complete
        for analysis in executed:
            assert analysis.rows_q_error >= 1.0
            assert analysis.actual_bytes is not None
        assert "est:  rows=" in rendered and "act:  rows=" in rendered
        assert "q_error=" in rendered
        assert report.worst_q_error >= 1.0

    def test_collector_attribution(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        report = tpcd_db.explain_analyze(query.sql, mode=DynamicMode.FULL)
        insights = [
            n.collector
            for plan in report.plans
            for n in plan.nodes
            if n.collector is not None
        ]
        assert insights, "FULL mode should have placed collectors"
        fired = [i for i in insights if i.fired]
        assert fired
        for insight in fired:
            assert insight.observed_rows is not None
            assert insight.potential in ("low", "medium", "high")
            assert insight.verdict in ("predicted", "missed", "false-alarm", "ok")

    def test_result_rows_match_plain_execution(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q6")
        plain = tpcd_db.execute(query.sql, mode=DynamicMode.FULL)
        report = tpcd_db.explain_analyze(query.sql, mode=DynamicMode.FULL)
        assert report.result.rows == plain.rows

    def test_switched_query_reports_both_plans(self):
        db = build_switch_db(tracing=False)  # explain_analyze forces a tracer
        report = db.explain_analyze(
            RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=DynamicMode.FULL
        )
        assert len(report.plans) == 2
        abandoned, final = report.plans
        assert abandoned.outcome == "switched"
        assert abandoned.materialized_rows > 0
        assert final.outcome == "completed"
        # The abandoned plan distinguishes executed from never-run nodes.
        assert any(not n.executed for n in abandoned.nodes)
        assert any(n.executed for n in abandoned.nodes)
        assert all(n.executed for n in final.nodes)
        rendered = report.render()
        assert "abandoned by mid-query switch" in rendered
        assert "not executed" in rendered
        # Estimates come from the adoption-time snapshot, so the collector
        # that triggered the switch shows the real estimation error.
        worst = report.worst_q_error
        assert worst >= Q_ERROR_BAD

    def test_explain_with_attribution_shows_scia_choices(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        plan, scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        collectors = collector_nodes(plan)
        assert collectors
        assert all(c.scia_potential is not None for c in collectors)
        assert scia.kept or scia.dropped
        text = explain_with_attribution(plan)
        assert "scia:" in text and "potential=" in text


# ----------------------------------------------------------------------
# Traced mid-query plan switch (the acceptance-criteria scenario)
# ----------------------------------------------------------------------


class TestTracedPlanSwitch:
    @pytest.fixture(scope="class")
    def traced_switch(self):
        db = build_switch_db(tracing=True)
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=DynamicMode.FULL
        )
        assert result.profile.plan_switches >= 1
        return result

    def test_exported_trace_is_valid_chrome_json(self, traced_switch, tmp_path):
        path = tmp_path / "switch.json"
        traced_switch.profile.trace.export_chrome(str(path))
        document = json.loads(path.read_text())
        assert validate_trace(document) == []

    def test_switch_decision_event_carries_estimate_delta(self, traced_switch):
        doc = traced_switch.profile.trace.to_chrome()
        decisions = [
            e for e in doc["traceEvents"] if e["name"] == "reopt-decision"
        ]
        switch = next(d for d in decisions if d["args"]["action"] == "switch")
        args = switch["args"]
        assert args["observed_rows"] > 0
        assert args["estimate_delta_rows"] == pytest.approx(
            args["observed_rows"] - args["estimated_rows"], abs=0.11
        )
        assert abs(args["estimate_delta_rows"]) > 0
        assert args["trigger_consider"] is True
        assert "t_new_total" in args and "t_cur_improved" in args

    def test_plan_switch_and_materialize_events_present(self, traced_switch):
        doc = traced_switch.profile.trace.to_chrome()
        names = [e["name"] for e in doc["traceEvents"]]
        assert "plan-switch" in names
        assert "switch-materialize" in names
        assert "collector-complete" in names
        assert "memory-allocate" in names
        plan_spans = [
            e for e in doc["traceEvents"] if e["ph"] == "B" and e["cat"] == "plan"
        ]
        assert len(plan_spans) == 2  # abandoned + adopted

    def test_abandoned_operator_spans_are_closed(self, traced_switch):
        trace = traced_switch.profile.trace
        abandoned = [
            s
            for s in trace.spans
            if s.category in ("operator", "pipeline") and s.args.get("abandoned")
        ]
        assert abandoned and all(s.closed for s in abandoned)

    def test_tracing_off_leaves_no_trace(self):
        db = build_switch_db(tracing=False)
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=DynamicMode.FULL
        )
        assert result.profile.trace is None
