"""Persistent Q-error feedback repository (``observe.feedback``) tests.

Covers the full loop: fragment-signature normalization, the repository's
correction/decay/poisoning math, absorption at query end, the estimator
and plan-cache consumers, persistence across processes, and the two
observability satellites that ride along (the Prometheus exporter and the
slow-query log).  The zero-perturbation contract — feedback disabled, or
enabled with an empty store, changes nothing about a first execution — is
asserted bit-exactly.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro import Database, DataType, DynamicMode, EngineConfig
from repro.observe.export import main as export_main
from repro.observe.export import prometheus_name, render_prometheus
from repro.observe.feedback import (
    EdgeRecord,
    FeedbackRecord,
    FeedbackRepository,
    fragment_signature,
    plan_signatures,
)
from repro.observe.metrics import MetricsRegistry
from repro.observe.slowlog import build_slow_query_record, emit_slow_query
from repro.plans.physical import HashJoinNode, SeqScanNode
from repro.storage import Column, Schema

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

JOIN_SQL = (
    "SELECT r.v, count(*) n FROM r, s "
    "WHERE s.r_k = r.k AND r.v < 8 GROUP BY r.v ORDER BY r.v"
)


def populate(db: Database, stale: bool = True) -> None:
    """Two joined tables whose statistics understate the truth 10x when
    ``stale`` — the shape that makes feedback records worth having."""
    db.create_table(
        "r", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], key=["k"]
    )
    db.create_table(
        "s",
        [("k", DataType.INTEGER), ("r_k", DataType.INTEGER), ("v", DataType.INTEGER)],
        key=["k"],
    )
    db.load_rows("r", [(k, k % 10) for k in range(100)])
    db.load_rows("s", [(k, k % 100, k % 7) for k in range(200)])
    db.analyze()
    if stale:
        db.load_rows("r", [(k, k % 10) for k in range(100, 1000)])
        db.load_rows("s", [(k, k % 1000, k % 7) for k in range(200, 2000)])


def feedback_db(path: str = "", **overrides) -> Database:
    config = EngineConfig().with_updates(
        feedback_enabled=True, feedback_path=path, **overrides
    )
    db = Database(config, metrics=MetricsRegistry())
    populate(db)
    return db


# ----------------------------------------------------------------------
# Fragment signatures
# ----------------------------------------------------------------------


class TestFragmentSignatures:
    def _root_signature(self, db: Database, sql: str) -> str:
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.OFF)
        return fragment_signature(plan)

    def test_alias_collapses_to_base_table(self):
        db = feedback_db()
        with_alias = self._root_signature(
            db, "SELECT x.v FROM r x WHERE x.v < 3"
        )
        without = self._root_signature(db, "SELECT r.v FROM r WHERE r.v < 3")
        assert with_alias == without

    def test_predicate_order_is_canonical(self):
        db = feedback_db()
        one = self._root_signature(
            db, "SELECT r.v FROM r WHERE r.v < 3 AND r.k > 10"
        )
        two = self._root_signature(
            db, "SELECT r.v FROM r WHERE r.k > 10 AND r.v < 3"
        )
        assert one == two

    def test_access_path_invariance(self):
        # The same sargable predicate via a seq-scan filter and via an
        # index scan must share one fragment record.
        db = feedback_db()
        before = self._root_signature(db, "SELECT r.v FROM r WHERE r.k < 50")
        db.create_index("ix_r_k", "r", "k")
        after = self._root_signature(db, "SELECT r.v FROM r WHERE r.k < 50")
        assert before == after

    def test_join_orientation_commutes(self):
        schema_a = Schema([Column("k", DataType.INTEGER)]).qualify("a")
        schema_b = Schema([Column("a_k", DataType.INTEGER)]).qualify("b")
        scan_a = SeqScanNode("a", "a", schema_a)
        scan_b = SeqScanNode("b", "b", schema_b)
        one = HashJoinNode(scan_a, scan_b, [("a.k", "b.a_k")])
        scan_a2 = SeqScanNode("a", "a", schema_a)
        scan_b2 = SeqScanNode("b", "b", schema_b)
        two = HashJoinNode(scan_b2, scan_a2, [("b.a_k", "a.k")])
        assert fragment_signature(one) == fragment_signature(two)

    def test_transparent_operators_share_child_identity(self):
        db = feedback_db()
        plan, __scia, __opt = db.plan(
            "SELECT r.v FROM r WHERE r.v < 3 ORDER BY r.v", mode=DynamicMode.OFF
        )
        signatures = plan_signatures(plan)
        # Sort/project lids on top of the filter collapse: fewer distinct
        # signatures than nodes.
        assert len(set(signatures.values())) < len(signatures)


# ----------------------------------------------------------------------
# Repository math
# ----------------------------------------------------------------------


def seeded_repo(**record_overrides) -> tuple[FeedbackRepository, FeedbackRecord]:
    repo = FeedbackRepository(
        q_error_threshold=2.0, decay=0.9, max_correction=100.0
    )
    fields = dict(
        signature="sig",
        fragment="scan(t)",
        est_rows=10.0,
        observed_rows=1000.0,
        q_error=100.0,
        source="collector",
        epoch=1,
        stats_epoch=5,
    )
    fields.update(record_overrides)
    record = FeedbackRecord(**fields)
    repo._records[record.signature] = record
    return repo, record


class TestRepositoryMath:
    def test_full_confidence_correction_reaches_observation(self):
        repo, __ = seeded_repo()
        corrected, record = repo.corrected_rows("sig", 10.0, stats_epoch=5)
        assert corrected == pytest.approx(1000.0)
        assert record.corrections == 1

    def test_decay_tempers_stale_records(self):
        repo, __ = seeded_repo()
        corrected, __ = repo.corrected_rows("sig", 10.0, stats_epoch=7)
        # Two stats epochs of churn: est * 100 ** (0.9 ** 2)
        assert corrected == pytest.approx(10.0 * 100.0 ** (0.9**2))
        assert corrected < 1000.0

    def test_exact_record_correction_bounded_by_observation(self):
        # An exact record's own observation is the bound: full confidence
        # moves the estimate all the way to ground truth however large the
        # error — max_correction only clamps the edge-fallback extrapolation
        # (see test_edge_factor_clamped_at_bound).
        repo, __ = seeded_repo(observed_rows=10_000_000.0)
        corrected, __ = repo.corrected_rows("sig", 10.0, stats_epoch=5)
        assert corrected == pytest.approx(10_000_000.0)

    def test_edge_fallback_corrects_unseen_fragments(self):
        repo, __ = seeded_repo()
        repo._edges["t.a = u.b"] = EdgeRecord(
            key="t.a = u.b", factor=8.0, epoch=1, stats_epoch=5
        )
        corrected, record = repo.corrected_rows(
            "unseen", 50.0, stats_epoch=5, edge_key="t.a = u.b"
        )
        assert corrected == pytest.approx(400.0)
        assert record.source == "edge"
        # Synthetic record: never enters the store.
        assert "unseen" not in repo._records

    def test_edge_factor_clamped_at_bound(self):
        repo, __ = seeded_repo()
        repo._edges["t.a = u.b"] = EdgeRecord(
            key="t.a = u.b", factor=1e6, epoch=1, stats_epoch=5
        )
        corrected, __ = repo.corrected_rows(
            "unseen", 10.0, stats_epoch=5, edge_key="t.a = u.b"
        )
        assert corrected == pytest.approx(10.0 * repo.max_correction)

    def test_exact_record_wins_over_edge_fallback(self):
        repo, __ = seeded_repo()
        repo._edges["t.a = u.b"] = EdgeRecord(
            key="t.a = u.b", factor=7.0, epoch=1, stats_epoch=5
        )
        corrected, record = repo.corrected_rows(
            "sig", 10.0, stats_epoch=5, edge_key="t.a = u.b"
        )
        assert corrected == pytest.approx(1000.0)
        assert record.source == "collector"

    def test_close_estimates_left_untouched(self):
        repo, record = seeded_repo(observed_rows=1000.0)
        assert repo.corrected_rows("sig", 900.0, stats_epoch=5) is None
        assert record.corrections == 0
        assert record.hits == 1

    def test_unknown_signature_is_none(self):
        repo, __ = seeded_repo()
        assert repo.corrected_rows("other", 10.0, stats_epoch=5) is None

    def test_risk_score_scales_with_severity_and_recency(self):
        repo, __ = seeded_repo()
        assert repo.risk_score("missing", stats_epoch=5) == 0.0
        fresh = repo.risk_score("sig", stats_epoch=5)
        stale = repo.risk_score("sig", stats_epoch=8)
        assert 0.0 < stale < fresh <= 1.0

    def test_good_records_carry_no_risk(self):
        repo, __ = seeded_repo(q_error=1.2)
        assert repo.risk_score("sig", stats_epoch=5) == 0.0
        assert not repo.risky("sig")

    def test_poisoned_since_respects_epoch_fence(self):
        repo, __ = seeded_repo(epoch=3)
        assert "sig" in repo.poisoned_since(2)
        assert repo.poisoned_since(3) == frozenset()

    def test_good_records_never_poison(self):
        repo, __ = seeded_repo(epoch=3, q_error=1.1)
        assert repo.poisoned_since(0) == frozenset()


# ----------------------------------------------------------------------
# Zero perturbation
# ----------------------------------------------------------------------


class TestZeroPerturbation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FEEDBACK", raising=False)
        db = Database()
        assert db.feedback is None
        assert db.feedback_report() == {"enabled": False}

    def test_first_execution_bit_identical_to_disabled(self):
        enabled = feedback_db()
        disabled = Database(
            EngineConfig(feedback_enabled=False), metrics=MetricsRegistry()
        )
        populate(disabled)
        on = enabled.execute(JOIN_SQL, mode=DynamicMode.FULL)
        off = disabled.execute(JOIN_SQL, mode=DynamicMode.FULL)
        assert on.rows == off.rows
        assert on.profile.total_cost == off.profile.total_cost
        assert on.profile.breakdown == off.profile.breakdown
        assert on.profile.plan_switches == off.profile.plan_switches
        # ... but the enabled engine kept what it learned.
        assert on.profile.feedback_records > 0
        assert off.profile.feedback_records == 0


# ----------------------------------------------------------------------
# The learning loop end to end
# ----------------------------------------------------------------------


class TestLearningLoop:
    def test_absorption_records_misestimates(self):
        db = feedback_db()
        result = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert result.profile.feedback_records > 0
        report = db.feedback_report()
        assert report["enabled"]
        assert report["queries_absorbed"] == 1
        assert report["record_count"] == result.profile.feedback_records
        # Stats understate reality 10x, so the worst fragment is far off.
        assert report["records"][0]["q_error"] > 2.0
        assert result.profile.feedback_worst_q_error > 2.0
        assert result.profile.feedback_worst_fragment

    def test_second_execution_applies_corrections(self):
        db = feedback_db()
        first = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert first.profile.feedback_corrections == 0
        second = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert second.profile.feedback_corrections > 0
        assert second.rows == first.rows
        snapshot = db.metrics.snapshot()
        assert snapshot["feedback.corrections"]["value"] > 0

    def test_aggregate_q_error_falls(self):
        db = feedback_db()
        first = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        second = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert (
            second.profile.feedback_worst_q_error
            < first.profile.feedback_worst_q_error
        )
        assert second.rows == first.rows

    def test_poisoned_plan_cache_entry_invalidated(self):
        db = feedback_db()
        first = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert not first.profile.plan_cache_hit
        # The entry was stored before absorption recorded its fragments as
        # badly estimated, so the next lookup evicts and re-prepares with
        # corrections instead of reusing the misestimated plan.
        second = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert not second.profile.plan_cache_hit
        assert db.plan_cache.stats.feedback_invalidations >= 1
        # Once the corrected plan's own estimates match reality, the entry
        # stops being poisoned and caching resumes.
        third = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert third.rows == first.rows

    def test_explain_analyze_annotates_corrections(self):
        db = feedback_db()
        db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        report = db.explain_analyze(JOIN_SQL, mode=DynamicMode.OFF)
        assert "feedback: corrected rows" in report.render()

    def test_fresh_statistics_stop_corrections(self):
        db = feedback_db()
        db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        db.analyze()  # histogram now agrees with reality
        result = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        # Records exist but the estimates are good, so the Q-error gate
        # keeps feedback from touching them.
        assert result.profile.feedback_corrections == 0


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


class TestPersistence:
    def test_store_written_and_reloaded(self, tmp_path):
        store = str(tmp_path / "feedback.json")
        db = feedback_db(path=store)
        db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert os.path.exists(store)
        document = json.loads(open(store, encoding="utf-8").read())
        assert document["version"] == 1
        assert document["records"]

        reopened = feedback_db(path=store)
        assert len(reopened.feedback) == len(db.feedback)
        # A fresh engine's *first* execution already benefits.
        result = reopened.execute(JOIN_SQL, mode=DynamicMode.OFF)
        assert result.profile.feedback_corrections > 0

    def test_save_merges_with_concurrent_writers(self, tmp_path):
        store = str(tmp_path / "feedback.json")
        ours = FeedbackRepository(path=store)
        ours._records["a"] = FeedbackRecord(
            signature="a", fragment="scan(a)", est_rows=1.0,
            observed_rows=10.0, q_error=10.0, source="collector",
        )
        ours.save()
        theirs = FeedbackRepository(path=store)
        theirs._records["b"] = FeedbackRecord(
            signature="b", fragment="scan(b)", est_rows=2.0,
            observed_rows=2.0, q_error=1.0, source="execution",
        )
        theirs.save()
        merged = FeedbackRepository(path=store)
        assert {"a", "b"} <= set(merged._records)

    def test_corrupt_store_ignored(self, tmp_path):
        store = str(tmp_path / "feedback.json")
        open(store, "w", encoding="utf-8").write("{not json")
        repo = FeedbackRepository(path=store)
        assert len(repo) == 0

    def test_corrections_apply_across_processes(self, tmp_path):
        store = str(tmp_path / "feedback.json")
        db = feedback_db(path=store)
        db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        script = textwrap.dedent(
            f"""
            from repro import Database, DataType, DynamicMode, EngineConfig
            from tests.test_feedback import JOIN_SQL, populate

            db = Database(EngineConfig(
                feedback_enabled=True, feedback_path={store!r}))
            populate(db)
            result = db.execute(JOIN_SQL, mode=DynamicMode.OFF)
            assert result.profile.feedback_corrections > 0, "no corrections"
            print("corrected", result.profile.feedback_corrections)
            """
        )
        env = dict(os.environ)
        root = os.path.dirname(SRC_DIR)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC_DIR, root, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        env.pop("REPRO_FEEDBACK", None)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "corrected" in proc.stdout


# ----------------------------------------------------------------------
# Prometheus exporter
# ----------------------------------------------------------------------


SNAPSHOT = {
    "query.count": {"type": "counter", "value": 3},
    "broker.pages_in_use": {"type": "gauge", "value": 2.5},
    "query.wall_s": {
        "type": "histogram",
        "count": 4,
        "sum": 10.0,
        "min": 1.0,
        "max": 4.0,
        "buckets": {"le_1": 2, "le_10": 1, "le_inf": 1},
    },
}


class TestPrometheusExporter:
    def test_name_sanitization(self):
        assert prometheus_name("broker.grant_pages") == "repro_broker_grant_pages"
        assert prometheus_name("9weird metric!") == "repro_9weird_metric_"

    def test_counter_and_gauge_rendering(self):
        text = render_prometheus(SNAPSHOT)
        assert "# TYPE repro_query_count counter" in text
        assert "repro_query_count 3" in text
        assert "# TYPE repro_broker_pages_in_use gauge" in text
        assert "repro_broker_pages_in_use 2.5" in text

    def test_histogram_buckets_cumulate(self):
        lines = render_prometheus(SNAPSHOT).splitlines()
        buckets = [l for l in lines if l.startswith("repro_query_wall_s_bucket")]
        assert buckets == [
            'repro_query_wall_s_bucket{le="1"} 2',
            'repro_query_wall_s_bucket{le="10"} 3',
            'repro_query_wall_s_bucket{le="+Inf"} 4',
        ]
        assert "repro_query_wall_s_sum 10" in lines
        assert "repro_query_wall_s_count 4" in lines

    def test_live_snapshot_renders(self):
        db = feedback_db()
        db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        text = render_prometheus(db.metrics_snapshot())
        assert "repro_feedback_records" in text
        assert 'le="+Inf"' in text

    def test_cli_round_trip(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(SNAPSHOT), encoding="utf-8")
        assert export_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_query_count 3" in out
        assert export_main([str(tmp_path / "missing.json")]) == 2

    def test_cli_runs_without_the_engine(self, tmp_path):
        # The exporter is a scrape-side tool: it must work as a plain
        # script in an environment where the engine is not importable.
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(SNAPSHOT), encoding="utf-8")
        script = os.path.join(SRC_DIR, "repro", "observe", "export.py")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(tmp_path)  # repro is NOT on the path
        proc = subprocess.run(
            [sys.executable, script, str(path)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "repro_query_count 3" in proc.stdout


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_gates_emission(self, tmp_path):
        log = str(tmp_path / "slow.jsonl")
        db = feedback_db(slow_query_s=1e-9, slow_query_path=log)
        db.execute(JOIN_SQL, mode=DynamicMode.OFF)
        db.execute("SELECT count(*) n FROM r", mode=DynamicMode.OFF)
        lines = open(log, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["event"] == "slow_query"
        assert record["sql"] == JOIN_SQL
        assert record["total_wall_s"] >= 0.0
        assert record["threshold_s"] == 1e-9
        assert record["feedback"]["records"] > 0
        snapshot = db.metrics.snapshot()
        assert snapshot["slow_query.count"]["value"] == 2

    def test_fast_queries_not_logged(self, tmp_path):
        log = str(tmp_path / "slow.jsonl")
        db = feedback_db(slow_query_s=3600.0, slow_query_path=log)
        db.execute("SELECT count(*) n FROM r", mode=DynamicMode.OFF)
        assert not os.path.exists(log)

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY", raising=False)
        assert EngineConfig().slow_query_s == 0.0

    def test_emit_to_stream(self):
        db = feedback_db()
        profile = db.execute(JOIN_SQL, mode=DynamicMode.OFF).profile
        stream = io.StringIO()
        record = emit_slow_query(profile, threshold_s=0.5, stream=stream)
        parsed = json.loads(stream.getvalue())
        assert parsed == json.loads(json.dumps(record))
        assert parsed["threshold_s"] == 0.5

    def test_record_shape(self):
        db = feedback_db()
        profile = db.execute(JOIN_SQL, mode=DynamicMode.OFF).profile
        record = build_slow_query_record(profile, threshold_s=0.25)
        for key in (
            "event", "ts", "sql", "total_wall_s", "compile_wall_s",
            "execute_wall_s", "simulated_cost", "rows", "plan_switches",
        ):
            assert key in record, key
