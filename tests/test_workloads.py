"""Tests for the synthetic and TPC-D workload generators."""

import pytest

from repro import Database, DynamicMode
from repro.storage.schema import int_to_date
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)
from repro.workloads.tpcd import (
    ALL_QUERIES,
    COMPLEX_QUERIES,
    CatalogProfile,
    MEDIUM_QUERIES,
    SIMPLE_QUERIES,
    TpcdConfig,
    generate_tpcd,
    query_by_name,
    rows_for,
)


class TestSynthetic:
    def test_tables_created_and_analyzed(self):
        db = Database()
        cfg = build_running_example(db, SyntheticConfig(rel1_rows=500, rel2_rows=100,
                                                        rel3_rows=800))
        for name in ("rel1", "rel2", "rel3"):
            assert name in db
            assert db.catalog.stats_for(name).row_count == db.table(name).row_count

    def test_correlation_positive(self):
        db = Database()
        build_running_example(
            db, SyntheticConfig(rel1_rows=2000, rel2_rows=50, rel3_rows=50,
                                correlation=1.0)
        )
        rows = db.table("rel1").rows
        assert all(row[1] == row[2] for row in rows)

    def test_correlation_negative(self):
        db = Database()
        cfg = SyntheticConfig(rel1_rows=2000, rel2_rows=50, rel3_rows=50,
                              correlation=-1.0)
        build_running_example(db, cfg)
        rows = db.table("rel1").rows
        assert all(row[1] + row[2] == cfg.select_domain + 1 for row in rows)

    def test_correlation_zero_independent(self):
        db = Database()
        build_running_example(
            db, SyntheticConfig(rel1_rows=5000, rel2_rows=50, rel3_rows=50,
                                correlation=0.0)
        )
        rows = db.table("rel1").rows
        matches = sum(1 for row in rows if row[1] == row[2])
        assert matches < 0.05 * len(rows)

    def test_stale_factor_applied(self):
        db = Database()
        build_running_example(
            db, SyntheticConfig(rel1_rows=1000, rel2_rows=50, rel3_rows=50,
                                rel1_stale_factor=2.0)
        )
        assert db.catalog.stats_for("rel1").row_count == pytest.approx(2000)
        assert db.table("rel1").row_count == 1000

    def test_running_example_executes(self):
        db = Database()
        build_running_example(db, SyntheticConfig(rel1_rows=1000, rel2_rows=200,
                                                  rel3_rows=2000))
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params={"value1": 50, "value2": 50},
            mode=DynamicMode.OFF,
        )
        assert len(result) > 0
        assert result.column_names[-1] == "groupattr"


class TestTpcdGeneration:
    @pytest.fixture(scope="class")
    def db(self):
        db = Database()
        generate_tpcd(db, TpcdConfig(scale_factor=0.002, catalog=CatalogProfile.FRESH))
        return db

    def test_row_ratios(self, db):
        assert db.table("region").row_count == 5
        assert db.table("nation").row_count == 25
        assert db.table("customer").row_count == rows_for("customer", 0.002)
        assert db.table("orders").row_count == rows_for("orders", 0.002)
        # lineitem has 1-7 lines per order (average ~4).
        ratio = db.table("lineitem").row_count / db.table("orders").row_count
        assert 1.0 <= ratio <= 7.0

    def test_referential_integrity(self, db):
        customers = {row[0] for row in db.table("customer").rows}
        assert all(row[1] in customers for row in db.table("orders").rows)
        orders = {row[0] for row in db.table("orders").rows}
        assert all(row[0] in orders for row in db.table("lineitem").rows)

    def test_shipdate_follows_orderdate(self, db):
        order_dates = {row[0]: row[4] for row in db.table("orders").rows}
        schema = db.table("lineitem").schema
        ship_pos = schema.index_of("l_shipdate")
        for row in db.table("lineitem").rows[:500]:
            assert row[ship_pos] >= order_dates[row[0]]
            assert row[ship_pos] <= order_dates[row[0]] + 121

    def test_indexes_built(self, db):
        assert db.catalog.index_on("orders", "o_orderkey") is not None
        assert db.catalog.index_on("lineitem", "l_orderkey") is not None

    def test_fresh_catalog_has_maxdiff(self, db):
        stats = db.catalog.stats_for("lineitem")
        hist = stats.column("l_quantity").histogram
        assert hist is not None and hist.kind.is_serial_class

    def test_skew_changes_distribution(self):
        flat_db = Database()
        generate_tpcd(flat_db, TpcdConfig(scale_factor=0.002, zipf_z=0.0))
        skewed_db = Database()
        generate_tpcd(skewed_db, TpcdConfig(scale_factor=0.002, zipf_z=1.0))

        def top_customer_share(db):
            from collections import Counter

            counts = Counter(row[1] for row in db.table("orders").rows)
            total = sum(counts.values())
            return max(counts.values()) / total

        assert top_customer_share(skewed_db) > 2 * top_customer_share(flat_db)

    def test_stale_profile_scales_counts(self):
        db = Database()
        generate_tpcd(
            db,
            TpcdConfig(scale_factor=0.002, catalog=CatalogProfile.STALE,
                       stale_row_factor=0.5),
        )
        believed = db.catalog.stats_for("lineitem").row_count
        actual = db.table("lineitem").row_count
        assert believed == pytest.approx(actual * 0.5, rel=0.01)
        assert db.catalog.stats_for("lineitem").significant_update_activity


class TestTpcdQueries:
    def test_classification(self):
        assert {q.name for q in SIMPLE_QUERIES} == {"Q1", "Q6"}
        assert {q.name for q in MEDIUM_QUERIES} == {"Q3", "Q10"}
        assert {q.name for q in COMPLEX_QUERIES} == {"Q5", "Q7", "Q8"}

    def test_lookup(self):
        assert query_by_name("q5").name == "Q5"
        with pytest.raises(KeyError):
            query_by_name("Q99")

    def test_join_counts_match_sql(self):
        db = Database()
        generate_tpcd(db, TpcdConfig(scale_factor=0.002))
        for query in ALL_QUERIES:
            bound = db.bind_sql(query.sql)
            assert bound.join_count == query.join_count, query.name

    @pytest.mark.parametrize("name", ["Q1", "Q3", "Q5", "Q6", "Q7", "Q8", "Q10"])
    def test_queries_execute(self, name):
        db = Database()
        generate_tpcd(db, TpcdConfig(scale_factor=0.002))
        query = query_by_name(name)
        result = db.execute(query.sql, mode=DynamicMode.OFF)
        assert result.profile.total_cost > 0
        if name not in ("Q3", "Q10"):  # selective date windows may be empty at tiny SF
            assert len(result) > 0

    def test_q1_aggregates_are_consistent(self):
        db = Database()
        generate_tpcd(db, TpcdConfig(scale_factor=0.002))
        result = db.execute(query_by_name("Q1").sql, mode=DynamicMode.OFF)
        for row in result.to_dicts():
            assert row["avg_qty"] == pytest.approx(row["sum_qty"] / row["count_order"])
