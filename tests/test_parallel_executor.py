"""Morsel-driven parallel execution: parity, merges, determinism.

The contract under test (DESIGN.md section 8): ``execution_mode="parallel"``
is an implementation detail of the batch path — byte-identical result rows,
bit-for-bit identical simulated ``CostBreakdown`` and buffer statistics, and
(in the default exact statistics mode) bit-identical observed statistics,
for any worker count, on every TPC-D query.  Plus the mergeable-statistics
primitives the tentpole rides on: ``Reservoir.merge``, ``HybridDistinct``/
``FlajoletMartin.merge``, collector partials, and pickling.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro import Database, DynamicMode, EngineConfig
from repro.bench import ExperimentConfig, build_database
from repro.errors import ConfigError, MemoryGrantError, StatisticsError
from repro.executor import parallel as parallel_mod
from repro.executor.collector import RuntimeCollector
from repro.executor.dispatcher import Dispatcher
from repro.executor.memory import MemoryManager
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.stats.distinct import ExactDistinct, FlajoletMartin, HybridDistinct
from repro.stats.sampling import Reservoir
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return build_database(ExperimentConfig(scale_factor=0.01))


def dispatch(db: Database, plan, execution_mode: str, workers: int = 0, stats: str = "exact"):
    """One dispatcher run on a fresh runtime context; returns (result, ctx)."""
    config = db.config.with_updates(
        execution_mode=execution_mode,
        parallel_workers=workers,
        parallel_stats=stats,
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    try:
        result = Dispatcher(ctx).run(plan)
    finally:
        ctx.temp_manager.drop_all()
    return result, ctx


def assert_observed_equal(left: dict, right: dict) -> None:
    """Collector-output equality (histograms compared by kind + buckets)."""
    assert set(left) == set(right)
    for node_id, a in left.items():
        b = right[node_id]
        assert a.row_count == b.row_count
        assert a.row_bytes == b.row_bytes
        assert dict(a.minmax) == dict(b.minmax)
        assert dict(a.distincts) == dict(b.distincts)
        assert set(a.histograms) == set(b.histograms)
        for column, ha in a.histograms.items():
            hb = b.histograms[column]
            assert ha.kind == hb.kind
            assert ha.buckets == hb.buckets


# ----------------------------------------------------------------------
# Mergeable statistics primitives
# ----------------------------------------------------------------------


class TestReservoirMerge:
    def test_exhaustive_merge_is_concatenation(self):
        a = Reservoir(100, seed=1)
        b = Reservoir(100, seed=2)
        a.extend(range(10))
        b.extend(range(10, 30))
        a.merge(b)
        assert a.seen == 30
        assert a.is_exhaustive
        assert sorted(a.sample) == list(range(30))

    def test_merge_into_empty_adopts_other(self):
        a = Reservoir(10, seed=1)
        b = Reservoir(10, seed=2)
        b.extend(range(50))
        a.merge(b)
        assert a.seen == 50
        assert sorted(a.sample) == sorted(b.sample)

    def test_merge_empty_other_is_noop(self):
        a = Reservoir(10, seed=1)
        a.extend(range(5))
        before = a.sample
        a.merge(Reservoir(10, seed=9))
        assert a.sample == before and a.seen == 5

    def test_merged_capacity_and_seen(self):
        a = Reservoir(64, seed=1)
        b = Reservoir(64, seed=2)
        a.extend(range(1000))
        b.extend(range(1000, 3000))
        a.merge(b)
        assert a.seen == 3000
        assert len(a.sample) == 64
        assert all(0 <= v < 3000 for v in a.sample)

    def test_capacity_mismatch_rejected(self):
        other = Reservoir(16, seed=1)
        other.extend(range(4))
        with pytest.raises(StatisticsError):
            Reservoir(8, seed=1).merge(other)

    def test_merge_is_deterministic_given_rng(self):
        def merged() -> tuple:
            a = Reservoir(32, seed=5)
            b = Reservoir(32, seed=6)
            a.extend(range(200))
            b.extend(range(200, 500))
            a.merge(b, rng=random.Random(42))
            return a.sample

        assert merged() == merged()

    def test_merge_draws_proportionally(self):
        # 3x the population on one side should yield roughly 3x the sample
        # share — a loose bound, deterministic under the fixed seed.
        rng = random.Random(7)
        from_b = 0
        for trial in range(200):
            a = Reservoir(32, seed=trial)
            b = Reservoir(32, seed=1000 + trial)
            a.extend(range(100))
            b.extend(range(1000, 1300))
            a.merge(b, rng=rng)
            from_b += sum(1 for v in a.sample if v >= 1000)
        share = from_b / (200 * 32)
        assert 0.65 < share < 0.85

    def test_pickle_roundtrip_preserves_rng_stream(self):
        a = Reservoir(16, seed=3)
        a.extend(range(100))
        clone = pickle.loads(pickle.dumps(a))
        assert clone.sample == a.sample and clone.seen == a.seen
        a.extend(range(100, 200))
        clone.extend(range(100, 200))
        assert clone.sample == a.sample


class TestDistinctMerge:
    def test_fm_merge_equals_serial(self):
        serial = FlajoletMartin(seed=9)
        left = FlajoletMartin(seed=9)
        right = FlajoletMartin(seed=9)
        values = [f"v{i}" for i in range(5000)]
        serial.extend(values)
        left.extend(values[:2000])
        right.extend(values[2000:])
        left.merge(right)
        assert left._bitmaps == serial._bitmaps
        assert left.estimate() == serial.estimate()

    def test_fm_merge_rejects_mismatched_geometry(self):
        with pytest.raises(StatisticsError):
            FlajoletMartin(num_maps=64, seed=1).merge(FlajoletMartin(num_maps=32, seed=1))
        with pytest.raises(StatisticsError):
            FlajoletMartin(seed=1).merge(FlajoletMartin(seed=2))

    def test_exact_distinct_merge(self):
        a, b = ExactDistinct(), ExactDistinct()
        a.extend([1, 2, 3])
        b.extend([3, 4])
        a.merge(b)
        assert a.estimate() == 4.0

    def test_hybrid_merge_matches_serial_exact_regime(self):
        serial = HybridDistinct(seed=4, threshold=1000)
        left = HybridDistinct(seed=4, threshold=1000)
        right = HybridDistinct(seed=4, threshold=1000)
        serial.add_batch(list(range(300)))
        left.add_batch(list(range(200)))
        right.add_batch(list(range(100, 300)))
        left.merge(right)
        assert left.estimate() == serial.estimate() == 300.0

    def test_hybrid_merge_matches_serial_sketch_regime(self):
        serial = HybridDistinct(seed=4, threshold=64)
        left = HybridDistinct(seed=4, threshold=64)
        right = HybridDistinct(seed=4, threshold=64)
        values = list(range(10_000))
        serial.add_batch(values)
        left.add_batch(values[:5000])
        right.add_batch(values[5000:])
        left.merge(right)
        # Union exceeds the threshold, so the merged counter trusts the
        # sketch — whose bitmaps equal the serial counter's exactly.
        assert left.estimate() == serial.estimate()

    def test_hybrid_pickle_roundtrip(self):
        h = HybridDistinct(seed=11, threshold=10)
        h.add_batch(list(range(50)))
        clone = pickle.loads(pickle.dumps(h))
        assert clone.estimate() == h.estimate()
        clone.add(999)
        h.add(999)
        assert clone.estimate() == h.estimate()


class TestSplitGrant:
    def test_shares_sum_to_grant(self):
        shares = MemoryManager.split_grant(103, 4)
        assert sum(shares) == 103
        assert max(shares) - min(shares) <= 1

    def test_zero_pages(self):
        assert MemoryManager.split_grant(0, 3) == [0, 0, 0]

    def test_invalid_partitions(self):
        with pytest.raises(MemoryGrantError):
            MemoryManager.split_grant(10, 0)


# ----------------------------------------------------------------------
# Collector partials
# ----------------------------------------------------------------------


def _collector_inputs(db: Database):
    """A TPC-D plan's first collector node plus its observed input rows."""
    q = next(q for q in ALL_QUERIES if q.name == "Q3")
    plan, scia, __opt = db.plan(q.sql, mode=DynamicMode.FULL)
    assert scia is not None and scia.collector_points > 0
    __, ctx = dispatch(db, plan, "batch")
    node_id = sorted(ctx.observed)[0]

    def find(node):
        if node.node_id == node_id:
            return node
        for child in node.children:
            found = find(child)
            if found is not None:
                return found
        return None

    return find(plan)


class TestCollectorPartials:
    def test_absorbed_partials_match_serial_collector(self, tpcd_db):
        node = _collector_inputs(tpcd_db)
        table = tpcd_db.table("lineitem")
        rows = table.rows[: 20_000]
        config = tpcd_db.config
        serial = RuntimeCollector(node, node.child.schema, config)
        for start in range(0, len(rows), 1024):
            serial.observe_batch(rows[start : start + 1024])

        merged = RuntimeCollector(node, node.child.schema, config)
        morsel_size = 4096
        for start in range(0, len(rows), morsel_size):
            chunk = rows[start : start + morsel_size]
            worker = RuntimeCollector(
                node, node.child.schema, config, collect_reservoirs=False
            )
            worker.observe_batch(chunk)
            merged.absorb_partial(pickle.loads(pickle.dumps(worker.export_partial())))
            merged.replay_reservoirs(chunk)
        # Exact mode: every statistic, histograms included, is bit-equal.
        a, b = serial.finalize(), merged.finalize()
        assert_observed_equal({0: a}, {0: b})

    def test_merge_mode_partials_are_chunking_independent(self, tpcd_db):
        node = _collector_inputs(tpcd_db)
        table = tpcd_db.table("lineitem")
        rows = table.rows[: 20_000]
        config = tpcd_db.config

        def run(morsel_size: int):
            merged = RuntimeCollector(node, node.child.schema, config)
            for index, start in enumerate(range(0, len(rows), morsel_size)):
                chunk = rows[start : start + morsel_size]
                worker = RuntimeCollector(
                    node,
                    node.child.schema,
                    config,
                    reservoir_seed=parallel_mod._morsel_seed(config.seed, index),
                )
                worker.observe_batch(chunk)
                merged.absorb_partial(worker.export_partial())
            return merged.finalize()

        # Identical morsel structure must give identical output however the
        # morsels were scheduled — absorb order is morsel order by design —
        # and count/size/minmax/distincts are exact regardless of chunking.
        a, b = run(4096), run(4096)
        assert_observed_equal({0: a}, {0: b})
        c = run(2048)
        assert a.row_count == c.row_count
        assert dict(a.minmax) == dict(c.minmax)
        assert dict(a.distincts) == dict(c.distincts)


# ----------------------------------------------------------------------
# Page groups mirror the serial scan's batch boundaries
# ----------------------------------------------------------------------


class TestPageGroups:
    def test_groups_cover_table_exactly(self, tpcd_db):
        for name in ("lineitem", "orders", "customer"):
            table = tpcd_db.table(name)
            groups = parallel_mod._page_groups(table, 1024)
            assert groups[0][0] == 0
            assert groups[-1][1] == table.page_count
            for (__, a_end), (b_start, __b) in zip(groups, groups[1:]):
                assert a_end == b_start

    def test_groups_match_serial_batch_boundaries(self, tpcd_db):
        table = tpcd_db.table("orders")
        batch_size = 1024
        per_page = table.rows_per_page
        groups = parallel_mod._page_groups(table, batch_size)
        # Reconstruct the serial scan's yields from the geometry.
        serial_batches = []
        batch = 0
        for page_no in range(table.page_count):
            batch += min(per_page, table.row_count - page_no * per_page)
            if batch >= batch_size:
                serial_batches.append(batch)
                batch = 0
        if batch:
            serial_batches.append(batch)
        group_rows = [
            min(last * per_page, table.row_count) - first * per_page
            for first, last in groups
        ]
        assert group_rows == serial_batches

    def test_morsels_align_with_group_boundaries(self, tpcd_db):
        table = tpcd_db.table("lineitem")
        groups = parallel_mod._page_groups(table, 1024)
        morsels = parallel_mod._group_morsels(groups, 64)
        assert morsels[0][0] == 0
        assert morsels[-1][1] == len(groups)
        for (__, a_end), (b_start, __b) in zip(morsels, morsels[1:]):
            assert a_end == b_start
        spans = [groups[last - 1][1] - groups[first][0] for first, last in morsels]
        assert all(s >= 64 for s in spans[:-1])


# ----------------------------------------------------------------------
# Executor parity: parallel vs batch on every TPC-D query
# ----------------------------------------------------------------------


class TestParallelParity:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_bit_identical_to_batch(self, tpcd_db, query):
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        par_result, par_ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert par_result.rows == batch_result.rows
        assert par_ctx.clock.breakdown == batch_ctx.clock.breakdown
        assert par_ctx.clock.now == batch_ctx.clock.now
        assert par_ctx.buffer_pool.stats == batch_ctx.buffer_pool.stats
        assert par_ctx.switches == batch_ctx.switches
        assert par_ctx.reallocations == batch_ctx.reallocations
        assert_observed_equal(par_ctx.observed, batch_ctx.observed)

    @pytest.mark.parametrize("query_name", ["Q3", "Q6"])
    def test_worker_count_invariance(self, tpcd_db, query_name):
        query = next(q for q in ALL_QUERIES if q.name == query_name)
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        reference, ref_ctx = dispatch(tpcd_db, plan, "parallel", workers=1)
        for workers in (2, 7):
            result, ctx = dispatch(tpcd_db, plan, "parallel", workers=workers)
            assert result.rows == reference.rows
            assert ctx.clock.breakdown == ref_ctx.clock.breakdown
            assert_observed_equal(ctx.observed, ref_ctx.observed)

    @pytest.mark.parametrize("query_name", ["Q3", "Q6"])
    def test_merge_stats_schedule_independent(self, tpcd_db, query_name):
        query = next(q for q in ALL_QUERIES if q.name == query_name)
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        reference, ref_ctx = dispatch(tpcd_db, plan, "parallel", workers=1, stats="merge")
        for workers in (2, 7):
            result, ctx = dispatch(
                tpcd_db, plan, "parallel", workers=workers, stats="merge"
            )
            assert result.rows == reference.rows
            assert ctx.clock.breakdown == ref_ctx.clock.breakdown
            assert_observed_equal(ctx.observed, ref_ctx.observed)

    def test_parallel_pipelines_actually_ran(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q6")
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        __, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert ctx.parallel.pipelines >= 1
        assert ctx.parallel.morsels >= 2
        assert ctx.parallel.workers == 2
        assert sum(ctx.parallel.worker_seconds.values()) > 0.0


class TestEngineIntegration:
    def test_execute_parallel_profile_fields(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q6")
        batch = tpcd_db.execute(query.sql, mode=DynamicMode.FULL, execution_mode="batch")
        par = tpcd_db.execute(
            query.sql, mode=DynamicMode.FULL, execution_mode="parallel", workers=2
        )
        assert par.rows == batch.rows
        assert par.profile.total_cost == batch.profile.total_cost
        assert par.profile.breakdown == batch.profile.breakdown
        assert par.profile.workers == 2
        assert par.profile.morsels >= 2
        assert par.profile.parallel_pipelines >= 1
        assert par.profile.worker_wall_s
        assert batch.profile.workers == 0 and batch.profile.morsels == 0

    def test_switch_queries_survive_parallel(self, tpcd_db):
        # Q5 and Q8 re-optimize mid-query at this scale; the parallel path
        # must reproduce the switch and the final profile exactly.
        for name in ("Q5", "Q8"):
            query = next(q for q in ALL_QUERIES if q.name == name)
            batch = tpcd_db.execute(query.sql, mode=DynamicMode.FULL, execution_mode="batch")
            par = tpcd_db.execute(
                query.sql, mode=DynamicMode.FULL, execution_mode="parallel", workers=2
            )
            assert par.rows == batch.rows
            assert par.profile.plan_switches == batch.profile.plan_switches
            assert par.profile.total_cost == batch.profile.total_cost

    def test_serial_fallback_without_fork(self, tpcd_db, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_fork_available", lambda: False)
        query = next(q for q in ALL_QUERIES if q.name == "Q6")
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        with pytest.warns(RuntimeWarning, match="fork"):
            par_result, par_ctx = dispatch(tpcd_db, plan, "parallel", workers=4)
        assert par_result.rows == batch_result.rows
        assert par_ctx.clock.breakdown == batch_ctx.clock.breakdown
        assert par_ctx.parallel.workers == 1
        assert par_ctx.parallel.fallback_warned

    def test_small_tables_stay_serial(self):
        db = Database()
        db.create_table("t", [("k", __import__("repro").DataType.INTEGER)])
        db.load_rows("t", [(i,) for i in range(100)])
        db.analyze()
        result = db.execute(
            "SELECT k FROM t WHERE k < 50", execution_mode="parallel", workers=4
        )
        assert result.profile.parallel_pipelines == 0
        assert len(result.rows) == 50


class TestParallelConfig:
    def test_parallel_mode_accepted(self):
        EngineConfig(execution_mode="parallel").validate()

    def test_parallel_knobs_validated(self):
        with pytest.raises(ConfigError):
            EngineConfig(parallel_workers=-1).validate()
        with pytest.raises(ConfigError):
            EngineConfig(morsel_pages=0).validate()
        with pytest.raises(ConfigError):
            EngineConfig(parallel_min_morsels=0).validate()
        with pytest.raises(ConfigError):
            EngineConfig(parallel_stats="sampled").validate()

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "parallel")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        config = EngineConfig()
        assert config.execution_mode == "parallel"
        assert config.parallel_workers == 3
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert EngineConfig().parallel_workers == 0
