"""Tests for cardinality/selectivity estimation over RelProfiles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.plans.logical import (
    AndPredicate,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    FuncExpr,
    InPredicate,
    NotPredicate,
    OrPredicate,
)
from repro.stats.estimator import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    Estimator,
    RelProfile,
    profile_from_table_stats,
)
from repro.stats.table_stats import compute_table_stats
from repro.storage import Column, DataType, Schema, Table


def make_profile(rows=1000, domain=100, alias="t"):
    """A profile for a table with columns a (uniform 0..domain-1) and s."""
    schema = Schema(
        [
            Column("id", DataType.INTEGER),
            Column("a", DataType.INTEGER),
            Column("s", DataType.STRING),
        ]
    )
    table = Table("t", schema, 4096)
    table.append_rows([(i, i % domain, f"s{i % 7}") for i in range(rows)])
    stats = compute_table_stats(table, key_columns=["id"])
    return profile_from_table_stats(stats, alias)


def col(name):
    return ColumnExpr(name)


def const(value):
    return ConstExpr(value)


class TestSelectivity:
    def setup_method(self):
        self.estimator = Estimator()
        self.profile = make_profile()

    def test_eq_with_histogram(self):
        pred = Comparison(CompareOp.EQ, col("t.a"), const(5))
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(1 / 100, rel=0.2)

    def test_range_with_histogram(self):
        pred = Comparison(CompareOp.LT, col("t.a"), const(50))
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(0.5, abs=0.1)

    def test_ne(self):
        pred = Comparison(CompareOp.NE, col("t.a"), const(5))
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(0.99, abs=0.02)

    def test_string_eq_uses_distinct(self):
        pred = Comparison(CompareOp.EQ, col("t.s"), const("s3"))
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(1 / 7, rel=0.01)

    def test_parameter_based_uses_defaults(self):
        # The actual value (90) would give 0.9 selectivity; the estimator
        # must ignore it because it came from a host variable.
        pred = Comparison(CompareOp.LT, col("t.a"), const(90), param_based=True)
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(DEFAULT_RANGE_SELECTIVITY)

    def test_udf_uses_defaults(self):
        fn = FuncExpr("f", lambda x: x, (col("t.a"),))
        pred = Comparison(CompareOp.EQ, fn, const(1))
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(DEFAULT_EQ_SELECTIVITY)

    def test_unknown_column_uses_defaults(self):
        profile = RelProfile(rows=100, row_bytes=10, columns={}, aliases=frozenset({"t"}))
        pred = Comparison(CompareOp.EQ, col("t.x"), const(1))
        assert self.estimator.selectivity(pred, profile) == DEFAULT_EQ_SELECTIVITY

    def test_in_sums_equalities(self):
        pred = InPredicate(col("t.a"), (1, 2, 3))
        sel = self.estimator.selectivity(pred, self.profile)
        assert sel == pytest.approx(3 / 100, rel=0.2)

    def test_or_combines_independently(self):
        p1 = Comparison(CompareOp.EQ, col("t.a"), const(1))
        p2 = Comparison(CompareOp.EQ, col("t.a"), const(2))
        sel = self.estimator.selectivity(OrPredicate((p1, p2)), self.profile)
        assert sel == pytest.approx(1 - (1 - 0.01) ** 2, rel=0.2)

    def test_and_multiplies(self):
        p1 = Comparison(CompareOp.LT, col("t.a"), const(50))
        p2 = Comparison(CompareOp.GE, col("t.a"), const(0))
        sel = self.estimator.selectivity(AndPredicate((p1, p2)), self.profile)
        assert 0 < sel <= 0.6

    def test_not_complements(self):
        inner = Comparison(CompareOp.LT, col("t.a"), const(50))
        sel_inner = self.estimator.selectivity(inner, self.profile)
        sel_not = self.estimator.selectivity(NotPredicate(inner), self.profile)
        assert sel_not == pytest.approx(1 - sel_inner)

    def test_out_of_domain_range(self):
        pred = Comparison(CompareOp.GT, col("t.a"), const(1000))
        assert self.estimator.selectivity(pred, self.profile) == 0.0

    @given(st.integers(min_value=-50, max_value=150))
    @settings(max_examples=30, deadline=None)
    def test_property_selectivity_bounded(self, value):
        estimator = Estimator()
        profile = make_profile()
        for op in CompareOp:
            pred = Comparison(op, col("t.a"), const(value))
            assert 0.0 <= estimator.selectivity(pred, profile) <= 1.0


class TestApplyPredicates:
    def setup_method(self):
        self.estimator = Estimator()
        self.profile = make_profile()

    def test_rows_scaled(self):
        pred = Comparison(CompareOp.LT, col("t.a"), const(10))
        new_profile, sel = self.estimator.apply_predicates(self.profile, [pred])
        assert new_profile.rows == pytest.approx(self.profile.rows * sel)

    def test_restricted_column_narrowed(self):
        pred = Comparison(CompareOp.LT, col("t.a"), const(10))
        new_profile, __ = self.estimator.apply_predicates(self.profile, [pred])
        stats = new_profile.column("t.a")
        assert stats.max_value <= 10
        assert stats.distinct <= 12

    def test_eq_pins_distinct_to_one(self):
        pred = Comparison(CompareOp.EQ, col("t.a"), const(5))
        new_profile, __ = self.estimator.apply_predicates(self.profile, [pred])
        assert new_profile.column("t.a").distinct == 1.0

    def test_other_columns_scaled(self):
        pred = Comparison(CompareOp.EQ, col("t.a"), const(5))
        new_profile, __ = self.estimator.apply_predicates(self.profile, [pred])
        id_stats = new_profile.column("t.id")
        assert id_stats.count == pytest.approx(new_profile.rows)
        assert id_stats.distinct <= new_profile.rows

    def test_independence_assumption_compounds(self):
        # Two predicates on the same uniform column multiply, illustrating
        # the correlation blindness the paper exploits.
        p1 = Comparison(CompareOp.LT, col("t.a"), const(50))
        p2 = Comparison(CompareOp.GE, col("t.a"), const(0))
        __, sel = self.estimator.apply_predicates(self.profile, [p1, p2])
        s1 = self.estimator.selectivity(p1, self.profile)
        s2 = self.estimator.selectivity(p2, self.profile)
        assert sel == pytest.approx(s1 * s2, rel=0.01)

    def test_rows_never_below_floor(self):
        preds = [
            Comparison(CompareOp.EQ, col("t.a"), const(1)),
            Comparison(CompareOp.EQ, col("t.a"), const(2)),
            Comparison(CompareOp.EQ, col("t.a"), const(3)),
        ]
        new_profile, __ = self.estimator.apply_predicates(self.profile, preds)
        assert new_profile.rows >= 1.0


class TestJoinEstimation:
    def setup_method(self):
        self.estimator = Estimator()

    def test_key_fk_join_close_to_fk_size(self):
        key_side = make_profile(rows=100, domain=100, alias="d")
        fk_side = make_profile(rows=5000, domain=100, alias="f")
        __, card = self.estimator.join(
            key_side, fk_side, [("d.a", "f.a")]
        )
        assert card == pytest.approx(5000, rel=0.5)

    def test_join_bounded_by_cross_product(self):
        a = make_profile(rows=50, alias="a")
        b = make_profile(rows=70, alias="b")
        __, card = self.estimator.join(a, b, [("a.a", "b.a")])
        assert card <= 50 * 70

    def test_multiple_key_pairs_reduce_cardinality(self):
        a = make_profile(rows=1000, alias="a")
        b = make_profile(rows=1000, alias="b")
        __, single = self.estimator.join(a, b, [("a.a", "b.a")])
        __, double = self.estimator.join(
            a, b, [("a.a", "b.a"), ("a.id", "b.id")]
        )
        assert double < single

    def test_cross_join(self):
        a = make_profile(rows=10, alias="a")
        b = make_profile(rows=20, alias="b")
        __, card = self.estimator.join(a, b, [])
        assert card == pytest.approx(200)

    def test_residual_predicates_reduce(self):
        a = make_profile(rows=100, alias="a")
        b = make_profile(rows=100, alias="b")
        residual = [Comparison(CompareOp.LT, col("a.a"), const(10))]
        __, with_residual = self.estimator.join(a, b, [("a.id", "b.id")], residual)
        __, without = self.estimator.join(a, b, [("a.id", "b.id")])
        assert with_residual < without

    def test_joined_profile_merges_columns(self):
        a = make_profile(rows=100, alias="a")
        b = make_profile(rows=100, alias="b")
        joined, __ = self.estimator.join(a, b, [("a.id", "b.id")])
        assert joined.column("a.a") is not None
        assert joined.column("b.a") is not None
        assert joined.aliases == frozenset({"a", "b"})
        assert joined.row_bytes == a.row_bytes + b.row_bytes


class TestGroupCount:
    def test_no_groups_is_one(self):
        estimator = Estimator()
        assert estimator.group_count(make_profile(), []) == 1.0

    def test_single_column(self):
        estimator = Estimator()
        profile = make_profile(rows=1000, domain=25)
        assert estimator.group_count(profile, ["t.a"]) == pytest.approx(25, rel=0.1)

    def test_product_capped_by_rows(self):
        estimator = Estimator()
        profile = make_profile(rows=50, domain=100)
        groups = estimator.group_count(profile, ["t.a", "t.id"])
        assert groups <= 50


class TestRelProfile:
    def test_pages(self):
        profile = RelProfile(rows=1000, row_bytes=40)
        assert profile.pages(4096) == pytest.approx(-(-1000 // (4096 // 40)))
        assert RelProfile(rows=0, row_bytes=40).pages(4096) == 0.0

    def test_distinct_default(self):
        profile = RelProfile(rows=1000, row_bytes=40)
        assert profile.distinct_of("t.x") == pytest.approx(100)

    def test_profile_from_table_stats_qualifies(self):
        profile = make_profile(alias="q")
        assert "q.a" in profile.columns
        assert profile.column("q.a").name == "q.a"
