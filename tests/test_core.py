"""Tests for the Dynamic Re-Optimization core: inaccuracy, SCIA, triggers,
remainder construction and the collector runtime."""

import pytest

from repro import Database, DataType, EngineConfig
from repro.config import ReoptimizationParameters
from repro.core.inaccuracy import InaccuracyAnalysis, InaccuracyPotential
from repro.core.modes import DynamicMode
from repro.core.remainder import build_remainder, temp_column_name, temp_table_stats
from repro.core.scia import enumerate_candidates, insert_collectors
from repro.core.triggers import accept_new_plan, should_consider_reoptimization
from repro.executor.collector import ObservedStatistics, RuntimeCollector
from repro.plans.physical import (
    CollectorSpec,
    HashJoinNode,
    StatsCollectorNode,
)
from repro.plans.printer import collector_nodes
from repro.stats.histogram import HistogramKind

from .conftest import make_two_table_db


class TestModes:
    def test_off_collects_nothing(self):
        assert not DynamicMode.OFF.collects_statistics
        assert not DynamicMode.OFF.allows_memory_reallocation
        assert not DynamicMode.OFF.allows_plan_modification

    def test_full_allows_everything(self):
        assert DynamicMode.FULL.collects_statistics
        assert DynamicMode.FULL.allows_memory_reallocation
        assert DynamicMode.FULL.allows_plan_modification

    def test_isolation_modes(self):
        assert DynamicMode.MEMORY_ONLY.allows_memory_reallocation
        assert not DynamicMode.MEMORY_ONLY.allows_plan_modification
        assert DynamicMode.PLAN_ONLY.allows_plan_modification
        assert not DynamicMode.PLAN_ONLY.allows_memory_reallocation


class TestTriggers:
    PARAMS = ReoptimizationParameters(mu=0.05, theta1=0.05, theta2=0.2)

    def test_equation_1_blocks_cheap_queries(self):
        decision = should_consider_reoptimization(
            t_cur_optimizer=100, t_cur_improved=120, t_opt_estimated=50,
            params=self.PARAMS,
        )
        assert not decision.consider
        assert "equation 1" in decision.reason

    def test_equation_2_blocks_small_drift(self):
        decision = should_consider_reoptimization(
            t_cur_optimizer=1000, t_cur_improved=1100, t_opt_estimated=1,
            params=self.PARAMS,
        )
        assert not decision.consider
        assert "equation 2" in decision.reason

    def test_gates_pass_for_large_drift(self):
        decision = should_consider_reoptimization(
            t_cur_optimizer=1000, t_cur_improved=5000, t_opt_estimated=10,
            params=self.PARAMS,
        )
        assert decision.consider

    def test_overestimates_never_trigger(self):
        # Improved < optimizer estimate: plan is cheaper than believed.
        decision = should_consider_reoptimization(
            t_cur_optimizer=1000, t_cur_improved=400, t_opt_estimated=1,
            params=self.PARAMS,
        )
        assert not decision.consider

    def test_boundary_theta2(self):
        exactly = should_consider_reoptimization(
            t_cur_optimizer=1000, t_cur_improved=1200, t_opt_estimated=1,
            params=self.PARAMS,
        )
        assert not exactly.consider  # drift == theta2 is not enough
        above = should_consider_reoptimization(
            t_cur_optimizer=1000, t_cur_improved=1201, t_opt_estimated=1,
            params=self.PARAMS,
        )
        assert above.consider

    def test_zero_remaining(self):
        decision = should_consider_reoptimization(
            t_cur_optimizer=100, t_cur_improved=0, t_opt_estimated=1,
            params=self.PARAMS,
        )
        assert not decision.consider

    def test_accept_new_plan(self):
        assert accept_new_plan(99, 100)
        assert not accept_new_plan(100, 100)
        assert not accept_new_plan(150, 100)


class TestInaccuracyRules:
    def _plan(self, db, sql, params=None):
        plan, __, __opt = db.plan(sql, params=params, mode=DynamicMode.OFF)
        return plan

    def test_serial_histogram_is_low(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        plan = self._plan(db, "SELECT a FROM r1 WHERE a < 10")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.LOW

    def test_equi_width_histogram_is_medium(self):
        db = make_two_table_db(histogram_kind=HistogramKind.EQUI_WIDTH)
        plan = self._plan(db, "SELECT a FROM r1 WHERE a < 10")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.MEDIUM

    def test_no_histogram_is_high(self):
        db = make_two_table_db(histogram_kind=None)
        plan = self._plan(db, "SELECT a FROM r1 WHERE a < 10")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.HIGH

    def test_multi_attribute_selection_bumps_one_level(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        plan = self._plan(db, "SELECT a FROM r1 WHERE a < 10 AND b < 20")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.MEDIUM

    def test_parameter_predicate_is_high(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        plan = self._plan(db, "SELECT a FROM r1 WHERE a < :v", params={"v": 10})
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.HIGH

    def test_udf_predicate_is_high(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        db.register_udf("f", lambda x: x)
        plan = self._plan(db, "SELECT a FROM r1 WHERE f(a) < 10")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.HIGH

    def test_update_activity_bumps_level(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        db.catalog.set_stats("r1", db.catalog.stats_for("r1").mark_updated())
        plan = self._plan(db, "SELECT a FROM r1 WHERE a < 10")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        filt = plan.children[0]
        assert analysis.output_level(filt) is InaccuracyPotential.MEDIUM

    def test_key_join_preserves_level(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        plan = self._plan(
            db, "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id"
        )
        analysis = InaccuracyAnalysis(plan, db.catalog)
        join = next(n for n in plan.walk() if isinstance(n, HashJoinNode))
        assert analysis.output_level(join) is InaccuracyPotential.LOW

    def test_non_key_join_bumps_level(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        plan = self._plan(db, "SELECT r1.a one FROM r1, r2 WHERE r1.a = r2.c")
        analysis = InaccuracyAnalysis(plan, db.catalog)
        join = next(n for n in plan.walk() if isinstance(n, HashJoinNode))
        assert analysis.output_level(join) is InaccuracyPotential.MEDIUM

    def test_distinct_low_on_base_high_on_intermediate(self):
        db = make_two_table_db(histogram_kind=HistogramKind.MAXDIFF)
        plan = self._plan(
            db,
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id GROUP BY r1.a",
        )
        analysis = InaccuracyAnalysis(plan, db.catalog)
        join = next(n for n in plan.walk() if isinstance(n, HashJoinNode))
        scan = next(n for n in plan.walk() if getattr(n, "table_name", "") == "r1")
        assert analysis.distinct_level(scan, ("r1.a",)) is InaccuracyPotential.LOW
        assert analysis.distinct_level(join, ("r1.a",)) is InaccuracyPotential.HIGH

    def test_bumped_saturates(self):
        assert InaccuracyPotential.HIGH.bumped() is InaccuracyPotential.HIGH
        assert InaccuracyPotential.LOW.bumped() is InaccuracyPotential.MEDIUM


class TestScia:
    def _join_plan(self, db, sql, params=None):
        plan, __, optimizer = db.plan(sql, params=params, mode=DynamicMode.OFF)
        return plan, optimizer

    def test_collectors_inserted_below_blocking_edges(self):
        db = make_two_table_db()
        plan, optimizer = self._join_plan(
            db, "SELECT r1.a, sum(r2.c) s FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a < 50 GROUP BY r1.a"
        )
        result = insert_collectors(plan, db.catalog, db.config)
        optimizer.annotator().annotate(plan)
        collectors = collector_nodes(plan)
        assert collectors, "expected at least one collector"
        # Every collector's parent must be a blocking operator.
        for node in plan.walk():
            for child in node.children:
                if isinstance(child, StatsCollectorNode):
                    assert node.is_blocking

    def test_no_collectors_for_simple_queries(self):
        db = make_two_table_db()
        plan, __ = self._join_plan(db, "SELECT a, sum(b) s FROM r1 GROUP BY a")
        result = insert_collectors(plan, db.catalog, db.config)
        assert result.collector_points == 0
        assert collector_nodes(plan) == []

    def test_bare_scan_edges_skipped(self):
        db = make_two_table_db()
        plan, __ = self._join_plan(
            db, "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id"
        )
        candidates, points = enumerate_candidates(plan, db.catalog, db.config)
        for parent, child_index in points:
            child = parent.children[child_index]
            assert child.label not in ("SeqScan", "IndexScan")

    def test_candidates_target_later_predicates(self):
        db = make_two_table_db(histogram_kind=None)
        plan, __ = self._join_plan(
            db,
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a < 50 GROUP BY r1.a",
        )
        candidates, __pts = enumerate_candidates(plan, db.catalog, db.config)
        kinds = {c.kind for c in candidates}
        assert "histogram" in kinds
        assert "distinct" in kinds
        hist_cols = {c.columns[0] for c in candidates if c.kind == "histogram"}
        # The join key of the *later* join must be a candidate.
        assert any(col.endswith(".id") or col.endswith("r1_id") for col in hist_cols)

    def test_budget_prunes_least_effective(self):
        db = make_two_table_db(histogram_kind=None)
        sql = (
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a < 50 GROUP BY r1.a"
        )
        plan, __ = self._join_plan(db, sql)
        tight = db.config.with_updates(
            reopt=ReoptimizationParameters(mu=1e-9)
        )
        result = insert_collectors(plan, db.catalog, tight)
        assert result.kept == []
        assert result.collector_points >= 1  # bare collectors remain

        plan2, __ = self._join_plan(db, sql)
        generous = db.config.with_updates(reopt=ReoptimizationParameters(mu=1.0))
        result2 = insert_collectors(plan2, db.catalog, generous)
        assert len(result2.kept) > 0
        assert result2.dropped == []

    def test_kept_cost_within_budget(self):
        db = make_two_table_db(histogram_kind=None)
        plan, __ = self._join_plan(
            db,
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a < 50 GROUP BY r1.a",
        )
        result = insert_collectors(plan, db.catalog, db.config)
        assert result.kept_cost <= result.budget + 1e-9

    def test_effectiveness_ordering_prefers_high_potential(self):
        db = make_two_table_db(histogram_kind=None)  # everything HIGH
        plan, __ = self._join_plan(
            db,
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a < 50 GROUP BY r1.a",
        )
        candidates, __pts = enumerate_candidates(plan, db.catalog, db.config)
        ordered = sorted(candidates, key=lambda c: c.effectiveness_key, reverse=True)
        assert ordered[0].potential.value >= ordered[-1].potential.value


class TestRuntimeCollector:
    def _collector(self, spec, schema):
        from repro.plans.physical import SeqScanNode

        scan = SeqScanNode("t", "t", schema)
        node = StatsCollectorNode(scan, spec)
        return RuntimeCollector(node, schema, EngineConfig())

    def test_cardinality_and_minmax(self):
        from repro.storage import Column, Schema

        schema = Schema([Column("t.a", DataType.INTEGER), Column("t.s", DataType.STRING)])
        collector = self._collector(CollectorSpec(), schema)
        for i in range(100):
            collector.observe((i, "x"))
        observed = collector.finalize()
        assert observed.row_count == 100
        assert observed.minmax["t.a"] == (0.0, 99.0)
        assert "t.s" not in observed.minmax

    def test_histogram_collection(self):
        from repro.storage import Column, Schema

        schema = Schema([Column("t.a", DataType.INTEGER)])
        collector = self._collector(
            CollectorSpec(histogram_columns=("t.a",)), schema
        )
        for i in range(5000):
            collector.observe((i % 100,))
        observed = collector.finalize()
        hist = observed.histograms["t.a"]
        assert hist.total_count == pytest.approx(5000, rel=0.01)
        assert hist.selectivity_range(None, 49) == pytest.approx(0.5, abs=0.12)

    def test_distinct_collection(self):
        from repro.storage import Column, Schema

        schema = Schema([Column("t.a", DataType.INTEGER), Column("t.b", DataType.INTEGER)])
        collector = self._collector(
            CollectorSpec(distinct_column_sets=(("t.a",), ("t.a", "t.b"))), schema
        )
        for i in range(2000):
            collector.observe((i % 50, i % 7))
        observed = collector.finalize()
        assert observed.distincts[("t.a",)] == pytest.approx(50, rel=0.5)
        assert observed.distincts[("t.a", "t.b")] <= 2000

    def test_merge_into_profile_overrides_counts(self):
        from repro.stats.estimator import RelProfile
        from repro.stats.table_stats import ColumnStats

        estimated = RelProfile(
            rows=1000.0,
            row_bytes=20.0,
            columns={
                "t.a": ColumnStats(
                    name="t.a", dtype=DataType.INTEGER, count=1000, distinct=100
                )
            },
            aliases=frozenset({"t"}),
        )
        observed = ObservedStatistics(
            node_id=1, row_count=250, row_bytes=20.0,
            minmax={"t.a": (0.0, 49.0)},
        )
        profile = observed.merge_into_profile(estimated)
        assert profile.rows == 250
        assert profile.column("t.a").max_value == 49.0
        assert profile.column("t.a").observed

    def test_merge_without_estimate(self):
        observed = ObservedStatistics(
            node_id=1, row_count=10, row_bytes=8.0, minmax={"t.x": (1.0, 2.0)}
        )
        profile = observed.merge_into_profile(None)
        assert profile.rows == 10
        assert profile.column("t.x") is not None


class TestRemainder:
    def _three_table_db(self):
        import random

        db = Database()
        rng = random.Random(9)
        db.create_table(
            "a", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], key=["k"]
        )
        db.load_rows("a", [(i, rng.randrange(10)) for i in range(200)])
        db.create_table(
            "b", [("k", DataType.INTEGER), ("a_k", DataType.INTEGER),
                  ("w", DataType.INTEGER)], key=["k"],
        )
        db.load_rows("b", [(i, rng.randrange(200), rng.randrange(5)) for i in range(600)])
        db.create_table(
            "c", [("k", DataType.INTEGER), ("x", DataType.INTEGER)], key=["k"]
        )
        db.load_rows("c", [(i, rng.randrange(3)) for i in range(100)])
        db.analyze()
        return db

    def test_temp_column_name(self):
        assert temp_column_name("r1.join3") == "r1__join3"

    def test_build_remainder_structure(self):
        db = self._three_table_db()
        query = db.bind_sql(
            "SELECT a.v, sum(c.x) s FROM a, b, c "
            "WHERE a.k = b.a_k AND b.w = c.k AND a.v < 5 GROUP BY a.v"
        )
        plan, __, __opt = db.plan(
            "SELECT a.v, sum(c.x) s FROM a, b, c "
            "WHERE a.k = b.a_k AND b.w = c.k AND a.v < 5 GROUP BY a.v",
            mode=DynamicMode.OFF,
        )
        join_ab = next(
            n for n in plan.walk()
            if n.is_blocking and n.base_aliases == frozenset({"a", "b"})
        )
        remainder = build_remainder(query, join_ab, "__temp_9")
        assert remainder.cut_aliases == frozenset({"a", "b"})
        rel_names = [r.table_name for r in remainder.query.relations]
        assert rel_names[0] == "__temp_9"
        assert "c" in rel_names and "a" not in rel_names
        # The a.v<5 selection was applied inside the cut; only the b-c join
        # predicate remains (renamed on the cut side).
        assert len(remainder.query.predicates) == 1
        pred_cols = remainder.query.predicates[0].columns()
        assert "__temp_9.b__w" in pred_cols and "c.k" in pred_cols
        # Output and group-by renamed.
        assert remainder.query.group_by == ("__temp_9.a__v",)

    def test_remainder_sql_round_trips(self):
        db = self._three_table_db()
        sql = (
            "SELECT a.v, sum(c.x) s FROM a, b, c "
            "WHERE a.k = b.a_k AND b.w = c.k AND a.v < 5 GROUP BY a.v"
        )
        query = db.bind_sql(sql)
        plan, __, __opt = db.plan(sql, mode=DynamicMode.OFF)
        join_ab = next(
            n for n in plan.walk()
            if n.is_blocking and n.base_aliases == frozenset({"a", "b"})
        )
        remainder = build_remainder(query, join_ab, "__temp_7")
        # Register the temp table so the remainder SQL binds.
        db.catalog.create_table("__temp_7", remainder.temp_schema)
        rebound = db.bind_sql(remainder.query.sql())
        assert len(rebound.relations) == len(remainder.query.relations)
        assert len(rebound.predicates) == len(remainder.query.predicates)

    def test_temp_table_stats_carries_columns(self):
        db = self._three_table_db()
        sql = (
            "SELECT a.v one, c.x two FROM a, b, c "
            "WHERE a.k = b.a_k AND b.w = c.k"
        )
        query = db.bind_sql(sql)
        plan, __, __opt = db.plan(sql, mode=DynamicMode.OFF)
        join_ab = next(
            n for n in plan.walk()
            if n.is_blocking and n.base_aliases == frozenset({"a", "b"})
        )
        remainder = build_remainder(query, join_ab, "__tmp")
        stats = temp_table_stats(
            "__tmp", join_ab.est.profile, remainder.temp_schema, 4096
        )
        assert stats.row_count >= 1
        assert stats.column("b__w") is not None
