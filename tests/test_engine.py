"""Tests for the Database facade, results and profiles."""

import pytest

from repro import Database, DataType, DynamicMode, EngineConfig
from repro.errors import BindError, CatalogError, ConfigError
from repro.storage import Column, Schema

from .conftest import make_two_table_db


class TestDatabaseDdl:
    def test_create_table_from_tuples(self):
        db = Database()
        table = db.create_table("t", [("a", DataType.INTEGER), ("b", DataType.STRING)])
        assert table.schema.names == ("a", "b")

    def test_create_table_from_schema(self):
        db = Database()
        schema = Schema([Column("x", DataType.FLOAT)])
        table = db.create_table("t", schema)
        assert table.schema is schema

    def test_load_rows_rebuilds_indexes(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)])
        db.load_rows("t", [(i,) for i in range(10)])
        db.create_index("ix", "t", "a")
        db.load_rows("t", [(99,)])
        index = db.catalog.index_on("t", "a")
        assert len(index.lookup_eq(99)) == 1

    def test_drop_and_contains(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)])
        assert "t" in db
        db.drop_table("t")
        assert "t" not in db

    def test_require_tables(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)])
        db.require_tables(["t"])
        with pytest.raises(CatalogError):
            db.require_tables(["t", "missing"])

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            Database(EngineConfig().with_updates(query_memory_pages=-1))

    def test_analyze_skips_temp_tables(self):
        db = Database()
        db.create_table("__temp_zzz", [("a", DataType.INTEGER)])
        db.analyze()  # must not raise


class TestExecute:
    def test_result_interface(self, two_table_db):
        result = two_table_db.execute(
            "SELECT a, count(*) n FROM r1 GROUP BY a", mode=DynamicMode.OFF
        )
        assert len(result) == len(result.rows)
        assert result.column_names == ("a", "n")
        assert sum(result.column("n")) == 2000
        dicts = result.to_dicts()
        assert set(dicts[0]) == {"a", "n"}
        rendered = result.format_table(limit=5)
        assert "a" in rendered and "-" in rendered

    def test_explain_smoke(self, two_table_db):
        text = two_table_db.explain(
            "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id"
        )
        assert "HashJoin" in text or "IndexNLJoin" in text

    def test_profile_fields(self, two_table_db):
        result = two_table_db.execute("SELECT a FROM r1 WHERE a < 5", mode=DynamicMode.OFF)
        profile = result.profile
        assert profile.total_cost > 0
        assert profile.row_count == len(result)
        assert profile.mode == "off"
        assert profile.optimizer_invocations == 1
        assert profile.initial_estimated_cost > 0
        assert "mode=off" in profile.summary()

    def test_memory_budget_override(self, two_table_db):
        generous = two_table_db.execute(
            "SELECT r1.a one, r2.c two FROM r1, r2 WHERE r1.id = r2.r1_id",
            mode=DynamicMode.OFF,
            memory_budget_pages=10_000,
        )
        assert generous.profile.breakdown.write == 0

    def test_bind_error_propagates(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.execute("SELECT missing FROM r1")

    def test_udf_round_trip(self, two_table_db):
        two_table_db.register_udf("plus_one", lambda x: x + 1)
        result = two_table_db.execute(
            "SELECT count(*) n FROM r1 WHERE plus_one(a) = 5", mode=DynamicMode.OFF
        )
        expected = sum(1 for row in two_table_db.table("r1").rows if row[1] + 1 == 5)
        assert result.rows[0][0] == expected

    def test_executions_are_deterministic(self, two_table_db):
        sql = "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id GROUP BY r1.a"
        first = two_table_db.execute(sql, mode=DynamicMode.FULL)
        second = two_table_db.execute(sql, mode=DynamicMode.FULL)
        assert first.profile.total_cost == pytest.approx(second.profile.total_cost)
        assert sorted(map(str, first.rows)) == sorted(map(str, second.rows))

    def test_stats_overhead_fraction(self, two_table_db):
        result = two_table_db.execute(
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id "
            "AND r1.a < 50 GROUP BY r1.a",
            mode=DynamicMode.FULL,
        )
        assert 0.0 <= result.profile.stats_overhead_fraction < 0.2
