"""Tests for histograms: builders, estimation, propagation (incl. hypothesis)."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StatisticsError
from repro.stats.histogram import (
    Bucket,
    Histogram,
    HistogramKind,
    build_end_biased,
    build_equi_depth,
    build_equi_width,
    build_histogram,
    build_maxdiff,
    from_sample,
)

ALL_BUILDERS = [build_equi_width, build_equi_depth, build_maxdiff, build_end_biased]

values_strategy = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=400
)


class TestBucket:
    def test_inverted_bounds_rejected(self):
        with pytest.raises(StatisticsError):
            Bucket(low=5, high=4, count=1, distinct=1)

    def test_contains(self):
        b = Bucket(low=0, high=10, count=5, distinct=5)
        assert b.contains(0) and b.contains(10) and b.contains(5)
        assert not b.contains(-1) and not b.contains(11)

    def test_overlap_fraction(self):
        b = Bucket(low=0, high=10, count=5, distinct=5)
        assert b.overlap_fraction(0, 10) == pytest.approx(1.0)
        assert b.overlap_fraction(0, 5) == pytest.approx(0.5)
        assert b.overlap_fraction(20, 30) == 0.0

    def test_singleton_overlap(self):
        b = Bucket(low=5, high=5, count=3, distinct=1)
        assert b.overlap_fraction(0, 10) == 1.0
        assert b.overlap_fraction(6, 10) == 0.0


class TestBuilders:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_empty_input(self, builder):
        hist = builder([], 8)
        assert hist.is_empty

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_total_count_preserved(self, builder):
        values = [1, 1, 2, 5, 5, 5, 9, 100]
        hist = builder(values, 4)
        assert hist.total_count == pytest.approx(len(values))

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_total_distinct_preserved(self, builder):
        values = [1, 1, 2, 5, 5, 5, 9, 100]
        hist = builder(values, 4)
        assert hist.total_distinct == pytest.approx(5)

    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_bounds_cover_data(self, builder):
        values = [3, 7, 7, 19, 42]
        hist = builder(values, 3)
        assert hist.min_value == 3
        assert hist.max_value == 42

    def test_equi_depth_balances_counts(self):
        values = list(range(100))
        hist = build_equi_depth(values, 4)
        counts = [b.count for b in hist.buckets]
        assert max(counts) - min(counts) <= 26

    def test_maxdiff_isolates_outlier_frequency(self):
        # One value is hugely more frequent; MaxDiff should separate it.
        values = [5] * 1000 + list(range(10, 60))
        hist = build_maxdiff(values, 8)
        bucket_of_5 = next(b for b in hist.buckets if b.contains(5))
        assert bucket_of_5.distinct <= 2

    def test_maxdiff_exact_when_few_distinct(self):
        values = [1, 1, 2, 3]
        hist = build_maxdiff(values, 10)
        assert len(hist.buckets) == 3
        assert all(b.low == b.high for b in hist.buckets)

    def test_end_biased_singles_out_top_frequencies(self):
        values = [7] * 500 + [13] * 300 + list(range(100, 200))
        hist = build_end_biased(values, 5)
        singletons = [b for b in hist.buckets if b.low == b.high]
        singleton_values = {b.low for b in singletons}
        assert 7 in singleton_values and 13 in singleton_values

    def test_dispatcher(self):
        for kind in HistogramKind:
            hist = build_histogram([1, 2, 3], kind=kind)
            assert hist.kind is kind

    def test_invalid_bucket_count(self):
        with pytest.raises(StatisticsError):
            build_histogram([1], num_buckets=0)

    @given(values_strategy, st.integers(min_value=1, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_property_mass_conservation(self, values, buckets):
        for builder in ALL_BUILDERS:
            hist = builder(values, buckets)
            assert hist.total_count == pytest.approx(len(values))
            assert hist.min_value == min(values)
            assert hist.max_value == max(values)

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_buckets_sorted_disjoint(self, values):
        for builder in ALL_BUILDERS:
            hist = builder(values, 8)
            for prev, nxt in zip(hist.buckets, hist.buckets[1:]):
                assert nxt.low >= prev.high


class TestEstimation:
    def _hist(self, values, kind=HistogramKind.MAXDIFF, buckets=16):
        return build_histogram(values, kind=kind, num_buckets=buckets)

    def test_eq_selectivity_exact_histogram(self):
        values = [1] * 50 + [2] * 30 + [3] * 20
        hist = self._hist(values)
        assert hist.selectivity_eq(1) == pytest.approx(0.5)
        assert hist.selectivity_eq(3) == pytest.approx(0.2)

    def test_eq_outside_domain_is_zero(self):
        hist = self._hist([1, 2, 3])
        assert hist.selectivity_eq(99) == 0.0

    def test_range_selectivity_full_domain(self):
        hist = self._hist(list(range(100)))
        assert hist.selectivity_range(None, None) == pytest.approx(1.0)

    def test_range_selectivity_half(self):
        hist = self._hist(list(range(1000)), buckets=32)
        sel = hist.selectivity_range(None, 499)
        assert 0.4 < sel < 0.6

    def test_range_empty(self):
        hist = self._hist(list(range(100)))
        assert hist.selectivity_range(500, 600) == 0.0
        assert hist.selectivity_range(50, 40) == 0.0

    def test_count_and_distinct_in_range(self):
        hist = self._hist(list(range(100)))
        assert hist.count_in_range(None, None) == pytest.approx(100)
        assert hist.distinct_in_range(None, None) == pytest.approx(100)

    @given(values_strategy, st.integers(min_value=-1500, max_value=1500))
    @settings(max_examples=60, deadline=None)
    def test_property_selectivities_bounded(self, values, probe):
        hist = self._hist(values)
        assert 0.0 <= hist.selectivity_eq(probe) <= 1.0
        assert 0.0 <= hist.selectivity_range(probe, None) <= 1.0
        assert 0.0 <= hist.selectivity_range(None, probe) <= 1.0

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_eq_sums_close_to_one(self, values):
        """Summing eq-selectivity over all distinct values covers the mass."""
        hist = self._hist(values)
        total = sum(hist.selectivity_eq(v) for v in set(values))
        assert total == pytest.approx(1.0, rel=0.05)


class TestPropagation:
    def test_scaled_shrinks_counts(self):
        hist = build_maxdiff(list(range(100)), 8)
        scaled = hist.scaled(0.5)
        assert scaled.total_count == pytest.approx(50)
        assert scaled.total_distinct <= hist.total_distinct

    def test_scaled_clamps_factor(self):
        hist = build_maxdiff(list(range(10)), 4)
        assert hist.scaled(5.0).total_count == pytest.approx(10)
        with pytest.raises(StatisticsError):
            hist.scaled(-1)

    def test_scaled_counts_keeps_distincts(self):
        hist = build_maxdiff([1, 1, 2, 2], 4)
        scaled = hist.scaled_counts(10.0)
        assert scaled.total_count == pytest.approx(40)
        assert scaled.total_distinct == pytest.approx(2)

    def test_restricted_slices_domain(self):
        hist = build_equi_width(list(range(100)), 10)
        restricted = hist.restricted(20, 39)
        assert restricted.min_value >= 20
        assert restricted.max_value <= 39.0 + 1e-9
        assert restricted.total_count == pytest.approx(20, rel=0.3)

    def test_restricted_to_point(self):
        hist = build_maxdiff([1] * 10 + [2] * 20, 4)
        point = hist.restricted(2, 2)
        assert point.total_count == pytest.approx(20)

    def test_join_cardinality_key_fk(self):
        # Key side: values 0..99 once each; FK side: 1000 refs uniform.
        key_hist = build_maxdiff(list(range(100)), 16)
        fk_values = [i % 100 for i in range(1000)]
        fk_hist = build_maxdiff(fk_values, 16)
        estimate = key_hist.join_cardinality(fk_hist)
        assert estimate == pytest.approx(1000, rel=0.35)

    def test_join_cardinality_disjoint_is_zero(self):
        a = build_maxdiff(list(range(0, 50)), 8)
        b = build_maxdiff(list(range(100, 150)), 8)
        assert a.join_cardinality(b) == 0.0

    def test_join_cardinality_empty(self):
        a = build_maxdiff([], 8)
        b = build_maxdiff([1], 8)
        assert a.join_cardinality(b) == 0.0

    @given(values_strategy, values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_join_bounded_by_cross_product(self, left, right):
        a = build_maxdiff(left, 8)
        b = build_maxdiff(right, 8)
        assert 0 <= a.join_cardinality(b) <= len(left) * len(right) * 1.0001


class TestFromSample:
    def test_scaling_to_population(self):
        sample = [1, 2, 3, 4] * 5
        hist = from_sample(sample, population_count=2000)
        assert hist.total_count == pytest.approx(2000)
        assert hist.total_distinct == pytest.approx(4)

    def test_empty_sample(self):
        assert from_sample([], population_count=100).is_empty

    def test_selectivity_from_sampled_histogram(self):
        # A sampled histogram should estimate roughly like a full one.
        import random

        rng = random.Random(11)
        population = [rng.randrange(100) for __ in range(20_000)]
        sample = rng.sample(population, 500)
        sampled_hist = from_sample(sample, population_count=len(population))
        full_hist = build_maxdiff(population, 32)
        for probe in (10, 50, 90):
            assert sampled_hist.selectivity_range(None, probe) == pytest.approx(
                full_hist.selectivity_range(None, probe), abs=0.08
            )
