"""Tests for the execution engine: operators, memory manager, segments."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, DataType
from repro.core.modes import DynamicMode
from repro.errors import MemoryGrantError
from repro.executor import (
    MemoryManager,
    blocking_input_edges,
    execution_order,
    memory_demands,
    segments,
)
from repro.plans.physical import (
    HashAggregateNode,
    HashJoinNode,
    SeqScanNode,
    SortNode,
)

from .conftest import make_two_table_db
from .oracle import evaluate


def run_both(db: Database, sql: str) -> tuple[list, list]:
    """Execute via the engine (OFF mode) and via the brute-force oracle."""
    result = db.execute(sql, mode=DynamicMode.OFF)
    expected = evaluate(db, db.bind_sql(sql))
    return result.rows, expected


def assert_same_rowset(actual, expected):
    assert sorted(map(repr, actual)) == sorted(map(repr, expected))


class TestOperatorCorrectness:
    """Engine output must match the brute-force oracle on every operator."""

    @pytest.fixture(scope="class")
    def db(self):
        return make_two_table_db(r1_rows=300, r2_rows=800)

    def test_scan_projection(self, db):
        actual, expected = run_both(db, "SELECT a, b FROM r1")
        assert_same_rowset(actual, expected)

    def test_filter(self, db):
        actual, expected = run_both(db, "SELECT a FROM r1 WHERE a < 30 AND b >= 10")
        assert_same_rowset(actual, expected)

    def test_or_filter(self, db):
        actual, expected = run_both(db, "SELECT a FROM r1 WHERE a = 1 OR b = 2")
        assert_same_rowset(actual, expected)

    def test_in_filter(self, db):
        actual, expected = run_both(db, "SELECT a FROM r1 WHERE a IN (1, 5, 9)")
        assert_same_rowset(actual, expected)

    def test_hash_join(self, db):
        actual, expected = run_both(
            db, "SELECT r1.a, r2.c FROM r1, r2 WHERE r1.id = r2.r1_id"
        )
        assert_same_rowset(actual, expected)

    def test_join_with_selections(self, db):
        actual, expected = run_both(
            db,
            "SELECT r1.a, r2.c FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a < 40 AND r2.c > 2",
        )
        assert_same_rowset(actual, expected)

    def test_cross_join(self):
        db = make_two_table_db(r1_rows=12, r2_rows=9)
        actual, expected = run_both(db, "SELECT r1.a, r2.c FROM r1, r2")
        assert_same_rowset(actual, expected)

    def test_non_equi_join(self):
        db = make_two_table_db(r1_rows=30, r2_rows=25)
        actual, expected = run_both(
            db, "SELECT r1.a, r2.c FROM r1, r2 WHERE r1.a < r2.c"
        )
        assert_same_rowset(actual, expected)

    def test_group_by_aggregates(self, db):
        actual, expected = run_both(
            db,
            "SELECT a, count(*) n, sum(b) s, avg(b) m, min(b) lo, max(b) hi "
            "FROM r1 GROUP BY a",
        )
        assert_same_rowset(actual, expected)

    def test_scalar_aggregate(self, db):
        actual, expected = run_both(db, "SELECT sum(b) s, count(*) n FROM r1")
        assert_same_rowset(actual, expected)

    def test_scalar_aggregate_empty_input(self, db):
        actual, expected = run_both(
            db, "SELECT sum(b) s, count(*) n FROM r1 WHERE a > 10000"
        )
        assert_same_rowset(actual, expected)
        assert actual[0] == (None, 0)

    def test_aggregate_over_expression(self, db):
        actual, expected = run_both(db, "SELECT sum(b * 2 + 1) s FROM r1")
        assert actual[0][0] == pytest.approx(expected[0][0])

    def test_order_by_limit(self, db):
        result = db.execute(
            "SELECT a, sum(b) s FROM r1 GROUP BY a ORDER BY s DESC, a LIMIT 5",
            mode=DynamicMode.OFF,
        )
        expected = evaluate(
            db,
            db.bind_sql(
                "SELECT a, sum(b) s FROM r1 GROUP BY a ORDER BY s DESC, a LIMIT 5"
            ),
        )
        assert result.rows == expected  # ordered comparison

    def test_limit_zero(self, db):
        result = db.execute("SELECT a FROM r1 LIMIT 0", mode=DynamicMode.OFF)
        assert result.rows == []

    def test_index_scan_matches_seq_scan(self):
        db = make_two_table_db(r1_rows=20_000)
        sql = "SELECT id one FROM r1 WHERE a = 17"
        before = db.execute(sql, mode=DynamicMode.OFF)
        db.create_index("ix_r1_a", "r1", "a", clustered=True)
        after = db.execute(sql, mode=DynamicMode.OFF)
        assert_same_rowset(before.rows, after.rows)

    def test_index_nl_join_matches_hash_join(self):
        db = make_two_table_db(r1_rows=40_000, r2_rows=40_000)
        sql = (
            "SELECT r2.c FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r1.a = 7 AND r1.b = 3"
        )
        without_index = db.execute(sql, mode=DynamicMode.OFF)
        db.create_index("ix_r2_r1id", "r2", "r1_id", clustered=True)
        with_index = db.execute(sql, mode=DynamicMode.OFF)
        assert_same_rowset(without_index.rows, with_index.rows)

    def test_udf_in_predicate(self, db):
        db.register_udf("halved", lambda x: x / 2)
        actual = db.execute(
            "SELECT a FROM r1 WHERE halved(a) < 5", mode=DynamicMode.OFF
        )
        expected = [(row[1],) for row in db.table("r1").rows if row[1] / 2 < 5]
        assert_same_rowset(actual.rows, expected)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        threshold=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_join_filter_agree_with_oracle(self, seed, threshold):
        db = make_two_table_db(r1_rows=60, r2_rows=90, seed=seed)
        sql = (
            f"SELECT r1.a, r2.c FROM r1, r2 "
            f"WHERE r1.id = r2.r1_id AND r1.a < {threshold}"
        )
        actual, expected = run_both(db, sql)
        assert_same_rowset(actual, expected)


class TestSpillAccounting:
    def test_tight_memory_costs_more(self):
        db = make_two_table_db(r1_rows=20_000, r2_rows=40_000)
        sql = "SELECT r1.a one, r2.c two FROM r1, r2 WHERE r1.id = r2.r1_id"
        generous = db.execute(sql, mode=DynamicMode.OFF, memory_budget_pages=4096)
        tight = db.execute(sql, mode=DynamicMode.OFF, memory_budget_pages=32)
        assert tight.profile.total_cost > generous.profile.total_cost
        assert tight.profile.breakdown.write > 0
        assert generous.profile.breakdown.write == 0
        assert_same_rowset(generous.rows, tight.rows)


class TestMemoryManager:
    def _demand_plan(self):
        db = make_two_table_db(r1_rows=20_000, r2_rows=40_000)
        plan, __, __opt = db.plan(
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id GROUP BY r1.a",
            mode=DynamicMode.OFF,
        )
        return plan

    def test_execution_order_children_first(self):
        plan = self._demand_plan()
        order = execution_order(plan)
        positions = {node.node_id: i for i, node in enumerate(order)}
        for node in plan.walk():
            for child in node.children:
                assert positions[child.node_id] < positions[node.node_id]

    def test_demands_in_execution_order(self):
        plan = self._demand_plan()
        demands = memory_demands(plan)
        assert demands, "expected memory-consuming operators"
        assert all(d.min_pages <= d.max_pages for d in demands)

    def test_grants_within_bounds_and_budget(self):
        plan = self._demand_plan()
        manager = MemoryManager(128)
        grants = memory_demands(plan), manager.allocate(plan)
        demands, allocation = grants
        assert sum(allocation.values()) <= 128
        for demand in demands:
            grant = allocation[demand.node_id]
            assert grant in (demand.min_pages, demand.max_pages)

    def test_max_granted_when_budget_ample(self):
        plan = self._demand_plan()
        allocation = MemoryManager(100_000).allocate(plan)
        for demand in memory_demands(plan):
            assert allocation[demand.node_id] == demand.max_pages

    def test_min_when_budget_tight(self):
        plan = self._demand_plan()
        demands = memory_demands(plan)
        tight = sum(d.min_pages for d in demands)
        allocation = MemoryManager(tight).allocate(plan)
        for demand in demands:
            assert allocation[demand.node_id] == demand.min_pages

    def test_insufficient_budget_raises(self):
        plan = self._demand_plan()
        demands = memory_demands(plan)
        too_small = sum(d.min_pages for d in demands) - 1
        with pytest.raises(MemoryGrantError):
            MemoryManager(too_small).allocate(plan)

    def test_fixed_grants_respected(self):
        plan = self._demand_plan()
        demands = memory_demands(plan)
        first = demands[0]
        allocation = MemoryManager(10_000).allocate(plan, fixed={first.node_id: 5})
        assert allocation[first.node_id] == 5

    def test_floors_prevent_downgrade(self):
        plan = self._demand_plan()
        demands = memory_demands(plan)
        target = demands[-1]
        floor = target.max_pages + 37
        allocation = MemoryManager(100_000).allocate(
            plan, floors={target.node_id: floor}
        )
        assert allocation[target.node_id] >= floor

    def test_second_pass_upgrade(self):
        plan = self._demand_plan()
        demands = memory_demands(plan)
        # Budget: all mins plus exactly one operator's upgrade headroom.
        upgrade = demands[-1].max_pages - demands[-1].min_pages
        budget = sum(d.min_pages for d in demands) + upgrade
        allocation = MemoryManager(budget).allocate(plan)
        assert sum(allocation.values()) <= budget

    def test_invalid_budget(self):
        with pytest.raises(MemoryGrantError):
            MemoryManager(0)


class TestSegments:
    def _plan(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan(
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id "
            "GROUP BY r1.a ORDER BY s",
            mode=DynamicMode.OFF,
        )
        return plan

    def test_blocking_edges_found(self):
        plan = self._plan()
        edges = blocking_input_edges(plan)
        kinds = {type(parent) for parent, __ in edges}
        assert HashJoinNode in kinds
        assert HashAggregateNode in kinds
        assert SortNode in kinds

    def test_segments_partition_all_nodes(self):
        plan = self._plan()
        segs = segments(plan)
        all_ids = [n.node_id for n in plan.walk()]
        seg_ids = [nid for seg in segs for nid in seg.node_ids]
        assert sorted(all_ids) == sorted(seg_ids)

    def test_segments_in_dependency_order(self):
        plan = self._plan()
        segs = segments(plan)
        seen: set[int] = set()
        position = {}
        for i, seg in enumerate(segs):
            for nid in seg.node_ids:
                position[nid] = i
        # A blocking input's segment must come before its consumer's segment.
        for parent, child_index in blocking_input_edges(plan):
            child = parent.children[child_index]
            assert position[child.node_id] < position[parent.node_id]
        del seen

    def test_scan_only_plan_is_single_segment(self):
        db = make_two_table_db()
        plan, __, __opt = db.plan("SELECT a FROM r1", mode=DynamicMode.OFF)
        assert len(segments(plan)) == 1
