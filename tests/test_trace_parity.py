"""Trace-parity suite: tracing must never perturb the simulated engine.

The observe subsystem's contract (DESIGN.md section 11): the tracer only
*reads* the cost clock, so result rows, the simulated ``CostBreakdown``,
buffer-pool statistics and observed collector statistics are byte-identical
with tracing on or off — on the row, batch and morsel-parallel paths, for
every TPC-D query, and across a mid-query plan switch.  The CI leg that
runs the whole repository suite under ``REPRO_TRACE=1`` enforces the same
thing from the environment side.
"""

from __future__ import annotations

import pytest

from repro import Database, DynamicMode, EngineConfig, QueryTracer
from repro.bench import ExperimentConfig, build_database
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.observe.validate import validate_trace
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)
from repro.workloads.tpcd import ALL_QUERIES

SWITCH_PARAMS = {"value1": 80, "value2": 80}

#: (execution_mode, workers) combinations the contract covers.
EXECUTION_SHAPES = (("row", 0), ("batch", 0), ("parallel", 2))


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return build_database(ExperimentConfig(scale_factor=0.01))


def dispatch(db: Database, plan, execution_mode: str, workers: int = 0,
             traced: bool = False):
    """One dispatcher run on a fresh runtime context; returns (result, ctx)."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
        tracer=QueryTracer(clock) if traced else None,
    )
    try:
        result = Dispatcher(ctx).run(plan)
    finally:
        ctx.temp_manager.drop_all()
    return result, ctx


def assert_ctx_parity(baseline_ctx, traced_ctx) -> None:
    """Bit-for-bit equality of every simulated quantity."""
    assert traced_ctx.clock.breakdown == baseline_ctx.clock.breakdown
    assert traced_ctx.clock.now == baseline_ctx.clock.now
    assert traced_ctx.buffer_pool.stats == baseline_ctx.buffer_pool.stats
    assert set(traced_ctx.observed) == set(baseline_ctx.observed)
    for node_id, base in baseline_ctx.observed.items():
        other = traced_ctx.observed[node_id]
        assert other.row_count == base.row_count
        assert other.row_bytes == base.row_bytes
        assert dict(other.minmax) == dict(base.minmax)
        assert dict(other.distincts) == dict(base.distincts)
        assert set(other.histograms) == set(base.histograms)
        for column, hist in base.histograms.items():
            traced_hist = other.histograms[column]
            assert traced_hist.kind == hist.kind
            assert traced_hist.buckets == hist.buckets


class TestTpcdTraceParity:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_all_shapes_identical_with_tracing(self, tpcd_db, query):
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        for execution_mode, workers in EXECUTION_SHAPES:
            baseline, baseline_ctx = dispatch(
                tpcd_db, plan, execution_mode, workers, traced=False
            )
            traced, traced_ctx = dispatch(
                tpcd_db, plan, execution_mode, workers, traced=True
            )
            assert traced.rows == baseline.rows, execution_mode
            assert_ctx_parity(baseline_ctx, traced_ctx)
            assert baseline_ctx.tracer is None
            # And the trace produced alongside is a loadable document.
            assert validate_trace(traced_ctx.tracer.to_chrome()) == []


class TestEndToEndTraceParity:
    """Whole-engine parity: ``EngineConfig(tracing=True)`` vs. ``False``
    on separately built but identically seeded databases."""

    @pytest.fixture(scope="class")
    def switch_dbs(self):
        def build(tracing: bool) -> Database:
            # Both engines must make the same cold misestimates; the
            # feedback loop would teach the second run a different plan.
            db = Database(
                EngineConfig(tracing=tracing, feedback_enabled=False)
            )
            build_running_example(
                db,
                SyntheticConfig(
                    rel1_rows=20_000, rel3_rows=60_000, correlation=1.0
                ),
            )
            return db

        return build(False), build(True)

    @pytest.mark.parametrize("execution_mode,workers", EXECUTION_SHAPES)
    def test_mid_query_switch_parity(self, switch_dbs, execution_mode, workers):
        plain_db, traced_db = switch_dbs
        kwargs = dict(
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode=execution_mode,
        )
        if workers:
            kwargs["workers"] = workers
        plain = plain_db.execute(RUNNING_EXAMPLE_SQL, **kwargs)
        traced = traced_db.execute(RUNNING_EXAMPLE_SQL, **kwargs)

        assert plain.profile.plan_switches >= 1
        assert plain.rows == traced.rows
        assert traced.profile.breakdown == plain.profile.breakdown
        assert traced.profile.total_cost == plain.profile.total_cost
        assert traced.profile.buffer == plain.profile.buffer
        assert traced.profile.plan_switches == plain.profile.plan_switches
        assert (
            traced.profile.memory_reallocations
            == plain.profile.memory_reallocations
        )
        assert traced.profile.remainder_sqls == plain.profile.remainder_sqls

        assert plain.profile.trace is None
        trace = traced.profile.trace
        assert trace is not None
        assert validate_trace(trace.to_chrome()) == []
        names = {e.name for e in trace.events}
        assert "plan-switch" in names and "reopt-decision" in names

    def test_dynamic_modes_parity(self, switch_dbs):
        plain_db, traced_db = switch_dbs
        for mode in (DynamicMode.OFF, DynamicMode.MEMORY_ONLY, DynamicMode.FULL):
            plain = plain_db.execute(
                RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=mode
            )
            traced = traced_db.execute(
                RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=mode
            )
            assert plain.rows == traced.rows
            assert traced.profile.breakdown == plain.profile.breakdown
            assert traced.profile.buffer == plain.profile.buffer

    def test_explain_analyze_does_not_perturb_either(self, switch_dbs):
        plain_db, __ = switch_dbs
        baseline = plain_db.execute(
            RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=DynamicMode.FULL
        )
        report = plain_db.explain_analyze(
            RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=DynamicMode.FULL
        )
        assert report.result.rows == baseline.rows
        assert report.result.profile.breakdown == baseline.profile.breakdown
        assert report.result.profile.buffer == baseline.profile.buffer


# ----------------------------------------------------------------------
# Server mode (PR 10, satellite): traces from concurrent sessions
# ----------------------------------------------------------------------


class TestServerModeTracing:
    """Chrome trace export stays valid when statements run through the
    query server: concurrent sessions each get a complete, balanced trace;
    morsel-parallel workers land on per-pid tid lanes; the exported file
    round-trips through ``observe.validate``'s CLI."""

    @pytest.fixture(scope="class")
    def server_db(self) -> Database:
        db = Database(
            EngineConfig(server_mode=True, max_sessions=4, tracing=True)
        )
        build_running_example(
            db,
            SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0),
        )
        return db

    def test_concurrent_sessions_each_get_valid_traces(self, server_db):
        import threading

        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def run(name: str) -> None:
            session = server_db.create_session(name)
            try:
                results[name] = session.execute(
                    RUNNING_EXAMPLE_SQL,
                    params=SWITCH_PARAMS,
                    mode=DynamicMode.FULL,
                )
            except BaseException as exc:  # surfaced below
                errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=run, args=(name,))
            for name in ("alice", "bob", "carol")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert len(results) == 3
        for name, result in results.items():
            trace = result.profile.trace
            assert trace is not None, name
            document = trace.to_chrome()
            assert validate_trace(document) == [], name
            assert document["traceEvents"], name

    def test_parallel_morsels_use_per_pid_tid_lanes(self, server_db):
        session = server_db.create_session("lanes")
        try:
            result = session.execute(
                RUNNING_EXAMPLE_SQL,
                params=SWITCH_PARAMS,
                mode=DynamicMode.FULL,
                execution_mode="parallel",
                workers=2,
            )
        finally:
            session.close()
        document = result.profile.trace.to_chrome()
        assert validate_trace(document) == []
        events = document["traceEvents"]
        # Every event belongs to the submitting process...
        assert {e["pid"] for e in events} == {result.profile.trace.pid}
        # ...but morsel spans are recorded on their worker's pid as the
        # tid, so concurrent workers render as separate lanes.
        assert len({e["tid"] for e in events}) >= 2

    def test_export_round_trips_through_validator_cli(self, server_db, tmp_path):
        from repro.observe.validate import main as validate_main

        session = server_db.create_session("export")
        try:
            result = session.execute(
                RUNNING_EXAMPLE_SQL, params=SWITCH_PARAMS, mode=DynamicMode.FULL
            )
        finally:
            session.close()
        path = str(tmp_path / "server-trace.json")
        result.profile.trace.export_chrome(path)
        assert validate_main([path]) == 0
