"""Vectorized aggregation & join-probe kernels: bit-exact float parity.

The contract under test (DESIGN.md section 13): the NumPy group-by fold
kernels in ``executor/agg_kernels.py`` reproduce the serial accumulator
byte-for-byte — including non-associative float SUM/AVG, signed zeros,
infinities and NaN — so the columnar path aggregates entirely in column
space and the parallel path pre-aggregates float SUM/AVG as ordered value
runs instead of shipping raw rows.  Plus the searchsorted join-probe
kernel's exact emission-order parity, and the ``vectorized_agg`` /
``vectorized_probe`` knobs that disable each independently.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro import Database, DataType, DynamicMode, EngineConfig
from repro.bench import ExperimentConfig, build_database
from repro.executor.iterators import _AggState
from repro.executor.parallel import _ValueRun
from repro.plans.logical import AggFunc
from repro.storage.columnar import numpy_available

from .test_columnar import assert_bit_identical, dispatch

np = pytest.importorskip("numpy")

from repro.executor import agg_kernels  # noqa: E402  (needs numpy)
from repro.executor.agg_kernels import (  # noqa: E402
    ProbeIndex,
    factorize_array,
    factorize_values,
    float_group_sums,
    group_counts,
    int_group_sums,
    kernels_available,
    left_fold_sum,
    minmax_group_fold,
    object_group_minmax,
    object_group_sums,
)

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="vectorized kernels require numpy"
)


def bits(x: float) -> bytes:
    """The exact 8 bytes of a float — -0.0 != 0.0, NaN payloads compared."""
    return struct.pack("<d", x)


def serial_sum(values):
    """The serial accumulator verbatim: int 0 start, NULLs skipped."""
    total = 0
    for v in values:
        if v is not None:
            total += v
    return total


ADVERSARIAL = [
    1e300, -1e300, 0.1, -0.1, 1e-300, -1e-300, -0.0, 0.0,
    1.0, -1.0, 1e16, 1.0 + 2**-52, 0.3333333333333333, 2.5,
]


# ----------------------------------------------------------------------
# Fold kernels (satellite: edge cases with bit parity)
# ----------------------------------------------------------------------


class TestFloatSums:
    def test_kernels_probe_passed(self):
        assert kernels_available()

    def test_random_groups_bit_parity(self):
        rng = random.Random(42)
        for __trial in range(60):
            n_groups = rng.randrange(1, 9)
            n = rng.randrange(n_groups, 400)
            codes = [rng.randrange(n_groups) for i in range(n)]
            for g in range(n_groups):  # every group owns >= 1 row
                codes[g] = g
            values = [rng.choice(ADVERSARIAL) for __ in range(n)]
            got = float_group_sums(
                np.asarray(values, dtype=np.float64),
                np.asarray(codes, dtype=np.int64),
                n_groups,
            )
            for g in range(n_groups):
                expect = serial_sum(v for c, v in zip(codes, values) if c == g)
                assert bits(got[g]) == bits(expect)

    def test_single_row_groups(self):
        values = np.asarray([-0.0, 1e300, -1e-300], dtype=np.float64)
        codes = np.asarray([0, 1, 2], dtype=np.int64)
        got = float_group_sums(values, codes, 3)
        # Serial starts each group at int 0, so 0 + -0.0 == +0.0.
        assert bits(got[0]) == bits(0.0)
        assert bits(got[1]) == bits(1e300)
        assert bits(got[2]) == bits(-1e-300)

    def test_all_rows_one_group(self):
        rng = random.Random(7)
        values = [rng.choice(ADVERSARIAL) for __ in range(257)]
        got = float_group_sums(
            np.asarray(values, dtype=np.float64),
            np.zeros(len(values), dtype=np.int64),
            1,
        )
        assert bits(got[0]) == bits(serial_sum(values))

    def test_overflow_to_inf_matches_serial(self):
        values = np.asarray([1e308, 1e308, -1e308], dtype=np.float64)
        codes = np.zeros(3, dtype=np.int64)
        # Serial: 1e308 + 1e308 -> inf, inf + -1e308 -> inf.
        assert float_group_sums(values, codes, 1) == [serial_sum(values.tolist())]
        mixed = np.asarray([1e308, 1e308, float("-inf")], dtype=np.float64)
        got = float_group_sums(mixed, codes, 1)[0]
        assert np.isnan(got)  # inf + -inf, like the serial fold

    def test_counts_are_exact_powers_of_two(self):
        # Boundary lengths around the pow-2 size classes, one group each.
        lengths = [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65]
        values, codes = [], []
        rng = random.Random(3)
        for g, length in enumerate(lengths):
            run = [rng.choice(ADVERSARIAL) for __ in range(length)]
            values.extend(run)
            codes.extend([g] * length)
        got = float_group_sums(
            np.asarray(values, dtype=np.float64),
            np.asarray(codes, dtype=np.int64),
            len(lengths),
        )
        for g in range(len(lengths)):
            expect = serial_sum(v for c, v in zip(codes, values) if c == g)
            assert bits(got[g]) == bits(expect)


class TestIntAndObjectSums:
    def test_int_sums_exact(self):
        values = np.asarray([2**40, -(2**40), 17, 1], dtype=np.int64)
        codes = np.asarray([0, 0, 1, 1], dtype=np.int64)
        assert int_group_sums(values, codes, 2) == [0, 18]

    def test_int_overflow_falls_back_to_object(self):
        # Partial sums would wrap int64; the object-dtype fold keeps
        # arbitrary-precision Python ints, exactly like serial.
        big = 2**62
        values = np.asarray([big, big, big], dtype=np.int64)
        codes = np.zeros(3, dtype=np.int64)
        assert int_group_sums(values, codes, 1) == [3 * big]

    def test_object_sums_null_only_group(self):
        # All-NULL group keeps the serial int-0 start; NULLs skip.
        totals = object_group_sums([None, 5, None, 2.5], [0, 1, 0, 1], 2)
        assert totals[0] == 0 and type(totals[0]) is int
        assert totals[1] == 7.5

    def test_empty_input(self):
        assert object_group_sums([], [], 0) == []
        assert group_counts(np.asarray([], dtype=np.int64), 0) == []


class TestMinMaxFolds:
    def test_signed_zero_keeps_first(self):
        values = np.asarray([-0.0, 0.0, 0.0, -0.0], dtype=np.float64)
        codes = np.asarray([0, 0, 1, 1], dtype=np.int64)
        # Serial strict < / > keeps the first occurrence on ties.
        assert bits(minmax_group_fold(values, codes, 2, False)[0]) == bits(-0.0)
        assert bits(minmax_group_fold(values, codes, 2, True)[0]) == bits(-0.0)
        assert bits(minmax_group_fold(values, codes, 2, False)[1]) == bits(0.0)
        assert bits(minmax_group_fold(values, codes, 2, True)[1]) == bits(0.0)

    def test_nan_matches_serial_keep_first(self):
        nan = float("nan")
        for run in ([nan, 1.0, 2.0], [1.0, nan, 2.0], [2.0, 1.0, nan], [nan]):
            values = np.asarray(run, dtype=np.float64)
            codes = np.zeros(len(run), dtype=np.int64)
            for maximum in (False, True):
                got = minmax_group_fold(values, codes, 1, maximum)[0]
                best = None
                for v in run:
                    if best is None or (v > best if maximum else v < best):
                        best = v
                assert bits(got) == bits(best)

    def test_object_minmax_null_only_group(self):
        assert object_group_minmax([None, None], [0, 0], 1, False) == [None]
        assert object_group_minmax([None, 3], [0, 0], 1, True) == [3]


class TestFactorization:
    def test_first_occurrence_order(self):
        codes, keys, firsts = factorize_array(
            np.asarray([7, 3, 7, 9, 3], dtype=np.int64)
        )
        assert codes.tolist() == [0, 1, 0, 2, 1]
        assert keys.tolist() == [7, 3, 9]
        assert firsts.tolist() == [0, 1, 3]

    def test_values_replicate_serial_dict_semantics(self):
        nan_a, nan_b = float("nan"), float("nan")
        seq = [nan_a, 0.0, nan_b, -0.0, nan_a]
        codes, keys = factorize_values(seq)
        # Each distinct NaN object is its own group; the same object
        # repeats its group.  0.0 and -0.0 share the first-seen key.
        assert codes.tolist() == [0, 1, 2, 1, 0]
        assert keys[0] is nan_a and keys[2] is nan_b
        assert bits(keys[1]) == bits(0.0)


class TestLeftFoldSum:
    def test_matches_serial_and_keeps_types(self):
        rng = random.Random(5)
        floats = [rng.choice(ADVERSARIAL) for __ in range(333)]
        assert bits(left_fold_sum(floats)) == bits(serial_sum(floats))
        ints = list(range(100))
        total = left_fold_sum(ints)
        assert total == sum(ints) and type(total) is int
        mixed = [1, 2.5] * 20
        assert left_fold_sum(mixed) == serial_sum(mixed)
        assert left_fold_sum([]) == 0 and type(left_fold_sum([])) is int

    def test_long_adversarial_cancellation(self):
        values = [1e16, 1.0, -1e16, 1.0] * 64
        assert bits(left_fold_sum(values)) == bits(serial_sum(values))


# ----------------------------------------------------------------------
# _AggState.merge and _ValueRun (parallel partials)
# ----------------------------------------------------------------------


class TestAggStateMerge:
    @pytest.mark.parametrize(
        "values",
        [
            [None, None, None],          # NULL-only
            [7],                         # single row
            [],                          # empty split half
            [3, None, 9, 1, None, 5, 2],
            [2**62, 2**62, 2**62],       # big-int totals stay exact
        ],
        ids=["null-only", "single", "empty", "mixed", "bigint"],
    )
    def test_merge_matches_serial_fold(self, values):
        for func in (AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN, AggFunc.MAX):
            for split in range(len(values) + 1):
                serial = _AggState(func)
                serial.update_batch(values)
                left, right = _AggState(func), _AggState(func)
                left.update_batch(values[:split])
                right.update_batch(values[split:])
                left.merge(right)
                assert left.count == serial.count
                assert left.result() == serial.result()

    def test_value_run_finalize_is_bit_exact(self):
        rng = random.Random(9)
        values = [
            None if rng.random() < 0.2 else rng.choice(ADVERSARIAL)
            for __ in range(500)
        ]
        for func in (AggFunc.SUM, AggFunc.AVG):
            serial = _AggState(func)
            serial.update_batch(values)
            runs = []
            for split in (0, 120, 121, 400, len(values)):
                run = _ValueRun(func)
                run.fold(values[:split] if not runs else values[prev:split])
                prev = split
                runs.append(run)
            merged, prev = _ValueRun(func), 0
            for split in (0, 120, 121, 400, len(values)):
                run = _ValueRun(func)
                run.fold(values[prev:split])
                prev = split
                merged.merge(run)
            state = merged.finalize()
            assert state.count == serial.count
            got, expect = state.result(), serial.result()
            if expect is None:
                assert got is None
            else:
                assert bits(float(got)) == bits(float(expect))

    def test_value_run_null_only_and_empty(self):
        run = _ValueRun(AggFunc.SUM)
        run.fold([None, None])
        state = run.finalize()
        assert state.count == 2 and state.total == 0
        assert state.result() == 0  # serial: count > 0, int-0 total
        empty = _ValueRun(AggFunc.AVG).finalize()
        assert empty.count == 0 and empty.result() is None


# ----------------------------------------------------------------------
# ProbeIndex (vectorized join probe)
# ----------------------------------------------------------------------


class TestProbeIndex:
    def test_matches_serial_probe_order(self):
        rng = random.Random(13)
        hash_table = {}
        row_id = 0
        for key in rng.sample(range(50), 30):
            hash_table[key] = [
                (key, f"b{row_id + i}") for i in range(rng.randrange(1, 4))
            ]
            row_id += len(hash_table[key])
        index = ProbeIndex.from_int_keys(hash_table)
        assert index is not None
        probe_keys = [rng.randrange(60) for __ in range(200)]
        batch = [(k, i) for i, k in enumerate(probe_keys)]
        got = index.probe(np.asarray(probe_keys, dtype=np.int64), batch)
        expect = []
        for row in batch:
            for build_row in hash_table.get(row[0], ()):
                expect.append(build_row + row)
        assert got == expect

    def test_rejects_non_int_build_keys(self):
        # bool/float equal ints under Python == but not under int64
        # compare — any such key disables the kernel entirely.
        assert ProbeIndex.from_int_keys({True: [(1,)]}) is None
        assert ProbeIndex.from_int_keys({2.0: [(1,)]}) is None
        assert ProbeIndex.from_int_keys({2**70: [(1,)]}) is None

    def test_dict_keys_null_and_absent(self):
        class Dictionary:
            codes = {"red": 0, "blue": 1}

        hash_table = {
            "blue": [("blue", 1)],
            None: [(None, 2)],        # NULL probe codes (-1) match it, like
            #                           the serial dict's None == None lookup
            "green": [("green", 3)],  # absent from the dictionary: no match
        }
        index = ProbeIndex.from_dict_keys(hash_table, Dictionary())
        assert index is not None
        codes = np.asarray([1, -1, 0, 1], dtype=np.int64)
        batch = [("blue", 10), (None, 11), ("red", 12), ("blue", 13)]
        got = index.probe(codes, batch)
        expect = []
        for code_key, row in zip(["blue", None, "red", "blue"], batch):
            for build_row in hash_table.get(code_key, ()):
                expect.append(build_row + row)
        assert got == expect
        assert (None, 2, None, 11) in got  # serial None == None semantics


# ----------------------------------------------------------------------
# End-to-end parity: float aggregates across modes, sizes, workers
# ----------------------------------------------------------------------


def _float_db(batch_size: int = 64, rows: int = 900) -> Database:
    # morsel_pages=2 so the parallel scheduler can split even this small
    # table (the default 64-page morsels need a much larger one).
    db = Database(EngineConfig(batch_size=batch_size, morsel_pages=2))
    db.create_table(
        "m",
        [
            ("g", DataType.INTEGER),
            ("h", DataType.STRING),
            ("x", DataType.FLOAT),
            ("y", DataType.INTEGER),
        ],
    )
    rng = random.Random(11)
    db.load_rows(
        "m",
        [
            (i % 7, f"s{i % 5}", rng.choice(ADVERSARIAL), i % 13)
            for i in range(rows)
        ],
    )
    return db


FLOAT_AGG_QUERIES = [
    "SELECT g, SUM(x), AVG(x), COUNT(*) FROM m GROUP BY g",
    "SELECT AVG(x), SUM(x) FROM m",
    "SELECT h, SUM(x), MIN(x), MAX(x) FROM m WHERE y < 9 GROUP BY h",
    "SELECT g, h, SUM(x) FROM m WHERE g < 5 GROUP BY g, h",
]


class TestEndToEndFloatParity:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 1024])
    def test_columnar_parity_at_any_page_group_size(self, batch_size):
        db = _float_db(batch_size=batch_size)
        for sql in FLOAT_AGG_QUERIES:
            plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
            batch_result, batch_ctx = dispatch(db, plan, "batch")
            col_result, col_ctx = dispatch(db, plan, "columnar")
            row_result, row_ctx = dispatch(db, plan, "row")
            assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)
            assert row_result.rows == batch_result.rows
            assert row_ctx.clock.now == batch_ctx.clock.now

    def test_columnar_uses_vector_kernels(self):
        db = _float_db()
        sql = FLOAT_AGG_QUERIES[0]
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        __, ctx = dispatch(db, plan, "columnar")
        assert ctx.vector.agg_pipelines == 1
        assert ctx.vector.rows_folded > 0
        # Knob off: same bytes, no kernel use.
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        off_result, off_ctx = dispatch(db, plan, "columnar", vectorized_agg=False)
        assert off_ctx.vector.agg_pipelines == 0
        assert_bit_identical(off_result, off_ctx, batch_result, batch_ctx)

    @pytest.mark.parametrize("workers", (1, 2, 7))
    def test_parallel_float_preagg_ships_no_rows(self, workers):
        db = _float_db()
        for sql in FLOAT_AGG_QUERIES:
            plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
            batch_result, batch_ctx = dispatch(db, plan, "batch")
            result, ctx = dispatch(db, plan, "parallel", parallel_workers=workers)
            assert ctx.parallel.preagg_pipelines == 1
            # The telemetry contract of the lifted gate: float SUM/AVG
            # pre-aggregate as value runs — zero raw rows shipped.
            assert ctx.parallel.rows_shipped == 0
            assert ctx.parallel.rows_preaggregated > 0
            assert_bit_identical(result, ctx, batch_result, batch_ctx)

    def test_dictionary_overflow_groups_through_object_path(self):
        # > columnar_dictionary_max distinct strings demote the column to
        # object encoding; group-by on it must still hold byte parity.
        db = Database(EngineConfig(batch_size=32, columnar_dictionary_max=16))
        db.create_table(
            "t", [("s", DataType.STRING), ("x", DataType.FLOAT)]
        )
        rng = random.Random(21)
        db.load_rows(
            "t",
            [(f"k{i % 40}", rng.choice(ADVERSARIAL)) for i in range(600)],
        )
        sql = "SELECT s, SUM(x), COUNT(*) FROM t GROUP BY s"
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        col_result, col_ctx = dispatch(db, plan, "columnar")
        assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)

    def test_probe_kernel_parity_and_knob(self):
        db = build_database(ExperimentConfig(scale_factor=0.01))
        sql = (
            "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey AND o_custkey < 300"
        )
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        on_result, on_ctx = dispatch(db, plan, "columnar")
        off_result, off_ctx = dispatch(db, plan, "columnar", vectorized_probe=False)
        assert on_ctx.vector.probe_pipelines >= 1
        assert off_ctx.vector.probe_pipelines == 0
        assert_bit_identical(on_result, on_ctx, batch_result, batch_ctx)
        assert_bit_identical(off_result, off_ctx, batch_result, batch_ctx)

    def test_profile_and_metrics_surface_vector_counters(self):
        from repro.observe.metrics import MetricsRegistry

        registry = MetricsRegistry()
        db = Database(
            EngineConfig(batch_size=64, execution_mode="columnar"),
            metrics=registry,
        )
        db.create_table("t", [("g", DataType.INTEGER), ("x", DataType.FLOAT)])
        db.load_rows("t", [(i % 5, float(i) * 0.1) for i in range(400)])
        result = db.execute("SELECT g, SUM(x) FROM t GROUP BY g")
        assert result.profile.vectorized_agg_pipelines == 1
        assert result.profile.rows_folded > 0
        assert "vectorized:" in result.profile.summary()
        snap = registry.snapshot()
        assert snap["vector.agg_pipelines"]["value"] >= 1
        assert snap["vector.rows_folded"]["value"] > 0
