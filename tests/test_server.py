"""Tests for the concurrent query server: admission control, the global
memory broker, session isolation, plan-cache concurrency safety, and the
memory re-allocation trigger under induced cross-query contention."""

from __future__ import annotations

import os
import threading

import pytest

from repro import (
    AdmissionError,
    Database,
    DataType,
    DynamicMode,
    EngineConfig,
    SessionError,
)
from repro.engine.server import AdmissionController, GlobalMemoryBroker
from repro.executor.memory import MemoryManager
from repro.observe.metrics import MetricsRegistry


def small_db(config: EngineConfig | None = None) -> Database:
    # Session-scoped cache assertions need cold repeat executions; pin the
    # cross-query feedback loop off even under a REPRO_FEEDBACK=1 suite leg.
    config = (config or EngineConfig()).with_updates(feedback_enabled=False)
    db = Database(config, metrics=MetricsRegistry())
    db.create_table("r", [("id", DataType.INTEGER), ("a", DataType.INTEGER)], key=["id"])
    db.create_table("s", [("id", DataType.INTEGER), ("b", DataType.INTEGER)], key=["id"])
    db.load_rows("r", [(i, i % 10) for i in range(500)])
    db.load_rows("s", [(i, i % 7) for i in range(300)])
    db.analyze()
    return db


JOIN_SQL = "SELECT r.a, count(*) FROM r, s WHERE r.id = s.id GROUP BY r.a"


class TestSplitGrantContract:
    """Satellite: degenerate splits follow one floor-zero contract."""

    def test_partitions_exceed_pages_trailing_zeros(self):
        shares = MemoryManager.split_grant(3, 5)
        assert shares == [1, 1, 1, 0, 0]
        assert sum(shares) == 3

    def test_zero_and_negative_pages_all_zero(self):
        assert MemoryManager.split_grant(0, 4) == [0, 0, 0, 0]
        assert MemoryManager.split_grant(-7, 3) == [0, 0, 0]

    def test_exact_sum_preserved_across_degenerate_splits(self):
        for pages in (0, 1, 2, 5, 7):
            for partitions in (1, 2, 3, 8):
                shares = MemoryManager.split_grant(pages, partitions)
                assert sum(shares) == max(0, pages)
                assert all(s >= 0 for s in shares)
                assert max(shares) - min(shares) <= 1

    def test_spill_windows_zero_share_yields_zero_windows(self):
        # spill_windows exposes the floor-zero side of the contract...
        assert MemoryManager.spill_windows(0, 3, 8, 8) == [0, 0, 0]
        # ...while staging_windows floors at one to avoid deadlock.
        assert MemoryManager.staging_windows(0, 3, 64, 4) == [1, 1, 1]

    def test_window_floor_never_exceeds_cap(self):
        # A zero cap means zero windows even for the floor-one helper: the
        # declared floor is clamped to the cap, keeping the two helpers
        # consistent at the degenerate edge.
        assert MemoryManager.staging_windows(1000, 2, 8, 0) == [0, 0]
        assert MemoryManager.spill_windows(1000, 2, 8, 0) == [0, 0]


class TestAdmissionController:
    def test_serial_admits_immediately(self):
        ctl = AdmissionController(max_active=2, queue_size=4, timeout_s=5.0)
        wait, depth = ctl.admit()
        assert depth == 0
        assert wait < 1.0
        ctl.leave()

    def test_queue_full_rejects(self):
        ctl = AdmissionController(max_active=1, queue_size=0, timeout_s=5.0)
        ctl.admit()
        with pytest.raises(AdmissionError):
            ctl.admit()
        ctl.leave()

    def test_timeout_raises(self):
        ctl = AdmissionController(max_active=1, queue_size=4, timeout_s=0.05)
        ctl.admit()
        with pytest.raises(AdmissionError):
            ctl.admit()
        ctl.leave()

    def test_priority_order(self):
        ctl = AdmissionController(max_active=1, queue_size=8, timeout_s=10.0)
        ctl.admit()  # occupy the only slot
        order: list[str] = []
        started = threading.Barrier(3)

        def waiter(label: str, priority: int):
            started.wait()
            ctl.admit(priority=priority)
            order.append(label)
            ctl.leave()

        low = threading.Thread(target=waiter, args=("low", 0))
        high = threading.Thread(target=waiter, args=("high", 5))
        low.start()
        high.start()
        started.wait()  # both threads are about to enqueue
        # Give both a moment to actually enter the queue before freeing
        # the slot, so priority (not racing) decides the order.
        while True:
            with ctl._cond:
                if len(ctl._waiting) == 2:
                    break
        ctl.leave()
        low.join()
        high.join()
        assert order == ["high", "low"]

    def test_concurrency_never_exceeds_max_active(self):
        ctl = AdmissionController(max_active=3, queue_size=64, timeout_s=10.0)
        active = 0
        peak = 0
        lock = threading.Lock()

        def work():
            nonlocal active, peak
            ctl.admit()
            with lock:
                active += 1
                peak = max(peak, active)
            with lock:
                active -= 1
            ctl.leave()

        threads = [threading.Thread(target=work) for _ in range(20)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak <= 3


class TestGlobalMemoryBroker:
    def test_uncontended_gets_full_request(self):
        broker = GlobalMemoryBroker(total_pages=400, max_sessions=4)
        lease = broker.acquire("a", 100)
        assert lease.granted_pages == 100
        broker.release(lease)
        assert broker.free_pages() == 400

    def test_fair_borrowing_and_reclaim(self):
        broker = GlobalMemoryBroker(total_pages=100, max_sessions=2)
        first = broker.acquire("greedy", 90)
        assert first.granted_pages == 90  # borrows beyond its 50-page share
        second = broker.acquire("late", 50)
        # The arrival reclaimed the borrowed headroom down to the guarantee.
        assert first.granted_pages == 50
        assert first.reclaims == 1
        assert second.granted_pages == 50
        broker.release(second)
        # Departure re-grants freed pages to the running lease.
        assert first.granted_pages == 90
        assert first.regrants == 1
        broker.release(first)

    def test_explicit_request_exact_grant(self):
        broker = GlobalMemoryBroker(total_pages=100, max_sessions=4)
        lease = broker.acquire("exact", 80, explicit=True)
        assert lease.granted_pages == 80
        assert lease.guarantee_pages == 80
        broker.release(lease)

    def test_explicit_oversized_overcommits_exclusively(self):
        broker = GlobalMemoryBroker(total_pages=100, max_sessions=2)
        lease = broker.acquire("huge", 500, explicit=True)
        assert lease.granted_pages == 500
        assert broker.free_pages() < 0
        broker.release(lease)
        assert broker.free_pages() == 100

    def test_static_policy_fixed_shares(self):
        broker = GlobalMemoryBroker(total_pages=100, max_sessions=2, policy="static")
        a = broker.acquire("a", 90)
        assert a.granted_pages == 50  # exactly the share, no borrowing
        b = broker.acquire("b", 10)
        assert b.granted_pages == 10
        broker.release(b)
        assert a.granted_pages == 50  # and no re-grants either
        broker.release(a)

    def test_reclaim_respects_reserved_pages(self):
        broker = GlobalMemoryBroker(total_pages=100, max_sessions=2)
        first = broker.acquire("running", 90)
        manager = MemoryManager(first.granted_pages)
        first.attach(manager)
        # Simulate a query whose operators were promised 70 pages.
        manager.reserved_pages = 70
        second = broker.acquire("late", 30)
        # Reclaim floored at the promised 70, not the 50-page guarantee.
        assert first.granted_pages == 70
        assert second.granted_pages >= second.guarantee_pages
        broker.release(first)
        broker.release(second)

    def test_acquire_timeout(self):
        broker = GlobalMemoryBroker(
            total_pages=10, max_sessions=1, timeout_s=0.05
        )
        lease = broker.acquire("holder", 10, explicit=True)
        with pytest.raises(AdmissionError):
            broker.acquire("starved", 10, explicit=True)
        broker.release(lease)


class TestServerExecution:
    def test_server_mode_routes_and_matches_inline(self):
        inline = small_db()
        base = inline.execute(JOIN_SQL)
        server_db = small_db(EngineConfig(server_mode=True, max_sessions=2))
        res = server_db.execute(JOIN_SQL)
        assert res.rows == base.rows
        assert res.profile.total_cost == base.profile.total_cost
        assert res.profile.executed_via == "thread"
        assert res.profile.memory_granted_pages == res.profile.memory_requested_pages

    def test_explicit_budget_parity_under_server(self):
        inline = small_db()
        base = inline.execute(JOIN_SQL, memory_budget_pages=7)
        server_db = small_db(EngineConfig(server_mode=True, max_sessions=2))
        res = server_db.execute(JOIN_SQL, memory_budget_pages=7)
        assert res.rows == base.rows
        assert res.profile.total_cost == base.profile.total_cost
        assert res.profile.memory_granted_pages == 7

    def test_concurrent_sessions_byte_identical(self):
        inline = small_db()
        base = inline.execute(JOIN_SQL)
        server_db = small_db(EngineConfig(server_mode=True, max_sessions=4))
        results: dict[int, list] = {}

        def client(i: int):
            session = server_db.create_session(f"c{i}")
            try:
                results[i] = [session.execute(JOIN_SQL).rows for _ in range(3)]
            finally:
                session.close()

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        for rows_list in results.values():
            for rows in rows_list:
                assert rows == base.rows

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork unavailable")
    def test_fork_worker_mode_parity(self):
        inline = small_db()
        base = inline.execute(JOIN_SQL)
        server_db = small_db(
            EngineConfig(server_mode=True, server_worker_mode="fork", max_sessions=2)
        )
        res = server_db.execute(JOIN_SQL)
        assert res.rows == base.rows
        assert res.profile.total_cost == base.profile.total_cost
        assert res.profile.executed_via == "fork"

    def test_admission_telemetry_on_profile(self):
        server_db = small_db(EngineConfig(server_mode=True, max_sessions=2))
        res = server_db.execute(JOIN_SQL)
        assert res.profile.admission_wait_s >= 0.0
        assert res.profile.queue_depth_at_admission == 0
        snap = server_db.metrics_snapshot()
        assert snap["server.admitted"]["value"] >= 1
        assert snap["broker.leases"]["value"] >= 1

    def test_session_single_statement_contract(self):
        server_db = small_db()
        session = server_db.create_session("solo")
        release = threading.Event()
        entered = threading.Event()

        def slow(x):
            entered.set()
            release.wait(5.0)
            return x

        server_db.register_udf("slow", slow)
        errors: list = []

        def run():
            try:
                session.execute("SELECT count(*) FROM r WHERE slow(a) >= 0")
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)

        t = threading.Thread(target=run)
        t.start()
        assert entered.wait(5.0)
        with pytest.raises(SessionError):
            session.execute("SELECT count(*) FROM r")
        release.set()
        t.join()
        assert not errors
        session.close()
        with pytest.raises(SessionError):
            session.execute("SELECT count(*) FROM r")


class TestSessionIsolation:
    """Satellite: per-session temp tables and session-scoped plan cache."""

    def test_same_temp_name_isolated_rows(self):
        db = small_db()
        s1 = db.create_session("alice")
        s2 = db.create_session("bob")
        s1.create_temp_table("t", [("x", DataType.INTEGER)])
        s2.create_temp_table("t", [("x", DataType.INTEGER)])
        s1.load_rows("t", [(1,), (2,)])
        s2.load_rows("t", [(10,)])
        assert sorted(s1.execute("SELECT x FROM t").rows) == [(1,), (2,)]
        assert sorted(s2.execute("SELECT x FROM t").rows) == [(10,)]
        s1.close()
        s2.close()

    def test_temp_plan_cache_entries_session_scoped(self):
        db = small_db()
        s1 = db.create_session("alice")
        s2 = db.create_session("bob")
        s1.create_temp_table("t", [("x", DataType.INTEGER)])
        s2.create_temp_table("t", [("x", DataType.INTEGER)])
        s1.load_rows("t", [(1,)])
        s2.load_rows("t", [(2,)])
        # Warm s1's cache entry, then run the identical SQL on s2: a shared
        # entry would serve s1's plan (bound to s1's table object).
        first = s1.execute("SELECT x FROM t")
        hit = s1.execute("SELECT x FROM t")
        assert hit.profile.plan_cache_hit
        other = s2.execute("SELECT x FROM t")
        assert not other.profile.plan_cache_hit
        assert first.rows == [(1,)]
        assert other.rows == [(2,)]
        # Shared-table statements still share one cache entry across sessions.
        s1.execute("SELECT count(*) FROM r")
        shared = s2.execute("SELECT count(*) FROM r")
        assert shared.profile.plan_cache_hit
        s1.close()
        s2.close()

    def test_temp_table_invisible_to_other_session_and_inline(self):
        from repro.errors import BindError, CatalogError, ReproError

        db = small_db()
        s1 = db.create_session("alice")
        s1.create_temp_table("private_t", [("x", DataType.INTEGER)])
        s2 = db.create_session("bob")
        with pytest.raises((BindError, CatalogError, ReproError)):
            s2.execute("SELECT x FROM private_t")
        with pytest.raises((BindError, CatalogError, ReproError)):
            db.execute("SELECT x FROM private_t")
        s1.close()
        s2.close()

    def test_close_drops_scoped_cache_entries(self):
        db = small_db()
        s1 = db.create_session("alice")
        s1.create_temp_table("t", [("x", DataType.INTEGER)])
        s1.load_rows("t", [(1,)])
        s1.execute("SELECT x FROM t")
        assert len(db.plan_cache) >= 1
        before = len(db.plan_cache)
        s1.close()
        assert len(db.plan_cache) < before

    def test_session_temp_recreate_invalidates_scoped_plan(self):
        db = small_db()
        s1 = db.create_session("alice")
        s1.create_temp_table("t", [("x", DataType.INTEGER)])
        s1.load_rows("t", [(1,)])
        assert s1.execute("SELECT x FROM t").rows == [(1,)]
        s1.drop_table("t")
        s1.create_temp_table("t", [("x", DataType.INTEGER)])
        s1.load_rows("t", [(42,)])
        res = s1.execute("SELECT x FROM t")
        assert res.rows == [(42,)]
        assert not res.profile.plan_cache_hit
        s1.close()

    def test_reopt_temp_tables_land_in_session_overlay(self):
        # Two sessions concurrently running a plan-switching query must not
        # collide on the re-optimizer's __temp_N names in the shared catalog.
        from repro.workloads import SyntheticConfig, build_running_example

        config = EngineConfig(server_mode=True, max_sessions=2)
        db = Database(config, metrics=MetricsRegistry())
        build_running_example(db, SyntheticConfig())
        from repro.workloads import RUNNING_EXAMPLE_SQL

        baseline = None
        errors: list = []
        rows_out: dict[int, object] = {}

        def client(i: int):
            session = db.create_session(f"switcher-{i}")
            try:
                rows_out[i] = session.execute(
                    RUNNING_EXAMPLE_SQL,
                    params={"value1": 80, "value2": 80},
                    mode=DynamicMode.FULL,
                ).rows
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                session.close()

        threads = [threading.Thread(target=client, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        inline_db = Database(EngineConfig(), metrics=MetricsRegistry())
        build_running_example(inline_db, SyntheticConfig())
        baseline = inline_db.execute(
            RUNNING_EXAMPLE_SQL,
            params={"value1": 80, "value2": 80},
            mode=DynamicMode.FULL,
        ).rows
        assert rows_out[0] == baseline
        assert rows_out[1] == baseline
        # The shared catalog must hold no leaked temp tables.
        assert not [n for n in db.catalog.table_names if n.startswith("__temp")]


class TestContentionReallocation:
    """Acceptance: the paper's memory re-allocation trigger fires from real
    cross-query pressure (a departing session's pages re-granted mid-query)."""

    def test_regrant_mid_query_fires_reallocation(self):
        config = EngineConfig(
            query_memory_pages=20,
            server_memory_pages=24,
            max_sessions=2,
        )
        db = Database(config, metrics=MetricsRegistry())
        db.create_table(
            "build", [("id", DataType.INTEGER), ("v", DataType.INTEGER)], key=["id"]
        )
        db.create_table(
            "probe", [("id", DataType.INTEGER), ("w", DataType.INTEGER)], key=["id"]
        )
        db.create_table("third", [("w", DataType.INTEGER), ("z", DataType.INTEGER)])
        db.load_rows("build", [(i, i % 50) for i in range(4000)])
        db.load_rows("probe", [(i, i % 7) for i in range(8000)])
        db.load_rows("third", [(i % 7, i % 3) for i in range(3000)])
        db.analyze()

        server = db.server
        # A phantom peer holds the other fair share of the pool; the query
        # under test is therefore granted less than it requested.
        phantom = server.broker.acquire("phantom", 12)
        released = {"done": False}

        def poke(x):
            # First call happens mid-scan, while downstream memory
            # operators are still uncommitted: release the peer so the
            # broker re-grants its pages to the running query.
            if not released["done"]:
                released["done"] = True
                server.broker.release(phantom)
            return x

        db.register_udf("poke", poke)
        sql = (
            "SELECT t.z, count(*) FROM build b, probe p, third t "
            "WHERE b.id = p.id AND p.w = t.w AND poke(b.v) < 40 GROUP BY t.z"
        )
        session = db.create_session("contender")
        res = session.execute(sql, mode=DynamicMode.FULL)
        profile = res.profile
        assert released["done"]
        assert profile.broker_regrants >= 1
        assert profile.memory_granted_pages > 12
        # The re-grant reached the running query and changed its grants.
        assert profile.memory_reallocations >= 1
        session.close()
        # Parity: the same query inline (full budget) returns the same rows.
        db2 = Database(EngineConfig(), metrics=MetricsRegistry())
        db2.create_table(
            "build", [("id", DataType.INTEGER), ("v", DataType.INTEGER)], key=["id"]
        )
        db2.create_table(
            "probe", [("id", DataType.INTEGER), ("w", DataType.INTEGER)], key=["id"]
        )
        db2.create_table("third", [("w", DataType.INTEGER), ("z", DataType.INTEGER)])
        db2.load_rows("build", [(i, i % 50) for i in range(4000)])
        db2.load_rows("probe", [(i, i % 7) for i in range(8000)])
        db2.load_rows("third", [(i % 7, i % 3) for i in range(3000)])
        db2.analyze()
        db2.register_udf("poke", lambda x: x)
        assert sorted(res.rows) == sorted(db2.execute(sql).rows)


class TestPlanCacheConcurrency:
    """Satellite: stats-epoch bumps racing concurrent lookups must never
    serve a stale plan or corrupt LRU/counter state."""

    def test_epoch_bumps_race_lookups(self):
        db = small_db(EngineConfig(server_mode=True, max_sessions=4))
        stop = threading.Event()
        errors: list = []
        executed = {"count": 0}
        lock = threading.Lock()
        base = db.execute(JOIN_SQL).rows

        def executor_thread():
            try:
                while not stop.is_set():
                    res = db.execute(JOIN_SQL)
                    if res.rows != base:
                        raise AssertionError("rows diverged under epoch races")
                    with lock:
                        executed["count"] += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def bumper_thread():
            try:
                while not stop.is_set():
                    db.analyze("r")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=executor_thread) for _ in range(3)]
        threads.append(threading.Thread(target=bumper_thread))
        for t in threads:
            t.start()
        import time

        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert executed["count"] > 0
        stats = db.plan_cache.stats
        # Counter consistency survived the race.
        assert stats.lookups == stats.hits + stats.misses
        assert stats.invalidations <= stats.misses
        # No stale entry can be served now that the dust settled: a lookup
        # with the current epoch either hits a current-epoch entry or misses.
        res = db.execute(JOIN_SQL)
        assert res.rows == base

    def test_prepared_statements_race_epoch_bumps(self):
        db = small_db(EngineConfig(server_mode=True, max_sessions=4))
        stmt = db.prepare(JOIN_SQL)
        base = stmt.execute().rows
        stop = threading.Event()
        errors: list = []

        def runner():
            try:
                while not stop.is_set():
                    if stmt.execute().rows != base:
                        raise AssertionError("prepared rows diverged")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def bumper():
            try:
                while not stop.is_set():
                    db.analyze("s")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=runner) for _ in range(2)]
        threads.append(threading.Thread(target=bumper))
        for t in threads:
            t.start()
        import time

        time.sleep(0.8)
        stop.set()
        for t in threads:
            t.join()
        assert not errors


class TestWorkloadDriver:
    def test_driver_parity_and_report(self):
        from repro.bench.harness import ExperimentConfig, build_database
        from repro.workloads import (
            assert_parity,
            build_tpcd_scripts,
            run_concurrent,
            run_serial,
        )

        config = ExperimentConfig(scale_factor=0.002, seed=7)
        db = build_database(config)
        scripts = build_tpcd_scripts(sessions=2, statements_per_session=2, seed=3)
        serial_rows, _ = run_serial(db, scripts)
        report = run_concurrent(db.server, scripts)
        assert_parity(serial_rows, report)
        summary = report.summary()
        assert summary["statements"] == 4
        assert summary["errors"] == 0
        assert report.throughput_qps > 0
        assert report.latency_percentile(99) >= report.latency_percentile(50)

    def test_percentile_nearest_rank(self):
        from repro.workloads import percentile

        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 50) == 0.2
        assert percentile(values, 99) == 0.4
        assert percentile([], 50) == 0.0
