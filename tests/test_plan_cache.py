"""Plan cache, prepared statements and statistics-epoch invalidation."""

import random

import pytest

from repro import Database, DataType, DynamicMode, EngineConfig
from repro.engine.plan_cache import (
    CachedPlan,
    PlanCache,
    parameter_signature,
)
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)
from .conftest import make_two_table_db

SQL = "SELECT r1.a, r2.c FROM r1, r2 WHERE r1.id = r2.r1_id AND r1.a < 40"
PARAM_SQL = (
    "SELECT r1.a, r2.c FROM r1, r2 WHERE r1.id = r2.r1_id AND r1.a < :cutoff"
)


class TestPlanCacheUnit:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        for i in range(3):
            key = PlanCache.exact_key(f"q{i}", (), "full", "batch")
            cache.store(key, CachedPlan(query=None, plan=None, scia=None, epoch=0))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # q0 was evicted; q1 and q2 remain.
        assert PlanCache.exact_key("q0", (), "full", "batch") not in cache
        assert PlanCache.exact_key("q2", (), "full", "batch") in cache

    def test_hit_refreshes_lru_position(self):
        cache = PlanCache(capacity=2)
        k0 = PlanCache.exact_key("q0", (), "full", "batch")
        k1 = PlanCache.exact_key("q1", (), "full", "batch")
        cache.store(k0, CachedPlan(query=None, plan=None, scia=None, epoch=0))
        cache.store(k1, CachedPlan(query=None, plan=None, scia=None, epoch=0))
        assert cache.lookup(k0, 0) is not None  # refresh q0
        cache.store(
            PlanCache.exact_key("q2", (), "full", "batch"),
            CachedPlan(query=None, plan=None, scia=None, epoch=0),
        )
        assert k0 in cache and k1 not in cache

    def test_epoch_mismatch_counts_invalidation(self):
        cache = PlanCache()
        key = PlanCache.exact_key("q", (), "full", "batch")
        cache.store(key, CachedPlan(query=None, plan=None, scia=None, epoch=3))
        assert cache.lookup(key, 4) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert key not in cache

    def test_parameter_signature_distinguishes_types_and_values(self):
        assert parameter_signature({"v": 1}) != parameter_signature({"v": 2})
        assert parameter_signature({"v": 1}) != parameter_signature({"v": 1.0})
        assert parameter_signature({"a": 1, "b": 2}) == parameter_signature(
            {"b": 2, "a": 1}
        )
        assert parameter_signature(None) == parameter_signature({}) == ()

    def test_hit_rate(self):
        cache = PlanCache()
        key = PlanCache.exact_key("q", (), "full", "batch")
        assert cache.lookup(key, 0) is None
        cache.store(key, CachedPlan(query=None, plan=None, scia=None, epoch=0))
        assert cache.lookup(key, 0) is not None
        assert cache.stats.hit_rate == 0.5


class TestWarmExecution:
    def test_second_execution_hits_and_matches_cold(self):
        db = make_two_table_db()
        cold = db.execute(SQL)
        warm = db.execute(SQL)
        assert not cold.profile.plan_cache_hit
        assert warm.profile.plan_cache_hit
        assert warm.rows == cold.rows
        # Simulated profiles are identical warm or cold: the cost clock is
        # always charged one calibrated optimization.
        assert warm.profile.total_cost == cold.profile.total_cost
        assert (
            warm.profile.optimizer_invocations == cold.profile.optimizer_invocations
        )
        assert warm.profile.initial_estimated_cost == pytest.approx(
            cold.profile.initial_estimated_cost
        )

    def test_warm_hits_on_row_and_batch_modes(self):
        db = make_two_table_db()
        for execution_mode in ("row", "batch"):
            cold = db.execute(SQL, execution_mode=execution_mode)
            warm = db.execute(SQL, execution_mode=execution_mode)
            assert not cold.profile.plan_cache_hit
            assert warm.profile.plan_cache_hit
            assert warm.rows == cold.rows

    def test_execution_mode_is_part_of_the_key(self):
        db = make_two_table_db()
        batch = db.execute(SQL, execution_mode="batch")
        row = db.execute(SQL, execution_mode="row")
        # The row-mode execution must not reuse the batch-mode entry.
        assert not row.profile.plan_cache_hit
        assert row.rows == batch.rows

    def test_parallel_mode_and_worker_count_are_part_of_the_key(self):
        db = make_two_table_db()
        batch = db.execute(SQL, execution_mode="batch")
        # Parallel mode must not be served the batch entry: the cached plan
        # is specialized per execution mode *and* resolved worker count.
        two = db.execute(SQL, execution_mode="parallel", workers=2)
        assert not two.profile.plan_cache_hit
        assert two.rows == batch.rows
        # A different worker count is a different key...
        four = db.execute(SQL, execution_mode="parallel", workers=4)
        assert not four.profile.plan_cache_hit
        assert four.rows == batch.rows
        # ...while repeating a worker count hits its own entry.
        warm = db.execute(SQL, execution_mode="parallel", workers=2)
        assert warm.profile.plan_cache_hit
        assert warm.rows == batch.rows
        # And the batch entry is still intact.
        assert db.execute(SQL, execution_mode="batch").profile.plan_cache_hit

    def test_dynamic_mode_is_part_of_the_key(self):
        db = make_two_table_db()
        db.execute(SQL, mode=DynamicMode.FULL)
        off = db.execute(SQL, mode=DynamicMode.OFF)
        assert not off.profile.plan_cache_hit

    def test_parameter_values_are_part_of_the_key(self):
        db = make_two_table_db()
        first = db.execute(PARAM_SQL, params={"cutoff": 40})
        other = db.execute(PARAM_SQL, params={"cutoff": 10})
        assert not other.profile.plan_cache_hit
        assert len(other.rows) < len(first.rows)
        warm = db.execute(PARAM_SQL, params={"cutoff": 40})
        assert warm.profile.plan_cache_hit
        assert warm.rows == first.rows

    def test_disabled_cache_never_hits(self):
        db = Database(EngineConfig(plan_cache_enabled=False))
        rng = random.Random(0)
        db.create_table("t", [("id", DataType.INTEGER), ("a", DataType.INTEGER)], key=["id"])
        db.load_rows("t", [(i, rng.randrange(100)) for i in range(500)])
        db.analyze()
        db.execute("SELECT count(*) FROM t WHERE t.a < 10")
        again = db.execute("SELECT count(*) FROM t WHERE t.a < 10")
        assert not again.profile.plan_cache_hit
        assert len(db.plan_cache) == 0

    def test_plan_defaults_to_cold(self):
        db = make_two_table_db()
        db.plan(SQL)
        db.plan(SQL)
        assert db.plan_cache.stats.stores == 0
        assert db.plan_cache.stats.hits == 0

    def test_capacity_comes_from_config(self):
        db = Database(EngineConfig(plan_cache_size=1))
        assert db.plan_cache.capacity == 1


class TestEpochInvalidation:
    def _warm(self, db):
        db.execute(SQL)
        warm = db.execute(SQL)
        assert warm.profile.plan_cache_hit

    def test_analyze_invalidates(self):
        db = make_two_table_db()
        self._warm(db)
        db.analyze()
        after = db.execute(SQL)
        assert not after.profile.plan_cache_hit
        assert db.plan_cache.stats.invalidations >= 1

    def test_load_rows_invalidates(self):
        db = make_two_table_db()
        self._warm(db)
        db.load_rows("r1", [(100_000, 1, 1)])
        after = db.execute(SQL)
        assert not after.profile.plan_cache_hit
        assert db.plan_cache.stats.invalidations >= 1

    def test_create_index_invalidates(self):
        db = make_two_table_db()
        self._warm(db)
        db.create_index("idx_r2_r1_id", "r2", "r1_id")
        after = db.execute(SQL)
        assert not after.profile.plan_cache_hit

    def test_drop_table_invalidates(self):
        db = make_two_table_db()
        self._warm(db)
        epoch = db.catalog.stats_epoch
        db.create_table("scratch", [("id", DataType.INTEGER)], key=["id"])
        db.drop_table("scratch")
        assert db.catalog.stats_epoch > epoch

    def test_set_stats_invalidates(self, two_table_db):
        db = two_table_db
        epoch = db.catalog.stats_epoch
        db.catalog.set_stats("r1", db.catalog.stats_for("r1"))
        assert db.catalog.stats_epoch > epoch

    def test_register_udf_clears_cache(self):
        db = make_two_table_db()
        self._warm(db)
        db.register_udf("double", lambda x: 2 * x)
        assert len(db.plan_cache) == 0

    def test_mid_query_reoptimization_bumps_epoch(self):
        # Feedback off: the test needs the cold misestimate to switch.
        db = Database(EngineConfig(feedback_enabled=False))
        build_running_example(
            db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
        )
        sql = RUNNING_EXAMPLE_SQL
        params = {"value1": 80, "value2": 80}
        epoch = db.catalog.stats_epoch
        first = db.execute(sql, params=params, mode=DynamicMode.FULL)
        assert first.profile.plan_switches >= 1
        # The switch discredited the optimizer's estimates: the epoch moved,
        # so the stale plan cannot be served again.
        assert db.catalog.stats_epoch > epoch
        second = db.execute(sql, params=params, mode=DynamicMode.FULL)
        assert not second.profile.plan_cache_hit
        assert second.rows == first.rows

    def test_temp_tables_do_not_bump_epoch(self, two_table_db, buffer_pool):
        from repro.storage.temp import TempTableManager

        db = two_table_db
        manager = TempTableManager(db.catalog, buffer_pool)
        epoch = db.catalog.stats_epoch
        table = manager.materialize(db.table("r1").schema, [(1, 2, 3)])
        manager.drop(table.name)
        assert db.catalog.stats_epoch == epoch


class TestPreparedStatements:
    def test_prepared_results_identical_to_cold(self):
        for execution_mode in ("row", "batch"):
            cold_db = make_two_table_db()
            prep_db = make_two_table_db()
            cold = cold_db.execute(SQL, execution_mode=execution_mode)
            stmt = prep_db.prepare(SQL)
            first = stmt.execute(execution_mode=execution_mode)
            second = stmt.execute(execution_mode=execution_mode)
            assert first.rows == cold.rows
            assert second.rows == cold.rows
            assert first.profile.total_cost == cold.profile.total_cost
            assert second.profile.total_cost == cold.profile.total_cost
            assert second.profile.plan_cache_hit

    def test_parametric_prepared_shares_scenarios_across_bindings(self):
        db = make_two_table_db()
        stmt = db.prepare(PARAM_SQL)
        first = stmt.execute({"cutoff": 40})
        assert first.profile.parametric_plan_count >= 1
        stores_after_first = db.plan_cache.stats.stores
        second = stmt.execute({"cutoff": 10})
        third = stmt.execute({"cutoff": 90})
        # One cached scenario set serves every binding: no further stores.
        assert db.plan_cache.stats.stores == stores_after_first
        assert second.profile.plan_cache_hit
        assert third.profile.plan_cache_hit
        assert stmt.executions == 3

    def test_parametric_prepared_matches_cold_parametric(self):
        for cutoff in (10, 40, 90):
            cold_db = make_two_table_db()
            prep_db = make_two_table_db()
            cold = cold_db.execute(
                PARAM_SQL, params={"cutoff": cutoff}, parametric=True
            )
            stmt = prep_db.prepare(PARAM_SQL)
            stmt.execute({"cutoff": 40})  # populate the scenario cache
            warm = stmt.execute({"cutoff": cutoff})
            assert warm.rows == cold.rows
            assert warm.profile.parametric_choice == cold.profile.parametric_choice

    def test_prepared_explain_matches_database_explain(self):
        db = make_two_table_db()
        stmt = db.prepare(SQL)
        assert stmt.execute().rows == db.execute(SQL).rows
        assert stmt.explain() == db.explain(SQL)

    def test_prepared_parse_error_raises_at_prepare_time(self):
        db = make_two_table_db()
        with pytest.raises(Exception):
            db.prepare("SELEC nope")

    def test_phase_breakdown_populated(self):
        db = make_two_table_db()
        cold = db.execute(SQL)
        warm = db.execute(SQL)
        assert cold.profile.phases.optimize_s > 0
        assert cold.profile.phases.execute_s > 0
        assert warm.profile.phases.total_s > 0
        assert "cache=hit" in warm.profile.summary()
        assert "cache=miss" in cold.profile.summary()
