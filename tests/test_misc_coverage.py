"""Edge-case coverage: result rendering, profiles, segments, reporting."""

import pytest

from repro import Database, DataType, DynamicMode
from repro.bench import comparison_table, run_comparison
from repro.bench.harness import QueryComparison
from repro.core.modes import DynamicMode as DM
from repro.executor.segments import Segment, segment_of, segments
from repro.plans.printer import explain

from .conftest import make_two_table_db


class TestResultRendering:
    def test_format_table_truncates(self, two_table_db):
        result = two_table_db.execute("SELECT a, b FROM r1", mode=DynamicMode.OFF)
        rendered = result.format_table(limit=3)
        assert "rows total" in rendered
        assert rendered.count("\n") <= 6

    def test_format_table_empty_result(self, two_table_db):
        result = two_table_db.execute(
            "SELECT a FROM r1 WHERE a > 100000", mode=DynamicMode.OFF
        )
        rendered = result.format_table()
        assert "a" in rendered  # header survives

    def test_format_table_float_formatting(self, two_table_db):
        result = two_table_db.execute(
            "SELECT avg(b) m FROM r1", mode=DynamicMode.OFF
        )
        rendered = result.format_table()
        # Floats are shortened to 4 significant digits.
        assert len(rendered.splitlines()[2].strip()) <= 12

    def test_iteration_protocol(self, two_table_db):
        result = two_table_db.execute(
            "SELECT a FROM r1 LIMIT 4", mode=DynamicMode.OFF
        )
        assert len(list(iter(result))) == 4


class TestProfileRendering:
    def test_summary_includes_events(self):
        from repro.workloads.synthetic import (
            RUNNING_EXAMPLE_SQL,
            SyntheticConfig,
            build_running_example,
        )

        db = Database()
        build_running_example(
            db, SyntheticConfig(rel1_rows=8000, rel2_rows=2000, rel3_rows=20_000)
        )
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params={"value1": 80, "value2": 80},
            mode=DynamicMode.FULL,
        )
        summary = result.profile.summary()
        assert "mode=full" in summary
        if result.profile.events:
            assert "event:" in summary

    def test_parametric_fields_default_empty(self, two_table_db):
        result = two_table_db.execute("SELECT a FROM r1", mode=DynamicMode.OFF)
        assert result.profile.parametric_plan_count == 0
        assert result.profile.parametric_choice == ""

    def test_buffer_stats_recorded(self, two_table_db):
        result = two_table_db.execute("SELECT a FROM r1", mode=DynamicMode.OFF)
        assert result.profile.buffer.accesses > 0


class TestExplainAllNodes:
    def test_explain_covers_every_operator(self):
        db = make_two_table_db(r1_rows=2000, r2_rows=5000)
        db.create_index("ix_a", "r1", "a", clustered=True)
        queries = [
            "SELECT DISTINCT a FROM r1",
            "SELECT a, count(*) n FROM r1 GROUP BY a HAVING count(*) > 1 "
            "ORDER BY n DESC LIMIT 3",
            "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id",
            "SELECT r1.a one, r2.c two FROM r1, r2",
            "SELECT id one FROM r1 WHERE a = 5",
        ]
        seen = set()
        for sql in queries:
            plan, __, __o = db.plan(sql, mode=DynamicMode.FULL)
            text = explain(plan)
            assert text
            for node in plan.walk():
                seen.add(node.label)
        assert {"Distinct", "HashAggregate", "Sort", "Limit", "Filter",
                "SeqScan", "Project"} <= seen

    def test_explain_without_estimates(self, two_table_db):
        plan, __, __o = two_table_db.plan("SELECT a FROM r1", mode=DynamicMode.OFF)
        text = explain(plan, show_estimates=False)
        assert "rows=" not in text


class TestSegmentsApi:
    def test_segment_top_and_lookup(self, two_table_db):
        plan, __, __o = two_table_db.plan(
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id "
            "GROUP BY r1.a",
            mode=DynamicMode.OFF,
        )
        segs = segments(plan)
        # The last segment in completion order contains the root.
        assert segs[-1].top is plan
        for node in plan.walk():
            found = segment_of(plan, node.node_id)
            assert found is not None and node.node_id in found.node_ids
        assert segment_of(plan, -42) is None


class TestReportingWithoutFullMode:
    def test_comparison_table_memory_only(self):
        db = make_two_table_db()
        from repro.workloads.tpcd.queries import TpcdQuery

        query = TpcdQuery(
            name="QX", category="medium", join_count=1,
            sql="SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id "
                "GROUP BY r1.a",
        )
        comp = run_comparison(db, query, (DM.OFF, DM.MEMORY_ONLY))
        table = comparison_table([comp], [DM.OFF, DM.MEMORY_ONLY])
        assert "QX" in table
        assert "memory-only" in table
