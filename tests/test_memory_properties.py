"""Property-based tests for the Memory Manager's allocation invariants."""

from hypothesis import given, settings, strategies as st

from repro.executor.memory import MemoryManager
from repro.plans.physical import PlanNode, SeqScanNode
from repro.storage import Column, DataType, Schema


def _chain_plan(demands: list[tuple[int, int]]) -> PlanNode:
    """A synthetic operator chain whose nodes carry the given demands."""
    schema = Schema([Column("x", DataType.INTEGER)])
    node: PlanNode = SeqScanNode("t", "t", schema)
    for minimum, maximum in demands:
        parent = SeqScanNode("t", "t", schema)  # structure only
        parent.children = (node,)
        parent.est.min_memory_pages = minimum
        parent.est.max_memory_pages = maximum
        node = parent
    return node


demand_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=200),
    ).map(lambda t: (t[0], t[0] + t[1])),
    min_size=1,
    max_size=8,
)


class TestAllocationProperties:
    @given(demands=demand_strategy, slack=st.integers(min_value=0, max_value=500))
    @settings(max_examples=120, deadline=None)
    def test_grants_respect_budget_and_bounds(self, demands, slack):
        plan = _chain_plan(demands)
        budget = sum(minimum for minimum, __ in demands) + slack
        allocation = MemoryManager(budget).allocate(plan)
        assert sum(allocation.values()) <= budget
        by_id = {
            node.node_id: (node.est.min_memory_pages, node.est.max_memory_pages)
            for node in plan.walk()
            if node.est.max_memory_pages > 0
        }
        for node_id, grant in allocation.items():
            minimum, maximum = by_id[node_id]
            # Max-or-min semantics: a grant is exactly one of the two bounds.
            assert grant in (minimum, maximum)

    @given(demands=demand_strategy)
    @settings(max_examples=60, deadline=None)
    def test_ample_budget_grants_all_maxima(self, demands):
        plan = _chain_plan(demands)
        budget = sum(maximum for __, maximum in demands) + 1
        allocation = MemoryManager(budget).allocate(plan)
        for node in plan.walk():
            if node.est.max_memory_pages > 0:
                assert allocation[node.node_id] == node.est.max_memory_pages

    @given(demands=demand_strategy)
    @settings(max_examples=60, deadline=None)
    def test_exact_minimum_budget_grants_all_minima(self, demands):
        plan = _chain_plan(demands)
        budget = sum(minimum for minimum, __ in demands)
        allocation = MemoryManager(budget).allocate(plan)
        assert sum(allocation.values()) == budget

    @given(
        demands=demand_strategy,
        slack=st.integers(min_value=0, max_value=300),
        floor_bump=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_floors_never_undercut(self, demands, slack, floor_bump):
        plan = _chain_plan(demands)
        nodes = [n for n in plan.walk() if n.est.max_memory_pages > 0]
        target = nodes[0]
        floor = target.est.min_memory_pages + floor_bump
        budget = (
            sum(n.est.min_memory_pages for n in nodes) + floor_bump + slack
        )
        allocation = MemoryManager(budget).allocate(
            plan, floors={target.node_id: floor}
        )
        assert allocation[target.node_id] >= floor
        assert sum(allocation.values()) <= budget

    @given(demands=demand_strategy, slack=st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_fixed_grants_pass_through(self, demands, slack):
        plan = _chain_plan(demands)
        nodes = [n for n in plan.walk() if n.est.max_memory_pages > 0]
        pinned = nodes[-1]
        budget = sum(n.est.min_memory_pages for n in nodes) + slack + 7
        allocation = MemoryManager(budget).allocate(
            plan, fixed={pinned.node_id: 7}
        )
        assert allocation[pinned.node_id] == 7
