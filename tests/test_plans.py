"""Tests for logical expressions/predicates, physical nodes, rewrite, printer."""

import pytest

from repro.errors import BindError, ReproError
from repro.plans.logical import (
    AggFunc,
    AggregateExpr,
    AndPredicate,
    ArithExpr,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    FuncExpr,
    InPredicate,
    NegExpr,
    NotPredicate,
    OrPredicate,
    OutputColumn,
    infer_dtype,
    output_schema,
    qualifier_of,
)
from repro.plans.physical import (
    CollectorSpec,
    FilterNode,
    HashJoinNode,
    SeqScanNode,
    StatsCollectorNode,
)
from repro.plans.printer import collector_nodes, explain
from repro.plans.rewrite import rename_output, rename_predicate, rename_scalar
from repro.storage import Column, DataType, Schema


def schema_ab(alias="t"):
    return Schema(
        [Column("a", DataType.INTEGER), Column("b", DataType.FLOAT)]
    ).qualify(alias)


class TestScalarExpressions:
    def test_column_compile(self):
        schema = schema_ab()
        fn = ColumnExpr("t.a").compile(schema)
        assert fn((7, 1.0)) == 7

    def test_const_compile(self):
        fn = ConstExpr(42).compile(schema_ab())
        assert fn((0, 0.0)) == 42

    def test_arithmetic(self):
        schema = schema_ab()
        expr = ArithExpr("+", ColumnExpr("t.a"), ArithExpr("*", ColumnExpr("t.b"), ConstExpr(2)))
        assert expr.compile(schema)((3, 4.0)) == 11.0

    def test_division(self):
        schema = schema_ab()
        expr = ArithExpr("/", ColumnExpr("t.a"), ConstExpr(2))
        assert expr.compile(schema)((9, 0.0)) == 4.5

    def test_negation(self):
        schema = schema_ab()
        expr = NegExpr(ColumnExpr("t.a"))
        assert expr.compile(schema)((5, 0.0)) == -5

    def test_func_expr(self):
        schema = schema_ab()
        expr = FuncExpr("twice", lambda x: 2 * x, (ColumnExpr("t.a"),))
        assert expr.compile(schema)((6, 0.0)) == 12
        assert expr.contains_function()

    def test_columns_collection(self):
        expr = ArithExpr("+", ColumnExpr("t.a"), ColumnExpr("t.b"))
        assert expr.columns() == frozenset({"t.a", "t.b"})

    def test_sql_rendering(self):
        expr = ArithExpr("*", ColumnExpr("t.a"), ConstExpr(3))
        assert expr.sql() == "(t.a * 3)"
        assert ConstExpr("x'y").sql() == "'x''y'"


class TestPredicates:
    def test_comparison_compile(self):
        schema = schema_ab()
        pred = Comparison(CompareOp.LE, ColumnExpr("t.a"), ConstExpr(5))
        fn = pred.compile(schema)
        assert fn((5, 0.0)) and not fn((6, 0.0))

    def test_equi_join_detection(self):
        join = Comparison(CompareOp.EQ, ColumnExpr("a.x"), ColumnExpr("b.y"))
        assert join.is_equi_join
        same_rel = Comparison(CompareOp.EQ, ColumnExpr("a.x"), ColumnExpr("a.y"))
        assert not same_rel.is_equi_join
        non_eq = Comparison(CompareOp.LT, ColumnExpr("a.x"), ColumnExpr("b.y"))
        assert not non_eq.is_equi_join

    def test_column_and_constant_both_orders(self):
        c1 = Comparison(CompareOp.LT, ColumnExpr("t.a"), ConstExpr(5))
        c2 = Comparison(CompareOp.GT, ConstExpr(5), ColumnExpr("t.a"))
        assert c1.column_and_constant() == ("t.a", 5)
        assert c2.column_and_constant() == ("t.a", 5)

    def test_normalized_flips(self):
        pred = Comparison(CompareOp.GT, ConstExpr(5), ColumnExpr("t.a")).normalized()
        assert isinstance(pred.left, ColumnExpr)
        assert pred.op is CompareOp.LT

    def test_flipped_ops(self):
        assert CompareOp.LT.flipped is CompareOp.GT
        assert CompareOp.GE.flipped is CompareOp.LE
        assert CompareOp.EQ.flipped is CompareOp.EQ

    def test_or_and_not_compile(self):
        schema = schema_ab()
        eq1 = Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1))
        eq2 = Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(2))
        orp = OrPredicate((eq1, eq2)).compile(schema)
        assert orp((1, 0.0)) and orp((2, 0.0)) and not orp((3, 0.0))
        andp = AndPredicate((eq1, eq2)).compile(schema)
        assert not andp((1, 0.0))
        notp = NotPredicate(eq1).compile(schema)
        assert notp((9, 0.0)) and not notp((1, 0.0))

    def test_in_compile(self):
        schema = schema_ab()
        pred = InPredicate(ColumnExpr("t.a"), (1, 3)).compile(schema)
        assert pred((3, 0.0)) and not pred((2, 0.0))

    def test_qualifiers(self):
        pred = Comparison(CompareOp.EQ, ColumnExpr("a.x"), ColumnExpr("b.y"))
        assert pred.qualifiers() == frozenset({"a", "b"})
        assert qualifier_of("a.x") == "a"
        assert qualifier_of("bare") == ""

    def test_parameter_flag_propagates(self):
        base = Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1), param_based=True)
        assert OrPredicate((base,)).is_parameter_based
        assert NotPredicate(base).is_parameter_based
        assert AndPredicate((base,)).is_parameter_based


class TestTypeInference:
    def test_column_types(self):
        schema = schema_ab()
        assert infer_dtype(ColumnExpr("t.a"), schema) is DataType.INTEGER
        assert infer_dtype(ColumnExpr("t.b"), schema) is DataType.FLOAT

    def test_aggregate_types(self):
        schema = schema_ab()
        assert infer_dtype(AggregateExpr(AggFunc.COUNT, None), schema) is DataType.INTEGER
        assert infer_dtype(
            AggregateExpr(AggFunc.SUM, ColumnExpr("t.a")), schema
        ) is DataType.FLOAT
        assert infer_dtype(
            AggregateExpr(AggFunc.MIN, ColumnExpr("t.a")), schema
        ) is DataType.INTEGER

    def test_output_schema(self):
        schema = schema_ab()
        out = output_schema(
            [
                OutputColumn("x", ColumnExpr("t.a")),
                OutputColumn("n", AggregateExpr(AggFunc.COUNT, None)),
            ],
            schema,
        )
        assert out.names == ("x", "n")


class TestPhysicalNodes:
    def _scan(self, alias="t"):
        return SeqScanNode("t", alias, schema_ab(alias))

    def test_walk_and_find(self):
        scan = self._scan()
        filt = FilterNode(scan, [Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1))])
        nodes = list(filt.walk())
        assert nodes == [filt, scan]
        assert filt.find(scan.node_id) is scan
        assert filt.find(-1) is None

    def test_base_aliases(self):
        left = self._scan("a")
        right = self._scan("b")
        join = HashJoinNode(left, right, [("a.a", "b.a")])
        assert join.base_aliases == frozenset({"a", "b"})

    def test_blocking_flags(self):
        scan = self._scan()
        assert not scan.is_blocking
        join = HashJoinNode(self._scan("a"), self._scan("b"), [("a.a", "b.a")])
        assert join.is_blocking

    def test_join_schema_concat(self):
        join = HashJoinNode(self._scan("a"), self._scan("b"), [("a.a", "b.a")])
        assert len(join.schema) == 4

    def test_collector_spec(self):
        spec = CollectorSpec(histogram_columns=("t.a",), distinct_column_sets=(("t.b",),))
        assert spec.statistic_count == 2
        node = StatsCollectorNode(self._scan(), spec)
        assert "histogram(t.a)" in node.detail()

    def test_node_ids_unique(self):
        nodes = [self._scan() for __ in range(5)]
        assert len({n.node_id for n in nodes}) == 5


class TestPrinter:
    def test_explain_contains_structure(self):
        scan = SeqScanNode("t", "t", schema_ab())
        filt = FilterNode(scan, [Comparison(CompareOp.LT, ColumnExpr("t.a"), ConstExpr(5))])
        text = explain(filt)
        assert "Filter" in text and "SeqScan" in text
        assert text.index("Filter") < text.index("SeqScan")

    def test_collector_nodes_listing(self):
        scan = SeqScanNode("t", "t", schema_ab())
        collector = StatsCollectorNode(scan, CollectorSpec())
        assert collector_nodes(collector) == [collector]


class TestRewrite:
    def test_rename_scalar(self):
        mapping = {"t.a": "tmp.t__a"}
        renamed = rename_scalar(ArithExpr("+", ColumnExpr("t.a"), ConstExpr(1)), mapping)
        assert renamed.columns() == frozenset({"tmp.t__a"})

    def test_rename_leaves_unmapped(self):
        renamed = rename_scalar(ColumnExpr("u.x"), {"t.a": "y"})
        assert renamed.name == "u.x"

    def test_rename_predicate_variants(self):
        mapping = {"t.a": "m.a2"}
        preds = [
            Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1), param_based=True),
            InPredicate(ColumnExpr("t.a"), (1, 2)),
            OrPredicate((Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1)),)),
            NotPredicate(Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1))),
            AndPredicate((Comparison(CompareOp.EQ, ColumnExpr("t.a"), ConstExpr(1)),)),
        ]
        for pred in preds:
            renamed = rename_predicate(pred, mapping)
            assert renamed.columns() == frozenset({"m.a2"})
        # Parameter flag must survive the rename.
        assert rename_predicate(preds[0], mapping).is_parameter_based

    def test_rename_output_aggregate(self):
        item = OutputColumn("s", AggregateExpr(AggFunc.SUM, ColumnExpr("t.a")))
        renamed = rename_output(item, {"t.a": "m.a"})
        assert renamed.columns() == frozenset({"m.a"})
        assert renamed.name == "s"

    def test_rename_count_star(self):
        item = OutputColumn("n", AggregateExpr(AggFunc.COUNT, None))
        renamed = rename_output(item, {"t.a": "m.a"})
        assert renamed.expr.arg is None
