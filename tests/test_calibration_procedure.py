"""End-to-end test of the paper's section 2.4 calibration procedure.

Builds star-join schemas of increasing size, times real optimizer runs on
star queries, fits the calibration unit, and checks the fitted model orders
optimization costs the way the measurements do.
"""

import random

import pytest

from repro import Database, DataType
from repro.core.modes import DynamicMode
from repro.optimizer.calibration import (
    OptimizerCalibration,
    calibrate_unit,
    measure_star_join_times,
)


def build_star_db(max_dimensions: int = 5) -> Database:
    """A fact table joined to N dimension tables (a star-join schema)."""
    db = Database()
    rng = random.Random(2)
    fact_columns = [("fact_id", DataType.INTEGER)]
    fact_columns += [(f"dim{i}_id", DataType.INTEGER) for i in range(max_dimensions)]
    db.create_table("fact", fact_columns, key=["fact_id"])
    db.load_rows(
        "fact",
        [
            tuple([i] + [rng.randrange(100) for __ in range(max_dimensions)])
            for i in range(2000)
        ],
    )
    for i in range(max_dimensions):
        db.create_table(
            f"dim{i}", [("id", DataType.INTEGER), ("attr", DataType.INTEGER)],
            key=["id"],
        )
        db.load_rows(f"dim{i}", [(k, rng.randrange(50)) for k in range(100)])
    db.analyze()
    return db


def star_sql(dimensions: int) -> str:
    tables = ["fact"] + [f"dim{i}" for i in range(dimensions)]
    joins = " AND ".join(f"fact.dim{i}_id = dim{i}.id" for i in range(dimensions))
    return f"SELECT fact.fact_id one FROM {', '.join(tables)} WHERE {joins}"


class TestStarJoinCalibration:
    def test_procedure_produces_usable_calibration(self):
        db = build_star_db()

        def optimize(n: int) -> None:
            # n relations total = fact + (n - 1) dimensions.
            db.plan(star_sql(n - 1), mode=DynamicMode.OFF)

        measurements = measure_star_join_times(
            optimize, relation_counts=(2, 3, 4), repetitions=1
        )
        assert [n for n, __ in measurements] == [2, 3, 4]
        assert all(seconds > 0 for __, seconds in measurements)
        calibration = calibrate_unit(measurements, cost_units_per_second=2000.0)
        assert calibration.unit > 0
        # The fitted model preserves the ordering the paper relies on:
        # bigger queries cost more to optimize.
        assert calibration.estimated_units(4) > calibration.estimated_units(2)

    def test_measured_times_grow_with_query_size(self):
        db = build_star_db()

        def optimize(n: int) -> None:
            db.plan(star_sql(n - 1), mode=DynamicMode.OFF)

        measurements = dict(
            measure_star_join_times(optimize, relation_counts=(2, 5), repetitions=3)
        )
        # A 5-relation star takes measurably longer to optimize than a
        # 2-relation one (DP enumerates exponentially more subplans).
        assert measurements[5] > measurements[2]

    def test_default_calibration_is_stable(self):
        cal = OptimizerCalibration()
        assert cal.estimated_units(3) == pytest.approx(cal.estimated_units(3))
