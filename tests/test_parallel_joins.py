"""Probe-side parallel hash joins, worker pre-aggregation, prefetch.

The contract under test (DESIGN.md section 8, PR 4): extending the morsel
worker pool from leaf pipelines up to hash-join probe pipelines and
pre-aggregating pipelines changes *nothing observable* — byte-identical
result rows, bit-for-bit identical simulated ``CostBreakdown`` and buffer
statistics, and (in exact statistics mode) bit-identical observed
statistics, at any worker count, in both ``parallel_stats`` modes, and
across mid-query plan switches that fire while a probe pipeline is
parallel.  Plus the scheduler pieces the tentpole rides on: range-affine
morsel partitioning, the integer-only pre-aggregation gate, staging
windows, prefetch telemetry and plan-cache key specialization.
"""

from __future__ import annotations

import pytest

from repro import Database, DynamicMode, EngineConfig
from repro.bench import ExperimentConfig, build_database
from repro.engine.plan_cache import PlanCache
from repro.executor import parallel as parallel_mod
from repro.executor.dispatcher import Dispatcher
from repro.executor.iterators import _AggState
from repro.executor.memory import MemoryManager
from repro.executor.parallel import _group_morsels, _partition_morsels
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.plans.logical import AggFunc
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)
from repro.workloads.tpcd import ALL_QUERIES

#: TPC-D queries whose plans contain hash joins with leaf-extractable
#: probe children at sf 0.01 (verified by the telemetry assertions below).
JOIN_QUERIES = ("Q3", "Q7", "Q10")

#: An aggregate over integer columns only: every aggregate merges exactly,
#: so the whole pipeline pre-aggregates in the workers.
INT_AGG_SQL = (
    "SELECT l_linenumber, COUNT(*), MIN(l_orderkey), MAX(l_partkey), "
    "SUM(l_suppkey) FROM lineitem WHERE l_orderkey > 1000 "
    "GROUP BY l_linenumber"
)


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return build_database(ExperimentConfig(scale_factor=0.01))


@pytest.fixture(scope="module")
def switch_db() -> Database:
    """The running example sized so FULL mode plan-switches at the cut join.

    Feedback stays off: these tests need the cold optimizer's misestimate
    (and the resulting switch) to repeat identically across executions.
    """
    db = Database(EngineConfig(feedback_enabled=False))
    build_running_example(
        db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
    )
    return db


SWITCH_PARAMS = {"value1": 80, "value2": 80}


def dispatch(db: Database, plan, execution_mode: str, workers: int = 0, **knobs):
    """One dispatcher run on a fresh runtime context; returns (result, ctx)."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers, **knobs
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    try:
        result = Dispatcher(ctx).run(plan)
    finally:
        ctx.temp_manager.drop_all()
    return result, ctx


def assert_observed_equal(left: dict, right: dict) -> None:
    """Collector-output equality (histograms compared by kind + buckets)."""
    assert set(left) == set(right)
    for node_id, a in left.items():
        b = right[node_id]
        assert a.row_count == b.row_count
        assert dict(a.minmax) == dict(b.minmax)
        assert dict(a.distincts) == dict(b.distincts)
        assert set(a.histograms) == set(b.histograms)
        for column, ha in a.histograms.items():
            hb = b.histograms[column]
            assert ha.kind == hb.kind
            assert ha.buckets == hb.buckets


# ----------------------------------------------------------------------
# Probe-side parity
# ----------------------------------------------------------------------


class TestProbeSideParity:
    @pytest.mark.parametrize("query_name", JOIN_QUERIES)
    def test_exact_parity_vs_batch(self, tpcd_db, query_name):
        query = next(q for q in ALL_QUERIES if q.name == query_name)
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        for workers in (1, 2, 7):
            result, ctx = dispatch(tpcd_db, plan, "parallel", workers=workers)
            assert result.rows == batch_result.rows
            assert ctx.clock.breakdown == batch_ctx.clock.breakdown
            assert ctx.clock.now == batch_ctx.clock.now
            assert ctx.buffer_pool.stats == batch_ctx.buffer_pool.stats
            assert_observed_equal(ctx.observed, batch_ctx.observed)
            assert ctx.parallel.join_pipelines >= 1

    @pytest.mark.parametrize("query_name", JOIN_QUERIES)
    def test_merge_stats_schedule_independent(self, tpcd_db, query_name):
        query = next(q for q in ALL_QUERIES if q.name == query_name)
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        reference, ref_ctx = dispatch(
            tpcd_db, plan, "parallel", workers=1, parallel_stats="merge"
        )
        assert ref_ctx.parallel.join_pipelines >= 1
        for workers in (2, 7):
            result, ctx = dispatch(
                tpcd_db, plan, "parallel", workers=workers, parallel_stats="merge"
            )
            assert result.rows == reference.rows
            assert ctx.clock.breakdown == ref_ctx.clock.breakdown
            assert_observed_equal(ctx.observed, ref_ctx.observed)

    @pytest.mark.parametrize("query_name", JOIN_QUERIES)
    def test_merge_mode_rows_match_batch(self, tpcd_db, query_name):
        # Merge-mode histograms differ from serial (different sample), but
        # result rows never may.
        query = next(q for q in ALL_QUERIES if q.name == query_name)
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, __ = dispatch(tpcd_db, plan, "batch")
        result, __ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_stats="merge"
        )
        assert result.rows == batch_result.rows

    def test_joins_toggle_restricts_to_leaf_pipelines(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_joins=False
        )
        assert ctx.parallel.join_pipelines == 0
        assert result.rows == batch_result.rows
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown

    def test_probe_fallback_without_fork(self, tpcd_db, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_fork_available", lambda: False)
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        with pytest.warns(RuntimeWarning, match="fork"):
            result, ctx = dispatch(tpcd_db, plan, "parallel", workers=4)
        assert result.rows == batch_result.rows
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown
        assert ctx.parallel.join_pipelines >= 1
        assert ctx.parallel.workers == 1


# ----------------------------------------------------------------------
# Mid-query plan switches inside a parallel probe pipeline
# ----------------------------------------------------------------------


class TestSwitchDuringParallelProbe:
    def test_serial_baseline_switches(self, switch_db):
        serial = switch_db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        assert serial.profile.plan_switches >= 1
        assert any("__temp" in sql for sql in serial.profile.remainder_sqls)

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_exact_mode_switch_parity(self, switch_db, workers):
        serial = switch_db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        par = switch_db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="parallel",
            workers=workers,
        )
        assert par.rows == serial.rows
        assert par.profile.plan_switches == serial.profile.plan_switches
        assert par.profile.total_cost == serial.profile.total_cost
        assert par.profile.breakdown == serial.profile.breakdown
        assert par.profile.remainder_sqls == serial.profile.remainder_sqls
        assert any("__temp" in sql for sql in par.profile.remainder_sqls)
        # The switch's cut join itself ran as a parallel probe pipeline.
        assert par.profile.parallel_join_pipelines >= 1

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_merge_mode_switch_rows_identical(self, workers):
        # A separate engine configured for merge statistics: the sampled
        # histograms differ from serial, so re-optimization decisions may
        # legitimately differ — but rows never may, and different worker
        # counts must agree with each other on everything (merge-mode
        # statistics are schedule-independent by construction).
        # Three executions of one SQL on one engine: pin the feedback loop
        # off so runs 2 and 3 replan exactly like run 1 (a feedback-corrected
        # plan would reorder float accumulation and change AVG bits).
        db = Database(
            EngineConfig(parallel_stats="merge", feedback_enabled=False)
        )
        build_running_example(
            db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
        )
        serial = db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        reference = db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="parallel",
            workers=1,
        )
        par = db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="parallel",
            workers=workers,
        )
        assert par.rows == serial.rows
        assert par.rows == reference.rows
        assert par.profile.plan_switches == reference.profile.plan_switches
        assert par.profile.total_cost == reference.profile.total_cost
        assert par.profile.breakdown == reference.profile.breakdown
        assert par.profile.parallel_join_pipelines >= 1


# ----------------------------------------------------------------------
# Worker-side pre-aggregation
# ----------------------------------------------------------------------


class TestPreAggregation:
    def test_integer_aggregates_preaggregate(self, tpcd_db):
        plan, __scia, __opt = tpcd_db.plan(INT_AGG_SQL, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        for workers in (1, 2, 7):
            result, ctx = dispatch(tpcd_db, plan, "parallel", workers=workers)
            assert result.rows == batch_result.rows
            assert ctx.clock.breakdown == batch_ctx.clock.breakdown
            assert ctx.buffer_pool.stats == batch_ctx.buffer_pool.stats
            assert ctx.parallel.preagg_pipelines == 1
            assert ctx.parallel.rows_preaggregated > 0
            assert ctx.parallel.groups_shipped >= len(result.rows)
            # Partials ship instead of rows: nothing row-shaped crosses.
            assert ctx.parallel.rows_shipped == 0

    def test_preagg_ships_fewer_rows_than_rows_path(self, tpcd_db):
        plan, __scia, __opt = tpcd_db.plan(INT_AGG_SQL, mode=DynamicMode.FULL)
        with_preagg, on_ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        without, off_ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_preagg=False
        )
        assert with_preagg.rows == without.rows
        assert on_ctx.clock.breakdown == off_ctx.clock.breakdown
        assert off_ctx.parallel.preagg_pipelines == 0
        assert off_ctx.parallel.rows_shipped > 0
        assert on_ctx.parallel.rows_shipped == 0
        assert on_ctx.parallel.groups_shipped < off_ctx.parallel.rows_shipped

    def test_scalar_aggregate_preaggregates(self, tpcd_db):
        sql = "SELECT COUNT(*), MAX(l_orderkey) FROM lineitem"
        plan, __scia, __opt = tpcd_db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert result.rows == batch_result.rows
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown
        assert ctx.parallel.preagg_pipelines == 1

    def test_empty_input_parity(self, tpcd_db):
        sql = "SELECT COUNT(*), MIN(l_orderkey) FROM lineitem WHERE l_orderkey < 0"
        plan, __scia, __opt = tpcd_db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert result.rows == batch_result.rows
        assert result.rows[0][0] == 0
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown

    def test_float_sum_preaggregates_as_value_runs(self, tpcd_db):
        sql = (
            "SELECT l_linenumber, SUM(l_extendedprice) FROM lineitem "
            "GROUP BY l_linenumber"
        )
        plan, __scia, __opt = tpcd_db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert ctx.parallel.preagg_pipelines == 1
        # The lifted gate ships per-group value runs, never raw rows.
        assert ctx.parallel.rows_shipped == 0
        assert ctx.parallel.rows_preaggregated > 0
        assert ctx.vector.agg_pipelines == 1
        assert result.rows == batch_result.rows
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown

    def test_float_sum_stays_serial_with_knob_off(self, tpcd_db):
        sql = (
            "SELECT l_linenumber, SUM(l_extendedprice) FROM lineitem "
            "GROUP BY l_linenumber"
        )
        plan, __scia, __opt = tpcd_db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, vectorized_agg=False
        )
        assert ctx.parallel.preagg_pipelines == 0
        assert ctx.vector.agg_pipelines == 0
        assert result.rows == batch_result.rows
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown

    def test_avg_preaggregates_with_knob(self, tpcd_db):
        sql = "SELECT AVG(l_suppkey) FROM lineitem"
        plan, __scia, __opt = tpcd_db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert ctx.parallel.preagg_pipelines == 1
        assert ctx.parallel.rows_shipped == 0
        result_off, ctx_off = dispatch(
            tpcd_db, plan, "parallel", workers=2, vectorized_agg=False
        )
        assert ctx_off.parallel.preagg_pipelines == 0
        assert result_off.rows == result.rows == batch_result.rows
        assert ctx.clock.breakdown == batch_ctx.clock.breakdown
        assert ctx_off.clock.breakdown == batch_ctx.clock.breakdown

    def test_preagg_toggle_off(self, tpcd_db):
        plan, __scia, __opt = tpcd_db.plan(INT_AGG_SQL, mode=DynamicMode.FULL)
        __, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_preagg=False
        )
        assert ctx.parallel.preagg_pipelines == 0

    def test_agg_state_merge_matches_serial_fold(self):
        values = [7, None, 3, 9, 1, None, 5, 2, 8]
        for func in (AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN, AggFunc.MAX):
            serial = _AggState(func)
            serial.update_batch(values)
            left, right = _AggState(func), _AggState(func)
            left.update_batch(values[:4])
            right.update_batch(values[4:])
            left.merge(right)
            assert left.count == serial.count
            assert left.result() == serial.result()


# ----------------------------------------------------------------------
# Range-affine partitioning and staging windows
# ----------------------------------------------------------------------


class TestPartitioning:
    def _setup(self, pages: int, morsel_pages: int):
        groups = [(i, i + 1) for i in range(pages)]
        morsels = _group_morsels(groups, morsel_pages)
        return groups, morsels

    @pytest.mark.parametrize("partitions", [1, 2, 3, 7])
    def test_covers_all_morsels_contiguously(self, partitions):
        groups, morsels = self._setup(101, 4)
        bounds = _partition_morsels(morsels, groups, partitions)
        assert len(bounds) == partitions
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(morsels)
        for (__, prev_end), (start, __e) in zip(bounds, bounds[1:]):
            assert start == prev_end

    @pytest.mark.parametrize("partitions", [1, 2, 3, 7])
    def test_every_partition_nonempty(self, partitions):
        groups, morsels = self._setup(29, 4)
        bounds = _partition_morsels(morsels, groups, partitions)
        assert all(end > start for start, end in bounds)

    def test_balanced_by_pages(self):
        groups, morsels = self._setup(128, 4)
        bounds = _partition_morsels(morsels, groups, 4)
        pages = [
            groups[morsels[end - 1][1] - 1][1] - groups[morsels[start][0]][0]
            for start, end in bounds
        ]
        assert max(pages) - min(pages) <= 4  # within one morsel of even

    def test_deterministic(self):
        groups, morsels = self._setup(57, 4)
        assert _partition_morsels(morsels, groups, 3) == _partition_morsels(
            morsels, groups, 3
        )

    def test_staging_windows_bounds(self):
        windows = MemoryManager.staging_windows(1000, 4, 64, 4)
        assert len(windows) == 4
        assert all(1 <= w <= 4 for w in windows)
        # Zero free pages still grants one morsel per worker.
        assert MemoryManager.staging_windows(0, 3, 64, 4) == [1, 1, 1]
        # A huge budget is capped.
        assert MemoryManager.staging_windows(10**6, 2, 64, 4) == [4, 4]


# ----------------------------------------------------------------------
# Prefetch
# ----------------------------------------------------------------------


class TestPrefetch:
    def test_prefetch_off_counts_nothing(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        __, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_prefetch=False
        )
        assert ctx.parallel.prefetched_morsels == 0

    def test_prefetch_toggle_parity(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        on_result, on_ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        off_result, off_ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_prefetch=False
        )
        assert on_result.rows == off_result.rows
        assert on_ctx.clock.breakdown == off_ctx.clock.breakdown
        assert_observed_equal(on_ctx.observed, off_ctx.observed)


# ----------------------------------------------------------------------
# Profile and plan-cache integration
# ----------------------------------------------------------------------


class TestProfileAndCache:
    def test_per_pipeline_wall_clock(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        par = tpcd_db.execute(
            query.sql, mode=DynamicMode.FULL, execution_mode="parallel", workers=2
        )
        profile = par.profile
        assert profile.parallel_pipelines >= 2
        assert profile.parallel_join_pipelines >= 1
        assert len(profile.pipeline_wall_s) == profile.parallel_pipelines
        for per_worker in profile.pipeline_wall_s.values():
            assert all(s >= 0.0 for s in per_worker.values())
        # The backwards-compatible aggregate sums across pipelines.
        total = sum(profile.worker_wall_s.values())
        per_pipeline = sum(
            s for pw in profile.pipeline_wall_s.values() for s in pw.values()
        )
        assert total == pytest.approx(per_pipeline)
        assert total > 0.0

    def test_execution_key_specialization(self):
        # vectorized_agg pinned so a REPRO_VECTOR_AGG env leg cannot leak
        # into the key's vector component.
        config = EngineConfig(vectorized_agg=True)
        assert PlanCache.execution_key(config, "batch", None) == "batch"
        assert PlanCache.execution_key(config, "row", 5) == "row"
        key = PlanCache.execution_key(config, "parallel", 3)
        assert key == "parallel/w3/j1/a1/b1/s1/p1/va1"
        off = config.with_updates(parallel_joins=False, parallel_preagg=False)
        assert (
            PlanCache.execution_key(off, "parallel", 3)
            == "parallel/w3/j0/a0/b1/s1/p1/va1"
        )
        plan_wide_off = config.with_updates(
            parallel_build=False, parallel_sort=False, parallel_spill=False
        )
        assert (
            PlanCache.execution_key(plan_wide_off, "parallel", 3)
            == "parallel/w3/j1/a1/b0/s0/p0/va1"
        )
        # The vector-aggregate knob changes which aggregates pre-aggregate.
        no_vector = config.with_updates(vectorized_agg=False)
        assert (
            PlanCache.execution_key(no_vector, "parallel", 3)
            == "parallel/w3/j1/a1/b1/s1/p1/va0"
        )
        # workers=None resolves from the config.
        sized = config.with_updates(parallel_workers=6)
        assert (
            PlanCache.execution_key(sized, "parallel", None)
            == "parallel/w6/j1/a1/b1/s1/p1/va1"
        )

    def test_toggle_changes_cache_key(self, tpcd_db):
        query = next(q for q in ALL_QUERIES if q.name == "Q3")
        tpcd_db.execute(
            query.sql, mode=DynamicMode.FULL, execution_mode="parallel", workers=2
        )
        repeat = tpcd_db.execute(
            query.sql, mode=DynamicMode.FULL, execution_mode="parallel", workers=2
        )
        assert repeat.profile.plan_cache_hit


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------


class TestConfigKnobs:
    def test_defaults_on(self):
        config = EngineConfig()
        assert config.parallel_joins is True
        assert config.parallel_preagg is True
        assert config.parallel_prefetch is True

    @pytest.mark.parametrize(
        "env,attr",
        [
            ("REPRO_PARALLEL_JOINS", "parallel_joins"),
            ("REPRO_PARALLEL_PREAGG", "parallel_preagg"),
            ("REPRO_PARALLEL_PREFETCH", "parallel_prefetch"),
        ],
    )
    def test_env_defaults(self, monkeypatch, env, attr):
        monkeypatch.setenv(env, "0")
        assert getattr(EngineConfig(), attr) is False
        monkeypatch.setenv(env, "1")
        assert getattr(EngineConfig(), attr) is True

    def test_validation_rejects_non_bool(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="parallel_joins"):
            EngineConfig(parallel_joins="yes").validate()
