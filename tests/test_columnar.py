"""Columnar execution: storage, zone maps, kernels, parity, integration.

The contract under test (DESIGN.md section 9): ``execution_mode="columnar"``
swaps the inside of leaf pipelines for vectorized NumPy work over per-page-
group column arrays, with zone-map scan skipping — and under the default
``zone_map_cost_mode="charge"`` it is byte-identical to the row and batch
paths: result rows, simulated ``CostBreakdown``, buffer statistics and
observed statistics, at any page-group size, including across mid-query
plan switches.  Plus the storage layer the tentpole rides on: incremental
``ColumnStore.sync``, dictionary overflow demotion, and zone-map soundness
on the edge groups (all-NULL, single-row).
"""

from __future__ import annotations

import pytest

from repro import Database, DataType, DynamicMode, EngineConfig
from repro.bench import ExperimentConfig, build_database
from repro.engine.plan_cache import PlanCache
from repro.errors import ConfigError
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.observe.metrics import MetricsRegistry
from repro.optimizer.cost_model import CostModel
from repro.plans.logical import (
    AndPredicate,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    InPredicate,
)
from repro.stats.histogram import HistogramKind
from repro.storage import BufferPool, CostClock, Schema, TempTableManager
from repro.storage.columnar import ColumnStore, ZoneMap, numpy_available, page_groups
from repro.executor.vector import compile_mask_filter
from repro.workloads.tpcd import ALL_QUERIES

from .conftest import make_two_table_db

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="columnar path requires numpy"
)


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return build_database(ExperimentConfig(scale_factor=0.01))


def dispatch(db: Database, plan, execution_mode: str, **updates):
    """One dispatcher run on a fresh runtime context; returns (result, ctx)."""
    config = db.config.with_updates(execution_mode=execution_mode, **updates)
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    try:
        result = Dispatcher(ctx).run(plan)
    finally:
        ctx.temp_manager.drop_all()
    return result, ctx


def assert_observed_equal(left: dict, right: dict) -> None:
    """Collector-output equality (histograms compared by kind + buckets)."""
    assert set(left) == set(right)
    for node_id, a in left.items():
        b = right[node_id]
        assert a.row_count == b.row_count
        assert a.row_bytes == b.row_bytes
        assert dict(a.minmax) == dict(b.minmax)
        assert dict(a.distincts) == dict(b.distincts)
        assert set(a.histograms) == set(b.histograms)
        for column, ha in a.histograms.items():
            hb = b.histograms[column]
            assert ha.kind == hb.kind
            assert ha.buckets == hb.buckets


def assert_bit_identical(left, left_ctx, right, right_ctx) -> None:
    """The full cross-mode parity contract for one dispatched plan."""
    assert left.rows == right.rows
    assert left_ctx.clock.breakdown == right_ctx.clock.breakdown
    assert left_ctx.clock.now == right_ctx.clock.now
    assert left_ctx.buffer_pool.stats == right_ctx.buffer_pool.stats
    assert left_ctx.switches == right_ctx.switches
    assert left_ctx.reallocations == right_ctx.reallocations
    assert_observed_equal(left_ctx.observed, right_ctx.observed)


# ----------------------------------------------------------------------
# Storage: ColumnStore geometry, sync, encodings
# ----------------------------------------------------------------------


def _make_table(rows, dtypes=None, batch_size=64, dictionary_max=256):
    db = Database(EngineConfig(batch_size=batch_size))
    width = len(rows[0]) if rows else 1
    dtypes = dtypes or [DataType.INTEGER] * width
    db.create_table("t", [(f"c{i}", dtypes[i]) for i in range(width)])
    if rows:
        db.load_rows("t", rows)
    table = db.catalog.table("t")
    return db, table, table.column_store(batch_size, dictionary_max)


class TestColumnStore:
    def test_groups_match_page_group_geometry(self):
        __, table, store = _make_table([(i, i % 5) for i in range(1000)])
        bounds = page_groups(table, 64)
        assert [(g.first_page, g.last_page) for g in store.groups] == bounds
        assert store.groups[0].start_row == 0
        assert store.groups[-1].end_row == table.row_count
        for prev, nxt in zip(store.groups, store.groups[1:]):
            assert prev.end_row == nxt.start_row

    def test_integer_column_round_trips_exactly(self):
        values = [(-(2**62), 0), (2**62, 1), (17, 2)]
        __, table, store = _make_table(values)
        group = store.groups[0]
        assert store.encodings[0] == "int64"
        assert store.values(group, 0).tolist() == [v for v, __ in values]

    def test_huge_integer_demotes_to_object(self):
        __, __t, store = _make_table([(2**70, 0), (1, 1)])
        assert store.encodings[0] == "object"
        assert store.values(store.groups[0], 0).tolist() == [2**70, 1]

    def test_bool_demotes_to_object(self):
        # bool is an int subclass but int64 storage would turn True into 1,
        # breaking value-level parity with the heap tuples.
        __, __t, store = _make_table([(True, 0), (False, 1)])
        assert store.encodings[0] == "object"
        assert store.values(store.groups[0], 0).tolist() == [True, False]

    def test_null_in_numeric_column_demotes_to_object(self):
        __, __t, store = _make_table([(1, 0), (None, 1), (3, 2)])
        assert store.encodings[0] == "object"
        assert store.values(store.groups[0], 0).tolist() == [1, None, 3]

    def test_string_column_dictionary_encodes(self):
        rows = [(i, ["red", "green", "blue"][i % 3]) for i in range(300)]
        __, __t, store = _make_table(
            rows, dtypes=[DataType.INTEGER, DataType.STRING]
        )
        assert store.encodings[1] == "dict"
        decoded = [
            v
            for group in store.groups
            for v in store.values(group, 1).tolist()
        ]
        assert decoded == [value for __, value in rows]

    def test_dictionary_overflow_demotes_and_decodes_in_place(self):
        rows = [(i, f"v{i}") for i in range(300)]
        __, __t, store = _make_table(
            rows, dtypes=[DataType.INTEGER, DataType.STRING], dictionary_max=16
        )
        assert store.encodings[1] == "object"
        assert store.dictionaries[1] is None
        decoded = [
            v
            for group in store.groups
            for v in store.values(group, 1).tolist()
        ]
        assert decoded == [value for __, value in rows]

    def test_incremental_sync_keeps_full_group_prefix(self):
        db, table, store = _make_table([(i, 0) for i in range(1000)])
        version = store.version
        prefix = [id(g) for g in store.groups[:-1]]
        table.append_rows([(i, 1) for i in range(1000, 1500)])
        assert store.version > version
        assert [id(g) for g in store.groups[: len(prefix)]] == prefix
        assert store.groups[-1].end_row == 1500
        decoded = [
            v for group in store.groups for v in store.values(group, 0).tolist()
        ]
        assert decoded == [row[0] for row in table.rows]

    def test_sync_is_idempotent(self):
        __, table, store = _make_table([(i, 0) for i in range(100)])
        version = store.version
        store.sync()
        store.sync()
        assert store.version == version

    def test_truncate_resets_store(self):
        __, table, store = _make_table([(2**70, 0)])
        assert store.encodings[0] == "object"
        table.truncate()
        assert store.groups == []
        assert store.encodings[0] == "int64"

    def test_store_cached_per_geometry(self):
        __, table, store = _make_table([(i, 0) for i in range(100)])
        assert table.column_store(64) is store
        assert table.column_store(32) is not store


class TestZoneMaps:
    def test_zone_maps_exact_min_max(self):
        __, __t, store = _make_table([(i, i % 7) for i in range(1000)])
        for group in store.groups:
            zone = group.zones[0]
            assert zone.min_value == group.start_row
            assert zone.max_value == group.end_row - 1
            assert zone.null_count == 0
            assert zone.row_count == group.row_count

    def test_all_null_group(self):
        __, __t, store = _make_table([(None, i) for i in range(10)])
        zone = store.groups[0].zones[0]
        assert zone.all_null
        assert zone.min_value is None and zone.max_value is None
        assert zone.null_count == zone.row_count == 10

    def test_single_row_groups(self):
        # batch_size 1: every page is its own group, and a table one row
        # past a page boundary ends in a genuine single-row group.
        table_rows = 257  # one row past a 256-row page boundary
        __, table, store = _make_table(
            [(i, 0) for i in range(table_rows)], batch_size=1
        )
        assert len(store.groups) == table.page_count == 2
        last = store.groups[-1]
        assert last.row_count == 1
        zone = last.zones[0]
        assert zone.min_value == zone.max_value == table_rows - 1
        assert zone.row_count == 1
        for group in store.groups:
            zone = group.zones[0]
            assert zone.min_value == group.start_row
            assert zone.max_value == group.end_row - 1

    def test_maintained_across_appends(self):
        __, table, store = _make_table([(i, 0) for i in range(100)])
        table.append_rows([(1_000_000, 0)])
        assert store.groups[-1].zones[0].max_value == 1_000_000


# ----------------------------------------------------------------------
# Mask kernels
# ----------------------------------------------------------------------


def _schema():
    from .conftest import simple_schema

    return simple_schema()


class TestMaskCompiler:
    def _resolve_for(self, columns):
        return lambda position: np.asarray(columns[position])

    def test_comparison_mask(self):
        schema = _schema()
        fn = compile_mask_filter(
            [Comparison(CompareOp.LT, ColumnExpr("id"), ConstExpr(3))], schema
        )
        mask = fn(self._resolve_for({0: [1, 2, 3, 4]}))
        assert mask.tolist() == [True, True, False, False]

    def test_conjunction_and_in_list(self):
        schema = _schema()
        fn = compile_mask_filter(
            [
                AndPredicate(
                    (
                        Comparison(CompareOp.GE, ColumnExpr("id"), ConstExpr(1)),
                        InPredicate(ColumnExpr("id"), (2, 4)),
                    )
                )
            ],
            schema,
        )
        mask = fn(self._resolve_for({0: [0, 2, 3, 4]}))
        assert mask.tolist() == [False, True, False, True]

    def test_arithmetic_division_by_zero_constant_rejected(self):
        # NumPy's x/0 yields inf+warning where Python raises; the kernel
        # must refuse rather than diverge.
        from repro.plans.logical import ArithExpr

        schema = _schema()
        assert (
            compile_mask_filter(
                [
                    Comparison(
                        CompareOp.EQ,
                        ArithExpr("/", ColumnExpr("id"), ConstExpr(0)),
                        ConstExpr(1),
                    )
                ],
                schema,
            )
            is None
        )
        fn = compile_mask_filter(
            [
                Comparison(
                    CompareOp.EQ,
                    ArithExpr("/", ColumnExpr("id"), ConstExpr(2)),
                    ConstExpr(2),
                )
            ],
            schema,
        )
        assert fn is not None

    def test_unsupported_expression_returns_none(self):
        from repro.plans.logical import FuncExpr

        schema = _schema()
        assert (
            compile_mask_filter(
                [
                    Comparison(
                        CompareOp.EQ,
                        FuncExpr("abs", (ColumnExpr("id"),)),
                        ConstExpr(1),
                    )
                ],
                schema,
            )
            is None
        )


# ----------------------------------------------------------------------
# Parity: columnar vs batch vs row
# ----------------------------------------------------------------------

PARITY_QUERIES = [
    "SELECT id, a, b FROM r1 WHERE a < 50",
    "SELECT id FROM r1 WHERE a < 30 AND b >= 10",
    "SELECT id, a FROM r1 WHERE id < 400 AND a <> 7",
    "SELECT r1.id, r2.c FROM r1, r2 WHERE r1.id = r2.r1_id AND r1.a < 40",
    "SELECT r1.a, count(*), sum(r2.c) FROM r1, r2 WHERE r1.id = r2.r1_id GROUP BY r1.a",
    "SELECT id, a + b FROM r1 WHERE id < 200",
    "SELECT count(*) FROM r2 WHERE r1_id < 100",
]


class TestColumnarParity:
    @pytest.mark.parametrize("sql", PARITY_QUERIES)
    def test_bit_identical_on_two_table_db(self, two_table_db, sql):
        plan, __scia, __opt = two_table_db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(two_table_db, plan, "batch")
        col_result, col_ctx = dispatch(two_table_db, plan, "columnar")
        row_result, row_ctx = dispatch(two_table_db, plan, "row")
        assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)
        assert row_result.rows == batch_result.rows
        assert row_ctx.clock.now == batch_ctx.clock.now

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_bit_identical_on_tpcd(self, tpcd_db, query):
        plan, __scia, __opt = tpcd_db.plan(query.sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        col_result, col_ctx = dispatch(tpcd_db, plan, "columnar")
        assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 1024])
    def test_parity_at_any_page_group_size(self, batch_size):
        db = Database(EngineConfig(batch_size=batch_size))
        rows = [(i, i % 13, i % 3) for i in range(500)]
        db.create_table(
            "t",
            [
                ("k", DataType.INTEGER),
                ("a", DataType.INTEGER),
                ("b", DataType.INTEGER),
            ],
        )
        db.load_rows("t", rows)
        db.analyze()
        for sql in (
            "SELECT k, a FROM t WHERE k < 250 AND a >= 3",
            "SELECT b, count(*) FROM t WHERE k >= 100 GROUP BY b",
        ):
            plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
            batch_result, batch_ctx = dispatch(db, plan, "batch")
            col_result, col_ctx = dispatch(db, plan, "columnar")
            assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)

    def test_string_and_null_columns_hold_parity(self):
        db = Database(EngineConfig(batch_size=32))
        db.create_table(
            "t",
            [
                ("k", DataType.INTEGER),
                ("s", DataType.STRING),
                ("v", DataType.INTEGER),
            ],
        )
        rows = [
            (i, ["red", "green", "blue"][i % 3], None if i % 5 == 0 else i % 40)
            for i in range(400)
        ]
        db.load_rows("t", rows)  # no ANALYZE: its column stats reject NULLs
        for sql in (
            "SELECT k, s FROM t WHERE s = 'red' AND k < 300",
            "SELECT s, count(*) FROM t WHERE k >= 10 GROUP BY s",
        ):
            plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
            batch_result, batch_ctx = dispatch(db, plan, "batch")
            col_result, col_ctx = dispatch(db, plan, "columnar")
            assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)

    def test_switch_queries_survive_columnar(self, tpcd_db):
        # Q5 and Q8 re-optimize mid-query at this scale; the columnar path
        # must reproduce the switch and the final profile exactly.
        for name in ("Q5", "Q8"):
            query = next(q for q in ALL_QUERIES if q.name == name)
            batch = tpcd_db.execute(
                query.sql, mode=DynamicMode.FULL, execution_mode="batch"
            )
            col = tpcd_db.execute(
                query.sql, mode=DynamicMode.FULL, execution_mode="columnar"
            )
            assert col.rows == batch.rows
            assert col.profile.plan_switches == batch.profile.plan_switches
            assert batch.profile.plan_switches >= 1
            assert col.profile.total_cost == batch.profile.total_cost
            assert col.profile.breakdown == batch.profile.breakdown

    def test_appends_after_analyze_stay_consistent(self, two_table_db):
        db = two_table_db
        sql = "SELECT id, a FROM r1 WHERE id >= 1990"
        before = db.execute(sql, execution_mode="columnar")
        epoch = db.catalog.stats_epoch
        db.load_rows("r1", [(i, 1, 2) for i in range(2000, 2100)])
        assert db.catalog.stats_epoch > epoch  # plan-cache invalidation
        after_col = db.execute(sql, execution_mode="columnar")
        after_batch = db.execute(sql, execution_mode="batch")
        assert len(after_col.rows) == len(before.rows) + 100
        assert after_col.rows == after_batch.rows
        assert after_col.profile.total_cost == after_batch.profile.total_cost


# ----------------------------------------------------------------------
# Zone-map skipping behaviour
# ----------------------------------------------------------------------


def _clustered_db(batch_size=64, rows=2000) -> Database:
    """A table clustered on k, so k-range predicates prune page groups."""
    db = Database(EngineConfig(batch_size=batch_size))
    db.create_table(
        "t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], key=["k"]
    )
    db.load_rows("t", [(i, i % 17) for i in range(rows)])
    db.analyze()
    return db


class TestZoneMapSkipping:
    def test_clustered_range_predicate_skips_groups(self):
        db = _clustered_db()
        result = db.execute(
            "SELECT k, v FROM t WHERE k < 100", execution_mode="columnar"
        )
        profile = result.profile
        assert profile.columnar_pipelines >= 1
        assert profile.zone_map_skips > 0
        assert profile.zone_map_pages_skipped > 0
        assert profile.zone_map_by_scan
        (per_scan,) = profile.zone_map_by_scan.values()
        assert per_scan["table"] == "t"
        assert per_scan["groups_skipped"] == profile.zone_map_skips
        assert sorted(result.rows) == [(i, i % 17) for i in range(100)]

    def test_charge_mode_is_cost_identical_to_batch(self):
        db = _clustered_db()
        sql = "SELECT k FROM t WHERE k >= 1900"
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        col_result, col_ctx = dispatch(db, plan, "columnar")
        assert col_ctx.columnar.groups_skipped > 0
        assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)

    def test_free_mode_charges_less_but_returns_same_rows(self):
        db = _clustered_db()
        sql = "SELECT k FROM t WHERE k >= 1900"
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        free_result, free_ctx = dispatch(
            db, plan, "columnar", zone_map_cost_mode="free"
        )
        assert free_ctx.columnar.groups_skipped > 0
        assert free_result.rows == batch_result.rows
        assert free_ctx.clock.now < batch_ctx.clock.now
        assert (
            free_ctx.buffer_pool.stats.misses + free_ctx.buffer_pool.stats.hits
            < batch_ctx.buffer_pool.stats.misses + batch_ctx.buffer_pool.stats.hits
        )

    def test_skipping_disabled_reads_everything(self):
        db = _clustered_db()
        sql = "SELECT k FROM t WHERE k < 100"
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        on_result, on_ctx = dispatch(db, plan, "columnar")
        off_result, off_ctx = dispatch(db, plan, "columnar", zone_map_skipping=False)
        assert on_ctx.columnar.groups_skipped > 0
        assert off_ctx.columnar.groups_skipped == 0
        assert off_result.rows == on_result.rows
        assert off_ctx.clock.now == on_ctx.clock.now  # charge mode replays

    def test_groups_with_nulls_never_skip_and_error_parity(self):
        # A NULL comparison raises on the serial path when the row is
        # reached; skipping a NULL-bearing group would mask that error, so
        # such groups never skip — and the columnar path raises the same
        # TypeError the row/batch paths raise.
        db = Database(EngineConfig(batch_size=8))
        db.create_table("t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)])
        db.load_rows("t", [(i if i % 8 else None, i) for i in range(2048)])
        sql = "SELECT v FROM t WHERE k > 100000"
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        with pytest.raises(TypeError):
            dispatch(db, plan, "batch")
        with pytest.raises(TypeError):
            dispatch(db, plan, "columnar")

    def test_conjunct_short_circuit_matches_serial(self):
        # A row failing the first conjunct must never reach the second —
        # here every NULL-k row is excluded by ``v < 100`` first, so the
        # serial path completes without touching the NULLs and the
        # columnar path must do the same (per-conjunct narrowing).
        db = Database(EngineConfig(batch_size=8))
        db.create_table("t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)])
        db.load_rows(
            "t",
            [
                (None if i % 8 == 0 else i, 1000 if i % 8 == 0 else i % 50)
                for i in range(2048)
            ],
        )
        sql = "SELECT k FROM t WHERE v < 100 AND k > 5"
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        try:
            batch_outcome = dispatch(db, plan, "batch")
        except TypeError:
            batch_outcome = None  # optimizer reordered: both must raise
        if batch_outcome is None:
            with pytest.raises(TypeError):
                dispatch(db, plan, "columnar")
        else:
            col_result, col_ctx = dispatch(db, plan, "columnar")
            assert_bit_identical(
                col_result, col_ctx, batch_outcome[0], batch_outcome[1]
            )

    def test_in_list_predicate_skips(self):
        db = _clustered_db()
        result = db.execute(
            "SELECT v FROM t WHERE k IN (3, 5, 7)", execution_mode="columnar"
        )
        assert result.profile.zone_map_skips > 0
        assert sorted(result.rows) == [(3 % 17,), (5 % 17,), (7 % 17,)]

    def test_page_per_group_geometry_skips_and_matches(self):
        # batch_size 1 degenerates every page group to a single page.
        db = _clustered_db(batch_size=1, rows=2000)
        plan, __scia, __opt = db.plan(
            "SELECT k FROM t WHERE k = 25", mode=DynamicMode.FULL
        )
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        col_result, col_ctx = dispatch(db, plan, "columnar")
        assert col_ctx.columnar.groups_skipped > 0
        assert_bit_identical(col_result, col_ctx, batch_result, batch_ctx)


# ----------------------------------------------------------------------
# Engine integration: profile, plan cache, metrics, EXPLAIN ANALYZE
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_profile_fields_and_summary(self):
        db = _clustered_db()
        result = db.execute(
            "SELECT k FROM t WHERE k < 100", execution_mode="columnar"
        )
        profile = result.profile
        assert profile.columnar_pipelines >= 1
        assert profile.zone_map_groups_read >= 1
        assert "columnar: pipelines=" in profile.summary()
        batch = db.execute("SELECT k FROM t WHERE k < 100", execution_mode="batch")
        assert batch.profile.columnar_pipelines == 0
        assert batch.profile.zone_map_skips == 0

    def test_keyed_pipelines_feed_joins_and_aggregates(self, two_table_db):
        result = two_table_db.execute(
            "SELECT r1.a, count(*) FROM r1, r2 "
            "WHERE r1.id = r2.r1_id AND r2.c < 8 GROUP BY r1.a",
            execution_mode="columnar",
        )
        assert result.profile.columnar_keyed_pipelines >= 1

    def test_plan_cache_isolates_modes(self, two_table_db):
        db = two_table_db
        sql = "SELECT id FROM r1 WHERE a < 10"
        db.execute(sql, execution_mode="batch")
        before = db.plan_cache.stats.snapshot()
        db.execute(sql, execution_mode="columnar")
        after = db.plan_cache.stats.snapshot()
        assert after.hits == before.hits  # no cross-mode hit
        db.execute(sql, execution_mode="columnar")
        assert db.plan_cache.stats.hits == after.hits + 1

    def test_execution_key_specializes_on_zone_toggles(self):
        # parallel_workers and the vector knobs pinned so REPRO_WORKERS /
        # REPRO_VECTOR_* env legs cannot leak into the key's components.
        base = EngineConfig(
            execution_mode="columnar",
            parallel_workers=0,
            vectorized_agg=True,
            vectorized_probe=True,
        )
        key = PlanCache.execution_key(base, "columnar", None)
        assert key == "columnar/z1/charge/va1/vp1/m1/w0"
        no_skip = base.with_updates(zone_map_skipping=False)
        free = base.with_updates(zone_map_cost_mode="free")
        assert PlanCache.execution_key(no_skip, "columnar", None) != key
        assert PlanCache.execution_key(free, "columnar", None) != key
        assert PlanCache.execution_key(base, "batch", None) == "batch"
        # The vector knobs specialize columnar entries too.
        no_vec_agg = base.with_updates(vectorized_agg=False)
        no_vec_probe = base.with_updates(vectorized_probe=False)
        assert (
            PlanCache.execution_key(no_vec_agg, "columnar", None)
            == "columnar/z1/charge/va0/vp1/m1/w0"
        )
        assert PlanCache.execution_key(no_vec_probe, "columnar", None) != key
        # The columnar-morsel fan-out (and its worker count) specializes too.
        serial_kernels = base.with_updates(columnar_parallel=False)
        assert (
            PlanCache.execution_key(serial_kernels, "columnar", None)
            == "columnar/z1/charge/va1/vp1/m0"
        )
        assert (
            PlanCache.execution_key(base, "columnar", 4)
            == "columnar/z1/charge/va1/vp1/m1/w4"
        )

    def test_metrics_counters_recorded(self):
        registry = MetricsRegistry()
        db = Database(
            EngineConfig(batch_size=64, execution_mode="columnar"),
            metrics=registry,
        )
        db.create_table("t", [("k", DataType.INTEGER)], key=["k"])
        db.load_rows("t", [(i,) for i in range(2000)])
        db.analyze()
        db.execute("SELECT k FROM t WHERE k < 64")
        snap = registry.snapshot()
        assert snap["columnar.pipelines"]["value"] >= 1
        assert snap["columnar.zone_map.groups_skipped"]["value"] >= 1
        assert snap["columnar.zone_map.pages_skipped"]["value"] >= 1
        assert snap["columnar.zone_map.groups_read"]["value"] >= 1

    def test_explain_analyze_reports_zone_map_line(self):
        db = _clustered_db()
        report = db.explain_analyze(
            "SELECT k FROM t WHERE k < 100", execution_mode="columnar"
        )
        rendered = report.render()
        assert "zone maps: skipped" in rendered
        assert "page groups" in rendered
        scans = [
            n
            for plan in report.plans
            for n in plan.nodes
            if n.zone_map is not None
        ]
        assert scans and scans[0].zone_map["groups_skipped"] >= 1

    def test_env_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "columnar")
        assert EngineConfig().execution_mode == "columnar"
        monkeypatch.setenv("REPRO_ZONE_MAPS", "0")
        monkeypatch.setenv("REPRO_ZONE_MAP_COST", "free")
        config = EngineConfig()
        assert config.zone_map_skipping is False
        assert config.zone_map_cost_mode == "free"
        EngineConfig(execution_mode="columnar").validate()
        with pytest.raises(ConfigError):
            EngineConfig(zone_map_cost_mode="cheap").validate()
        with pytest.raises(ConfigError):
            EngineConfig(columnar_dictionary_max=0).validate()
        with pytest.raises(ConfigError):
            EngineConfig(execution_mode="columns").validate()

    def test_row_mode_never_builds_stores(self):
        db = _clustered_db()
        db.execute("SELECT k FROM t WHERE k < 10", execution_mode="row")
        assert db.catalog.table("t")._column_stores == {}
