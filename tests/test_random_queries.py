"""Randomized query testing against the brute-force oracle.

Generates random schemas, data and multi-join queries and checks that the
engine — under every dynamic mode — returns exactly what the naive
cross-product evaluator returns.  This is the strongest end-to-end
correctness net in the suite: it exercises the optimizer's plan choices,
every join algorithm, the collectors, and the mid-query switch machinery
at once.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, DataType, DynamicMode
from repro.bench.harness import rows_equivalent

from .oracle import evaluate


def build_random_db(seed: int, tables: int = 3, config=None) -> Database:
    """A chain-joinable database: t0(k, v), t1(k, t0_k, v), t2(k, t1_k, v)."""
    db = Database(config)
    rng = random.Random(seed)
    sizes = [rng.randrange(20, 80) for __ in range(tables)]
    for i in range(tables):
        columns = [("k", DataType.INTEGER)]
        if i > 0:
            columns.append((f"t{i - 1}_k", DataType.INTEGER))
        columns.append(("v", DataType.INTEGER))
        db.create_table(f"t{i}", columns, key=["k"])
        rows = []
        for k in range(sizes[i]):
            row = [k]
            if i > 0:
                row.append(rng.randrange(sizes[i - 1]))
            row.append(rng.randrange(15))
            rows.append(tuple(row))
        db.load_rows(f"t{i}", rows)
    db.analyze()
    return db


def random_query(rng: random.Random, tables: int = 3) -> str:
    """A random chain-join query with random filters and optional group-by."""
    joins = " AND ".join(
        f"t{i}.t{i - 1}_k = t{i - 1}.k" for i in range(1, tables)
    )
    filters = []
    for i in range(tables):
        if rng.random() < 0.6:
            op = rng.choice(["<", "<=", ">", ">=", "=", "<>"])
            filters.append(f"t{i}.v {op} {rng.randrange(15)}")
    where = " AND ".join(filter(None, [joins] + filters))
    if rng.random() < 0.5:
        sql = (
            f"SELECT t0.v, count(*) n, sum(t{tables - 1}.v) s "
            f"FROM {', '.join(f't{i}' for i in range(tables))} "
            f"WHERE {where} GROUP BY t0.v"
        )
    else:
        sql = (
            f"SELECT t0.v, t{tables - 1}.v "
            f"FROM {', '.join(f't{i}' for i in range(tables))} "
            f"WHERE {where}"
        )
    return sql


class TestRandomizedQueries:
    @pytest.mark.parametrize("seed", range(12))
    def test_engine_matches_oracle(self, seed):
        db = build_random_db(seed)
        rng = random.Random(seed * 31 + 5)
        sql = random_query(rng)
        expected = evaluate(db, db.bind_sql(sql))
        for mode in (DynamicMode.OFF, DynamicMode.FULL):
            result = db.execute(sql, mode=mode)
            assert rows_equivalent(result.rows, expected), (seed, mode, sql)

    @given(seed=st.integers(min_value=100, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_all_modes_agree(self, seed):
        db = build_random_db(seed)
        rng = random.Random(seed)
        sql = random_query(rng)
        reference = db.execute(sql, mode=DynamicMode.OFF)
        for mode in (DynamicMode.MEMORY_ONLY, DynamicMode.PLAN_ONLY, DynamicMode.FULL):
            result = db.execute(sql, mode=mode)
            assert rows_equivalent(result.rows, reference.rows), (seed, mode, sql)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_with_indexes_and_four_tables(self, seed):
        db = build_random_db(seed, tables=4)
        for i in range(1, 4):
            db.create_index(f"ix_t{i}", f"t{i}", f"t{i - 1}_k")
        rng = random.Random(seed + 99)
        sql = random_query(rng, tables=4)
        expected = evaluate(db, db.bind_sql(sql))
        result = db.execute(sql, mode=DynamicMode.FULL)
        assert rows_equivalent(result.rows, expected), (seed, sql)
