"""Plan-wide parallelism: build sides, partitioned spill, loser-tree sort,
columnar morsels.

The contract under test (DESIGN.md section 10, PR 7): extending the morsel
worker pool from probe pipelines to hash-join *build* sides, ORDER BY sorts
and columnar kernels — with partitioned spill relieving the staging windows
— changes *nothing observable*: byte-identical result rows, bit-for-bit
identical simulated ``CostBreakdown``, clock and buffer statistics, and (in
exact statistics mode) bit-identical observed statistics, at any worker
count, in both ``parallel_stats`` modes, and across mid-query plan switches
that fire while a build or sort pipeline is parallel.  Plus the pure pieces
the tentpole rides on: the loser tree's stable-merge tie-break, the spill
round-trip, ``MemoryManager.spill_windows`` arbitration, and the new
telemetry/plan-cache surfaces.
"""

from __future__ import annotations

import pickle
import random
from operator import itemgetter

import pytest

from repro import Database, DataType, DynamicMode, EngineConfig
from repro.bench import ExperimentConfig, build_database
from repro.executor.dispatcher import Dispatcher
from repro.executor import loser_tree as loser_tree_mod
from repro.executor.loser_tree import LoserTree, merge_runs, row_comparator
from repro.executor.memory import MemoryManager
from repro.executor.parallel import _MorselResult, _Partition, _SpillMarker
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.synthetic import SyntheticConfig, build_running_example
from repro.workloads.tpcd import ALL_QUERIES

WORKER_COUNTS = (1, 2, 7)

#: A TPC-D join whose build side (customer) is leaf-extractable; with
#: ``morsel_pages=4`` its 21 pages split into enough morsels to fan out.
BUILD_QUERY = "Q3"
BUILD_KNOBS = {"morsel_pages": 4}

#: ORDER BY over a leaf-extractable chain (filter over a base scan) — the
#: shape the parallel sort handles; sorts over joins/aggregates stay serial.
SORT_SQL = (
    "SELECT l_orderkey, l_extendedprice FROM lineitem "
    "WHERE l_quantity > 10 ORDER BY l_extendedprice DESC, l_orderkey"
)

#: The running example reshaped to ORDER BY: FULL mode still mis-estimates
#: the correlated predicates and switches at the cut join, so the switch
#: fires while build pipelines are parallel and the remainder re-sorts.
SORT_SWITCH_SQL = (
    "SELECT rel1.id, rel1.groupattr FROM rel1, rel2, rel3 "
    "WHERE rel1.selectattr1 < :value1 AND rel1.selectattr2 < :value2 "
    "AND rel1.joinattr2 = rel2.joinattr2 AND rel1.joinattr3 = rel3.joinattr3 "
    "ORDER BY rel1.groupattr DESC, rel1.id"
)

RUNNING_EXAMPLE_SQL = (
    "SELECT avg(rel1.selectattr1), avg(rel1.selectattr2), rel1.groupattr "
    "FROM rel1, rel2, rel3 "
    "WHERE rel1.selectattr1 < :value1 AND rel1.selectattr2 < :value2 "
    "AND rel1.joinattr2 = rel2.joinattr2 "
    "AND rel1.joinattr3 = rel3.joinattr3 "
    "GROUP BY rel1.groupattr"
)

SWITCH_PARAMS = {"value1": 80, "value2": 80}


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return build_database(ExperimentConfig(scale_factor=0.01))


@pytest.fixture(scope="module")
def switch_db() -> Database:
    """The running example sized so FULL mode plan-switches at the cut
    join, with morsels small enough that build sides fan out too.
    Feedback stays off so the switch repeats identically across tests."""
    db = Database(EngineConfig(morsel_pages=16, feedback_enabled=False))
    build_running_example(
        db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
    )
    return db


def dispatch(db: Database, plan, execution_mode: str, workers: int = 0, **knobs):
    """One dispatcher run on a fresh runtime context; returns (result, ctx)."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers, **knobs
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    try:
        result = Dispatcher(ctx).run(plan)
    finally:
        ctx.temp_manager.drop_all()
    return result, ctx


def assert_observed_equal(left: dict, right: dict) -> None:
    """Collector-output equality (histograms compared by kind + buckets)."""
    assert set(left) == set(right)
    for node_id, a in left.items():
        b = right[node_id]
        assert a.row_count == b.row_count
        assert dict(a.minmax) == dict(b.minmax)
        assert dict(a.distincts) == dict(b.distincts)
        assert set(a.histograms) == set(b.histograms)
        for column, ha in a.histograms.items():
            hb = b.histograms[column]
            assert ha.kind == hb.kind
            assert ha.buckets == hb.buckets


def assert_bit_identical(left, left_ctx, right, right_ctx) -> None:
    """The full cross-mode parity contract for one dispatched plan."""
    assert left.rows == right.rows
    assert left_ctx.clock.breakdown == right_ctx.clock.breakdown
    assert left_ctx.clock.now == right_ctx.clock.now
    assert left_ctx.buffer_pool.stats == right_ctx.buffer_pool.stats
    assert_observed_equal(left_ctx.observed, right_ctx.observed)


def plan_for(db: Database, name_or_sql: str):
    query = next((q for q in ALL_QUERIES if q.name == name_or_sql), None)
    sql = query.sql if query is not None else name_or_sql
    plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
    return plan


# ----------------------------------------------------------------------
# Loser tree: merge == serial stable sort, by construction and by test
# ----------------------------------------------------------------------


def serial_sort(rows, keys):
    """The serial sort's exact algorithm: one stable pass per key,
    applied last-key-first."""
    out = list(rows)
    for position, ascending in reversed(keys):
        out.sort(key=itemgetter(position), reverse=not ascending)
    return out


def contiguous_runs(rows, pieces, keys):
    """Split into ``pieces`` contiguous runs and sort each the way a
    worker sorts its morsel range (identical multi-pass algorithm)."""
    bounds = [round(i * len(rows) / pieces) for i in range(pieces + 1)]
    runs = []
    for lo, hi in zip(bounds, bounds[1:]):
        runs.append(serial_sort(rows[lo:hi], keys))
    return runs


class TestLoserTree:
    KEYS = ((1, True), (0, False))

    def _rows(self, seed, n=500, dup_domain=7):
        rng = random.Random(seed)
        # Heavy duplication in both key columns plus a unique tag so
        # stability violations are visible in the output.
        return [
            (rng.randrange(dup_domain), rng.randrange(dup_domain), i)
            for i in range(n)
        ]

    @pytest.mark.parametrize("pieces", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_merge_matches_serial_stable_sort(self, pieces, seed):
        rows = self._rows(seed)
        runs = contiguous_runs(rows, pieces, self.KEYS)
        merged = merge_runs(runs, row_comparator(self.KEYS))
        assert merged == serial_sort(rows, self.KEYS)

    def test_all_duplicate_keys_preserve_stream_order(self):
        rows = [(1, 1, i) for i in range(100)]
        for pieces in WORKER_COUNTS:
            runs = contiguous_runs(rows, pieces, self.KEYS)
            assert merge_runs(runs, row_comparator(self.KEYS)) == rows

    @pytest.mark.parametrize("pieces", WORKER_COUNTS)
    def test_uneven_and_empty_runs(self, pieces):
        rows = self._rows(3, n=17)
        runs = contiguous_runs(rows, pieces, self.KEYS) + [[]]
        merged = merge_runs(runs, row_comparator(self.KEYS))
        assert merged == serial_sort(rows, self.KEYS)

    def test_single_run_short_circuits(self):
        rows = self._rows(4, n=20)
        run = serial_sort(rows, self.KEYS)
        assert merge_runs([run], row_comparator(self.KEYS)) == run
        assert merge_runs([], row_comparator(self.KEYS)) == []

    def test_nulls_raise_type_error_like_serial_sort(self):
        # The serial sort raises TypeError comparing None with int; the
        # merge must not silently invent an order for rows the serial
        # path rejects.
        keys = ((0, True),)
        with pytest.raises(TypeError):
            serial_sort([(None,), (1,)], keys)
        with pytest.raises(TypeError):
            merge_runs([[(None,)], [(1,)]], row_comparator(keys))

    def test_totalising_comparator_orders_nulls(self):
        # A caller that *wants* NULLS FIRST can supply a totalising
        # comparator; the tree only consults ``before``.
        def before(a, b):
            ka = (a[0] is not None, a[0] if a[0] is not None else 0)
            kb = (b[0] is not None, b[0] if b[0] is not None else 0)
            return ka < kb

        runs = [[(None,), (2,)], [(1,), (3,)]]
        assert merge_runs(runs, before) == [(None,), (1,), (2,), (3,)]

    def test_tree_pops_in_order_with_random_run_shapes(self):
        rng = random.Random(9)
        values = sorted(rng.randrange(50) for _ in range(200))
        runs = []
        remaining = list(values)
        while remaining:
            take = min(len(remaining), rng.randrange(1, 40))
            runs.append([(v,) for v in sorted(remaining[:take])])
            remaining = remaining[take:]
        tree = LoserTree(runs, lambda a, b: a[0] < b[0])
        out = [tree.pop()[0] for _ in values]
        assert out == values
        assert tree.pop() is loser_tree_mod._EXHAUSTED


# ----------------------------------------------------------------------
# Parallel build sides
# ----------------------------------------------------------------------


class TestParallelBuild:
    def test_exact_parity_vs_batch(self, tpcd_db):
        plan = plan_for(tpcd_db, BUILD_QUERY)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch", **BUILD_KNOBS)
        for workers in WORKER_COUNTS:
            result, ctx = dispatch(
                tpcd_db, plan, "parallel", workers=workers, **BUILD_KNOBS
            )
            assert ctx.parallel.build_pipelines >= 1
            assert_bit_identical(result, ctx, batch_result, batch_ctx)

    def test_merge_stats_schedule_independent(self, tpcd_db):
        plan = plan_for(tpcd_db, BUILD_QUERY)
        reference, ref_ctx = dispatch(
            tpcd_db, plan, "parallel", workers=1, parallel_stats="merge",
            **BUILD_KNOBS,
        )
        assert ref_ctx.parallel.build_pipelines >= 1
        for workers in (2, 7):
            result, ctx = dispatch(
                tpcd_db, plan, "parallel", workers=workers,
                parallel_stats="merge", **BUILD_KNOBS,
            )
            assert result.rows == reference.rows
            assert ctx.clock.breakdown == ref_ctx.clock.breakdown
            assert_observed_equal(ctx.observed, ref_ctx.observed)

    def test_build_toggle_restricts_to_probe_and_leaf(self, tpcd_db):
        plan = plan_for(tpcd_db, BUILD_QUERY)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch", **BUILD_KNOBS)
        result, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_build=False,
            **BUILD_KNOBS,
        )
        assert ctx.parallel.build_pipelines == 0
        assert_bit_identical(result, ctx, batch_result, batch_ctx)

    def test_small_build_sides_stay_serial(self, tpcd_db):
        # At default morsel geometry Q3's build scans are below the
        # fan-out floor; the gate declines and everything still matches.
        plan = plan_for(tpcd_db, BUILD_QUERY)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert ctx.parallel.build_pipelines == 0
        assert ctx.parallel.join_pipelines >= 1
        assert_bit_identical(result, ctx, batch_result, batch_ctx)


# ----------------------------------------------------------------------
# Parallel sort
# ----------------------------------------------------------------------


class TestParallelSort:
    def test_exact_parity_vs_batch(self, tpcd_db):
        plan = plan_for(tpcd_db, SORT_SQL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        for workers in WORKER_COUNTS:
            result, ctx = dispatch(tpcd_db, plan, "parallel", workers=workers)
            assert ctx.parallel.sort_pipelines >= 1
            assert ctx.parallel.sort_runs_merged >= 2
            assert_bit_identical(result, ctx, batch_result, batch_ctx)

    def test_merge_stats_schedule_independent(self, tpcd_db):
        plan = plan_for(tpcd_db, SORT_SQL)
        reference, ref_ctx = dispatch(
            tpcd_db, plan, "parallel", workers=1, parallel_stats="merge"
        )
        assert ref_ctx.parallel.sort_pipelines >= 1
        for workers in (2, 7):
            result, ctx = dispatch(
                tpcd_db, plan, "parallel", workers=workers, parallel_stats="merge"
            )
            assert result.rows == reference.rows
            assert ctx.clock.breakdown == ref_ctx.clock.breakdown
            assert_observed_equal(ctx.observed, ref_ctx.observed)

    def test_sort_toggle_off_stays_serial(self, tpcd_db):
        plan = plan_for(tpcd_db, SORT_SQL)
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_sort=False
        )
        assert ctx.parallel.sort_pipelines == 0
        assert ctx.parallel.sort_runs_merged == 0
        assert_bit_identical(result, ctx, batch_result, batch_ctx)

    def test_sort_over_aggregate_stays_serial(self, tpcd_db):
        # TPC-D Q1's ORDER BY sits over a hash aggregate — not a
        # leaf-extractable chain, so the gate declines by design.
        plan = plan_for(tpcd_db, "Q1")
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=2)
        assert ctx.parallel.sort_pipelines == 0
        assert_bit_identical(result, ctx, batch_result, batch_ctx)


# ----------------------------------------------------------------------
# Partitioned spill
# ----------------------------------------------------------------------


class TestPartitionedSpill:
    def test_spill_round_trip_is_byte_identical(self, tmp_path):
        # The transport invariant the parity claims rest on: a spilled
        # result read back through its marker is the result that was
        # written, byte for byte, at any offset in the partition file.
        results = [
            _MorselResult(
                index=i,
                batches=[[(i, j) for j in range(4)]],
                counts=[(4, 4)],
                partial=None,
                replay=None,
                groups_out=None,
                shipped_rows=4,
                elapsed=0.0,
                pid=0,
            )
            for i in range(3)
        ]
        path = tmp_path / "part-0.spill"
        markers = []
        offset = 0
        with open(path, "wb") as handle:
            for result in results:
                payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                handle.write(payload)
                markers.append(_SpillMarker(0, result.index, offset, len(payload)))
                offset += len(payload)
        partition = _Partition(
            0, 0, 3, process=None, conn=None, sem=None, spill_path=str(path)
        )
        try:
            # Resolve out of write order: the merge loop may reach a
            # marker before or after the read-ahead resolved neighbours.
            for marker in (markers[2], markers[0], markers[1]):
                resolved = partition._resolve_spill(marker)
                assert resolved.spilled is True
                assert resolved.index == marker.index
                assert resolved.batches == results[marker.index].batches
                assert resolved.counts == results[marker.index].counts
        finally:
            partition._spill_file.close()

    def test_spill_windows_split_and_floor_at_zero(self):
        # Unlike staging windows there is no one-morsel floor: a starved
        # partition keeps its payloads on disk until the merge point.
        assert MemoryManager.spill_windows(64, 2, 8, 8) == [4, 4]
        assert MemoryManager.spill_windows(65, 2, 8, 8) == [4, 4]
        assert MemoryManager.spill_windows(0, 3, 8, 8) == [0, 0, 0]
        assert MemoryManager.spill_windows(-5, 2, 8, 8) == [0, 0]
        assert MemoryManager.spill_windows(10_000, 2, 8, 3) == [3, 3]

    def test_spill_toggle_off_never_spills(self, tpcd_db):
        plan = plan_for(tpcd_db, "Q1")
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(
            tpcd_db, plan, "parallel", workers=2, parallel_spill=False
        )
        assert ctx.parallel.rows_spilled == 0
        assert ctx.parallel.morsels_spilled == 0
        assert ctx.parallel.partitions_spilled == 0
        assert_bit_identical(result, ctx, batch_result, batch_ctx)

    @pytest.mark.parametrize("workers", (2, 7))
    def test_spill_on_parity_under_pressure(self, tpcd_db, workers):
        # A tight memory budget shrinks the staging windows so workers
        # overrun them; whether (and which) morsels spill is scheduling-
        # dependent, so the assertion is the one that matters: parity.
        plan = plan_for(tpcd_db, "Q1")
        batch_result, batch_ctx = dispatch(tpcd_db, plan, "batch")
        result, ctx = dispatch(tpcd_db, plan, "parallel", workers=workers)
        spill_counters = (
            ctx.parallel.rows_spilled,
            ctx.parallel.morsels_spilled,
            ctx.parallel.partitions_spilled,
        )
        assert all(count >= 0 for count in spill_counters)
        if ctx.parallel.morsels_spilled:
            assert ctx.parallel.partitions_spilled >= 1
            # Q1 pre-aggregates (value-run shipping covers its float
            # SUM/AVG), so spilled results hold group partials, not rows.
            if ctx.parallel.rows_shipped:
                assert ctx.parallel.rows_spilled > 0
        assert_bit_identical(result, ctx, batch_result, batch_ctx)


# ----------------------------------------------------------------------
# Columnar kernels inside morsels
# ----------------------------------------------------------------------

FILTER_SQL = "SELECT k, v FROM t WHERE k < 1200"


def _clustered_db(rows=4000) -> Database:
    db = Database(EngineConfig(batch_size=64, morsel_pages=2))
    db.create_table(
        "t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], key=["k"]
    )
    db.load_rows("t", [(i, i % 17) for i in range(rows)])
    db.analyze()
    return db


class TestColumnarMorsels:
    numpy = pytest.importorskip("numpy")

    def test_charge_mode_parity_vs_batch_and_serial(self):
        db = _clustered_db()
        plan = plan_for(db, FILTER_SQL)
        batch_result, batch_ctx = dispatch(db, plan, "batch")
        serial_result, serial_ctx = dispatch(
            db, plan, "columnar", columnar_parallel=False
        )
        assert serial_ctx.columnar.parallel_pipelines == 0
        assert_bit_identical(serial_result, serial_ctx, batch_result, batch_ctx)
        # workers=1 resolves no pool: the pipeline stays on the serial
        # columnar loop, still byte-identical.
        lone_result, lone_ctx = dispatch(db, plan, "columnar", workers=1)
        assert lone_ctx.columnar.parallel_pipelines == 0
        assert_bit_identical(lone_result, lone_ctx, batch_result, batch_ctx)
        for workers in (2, 7):
            result, ctx = dispatch(db, plan, "columnar", workers=workers)
            assert ctx.columnar.parallel_pipelines >= 1
            assert ctx.columnar.groups_skipped == serial_ctx.columnar.groups_skipped
            assert ctx.columnar.pages_skipped == serial_ctx.columnar.pages_skipped
            assert_bit_identical(result, ctx, batch_result, batch_ctx)

    def test_free_mode_parity_vs_serial_columnar(self):
        db = _clustered_db()
        plan = plan_for(db, FILTER_SQL)
        serial_result, serial_ctx = dispatch(
            db, plan, "columnar", columnar_parallel=False,
            zone_map_cost_mode="free",
        )
        assert serial_ctx.columnar.groups_skipped > 0
        for workers in (2, 7):
            result, ctx = dispatch(
                db, plan, "columnar", workers=workers, zone_map_cost_mode="free"
            )
            assert ctx.columnar.parallel_pipelines >= 1
            assert result.rows == serial_result.rows
            assert ctx.clock.breakdown == serial_ctx.clock.breakdown
            assert ctx.clock.now == serial_ctx.clock.now
            assert ctx.buffer_pool.stats == serial_ctx.buffer_pool.stats
            assert ctx.columnar.rows_skipped == serial_ctx.columnar.rows_skipped

    def test_keyed_pipelines_stay_serial(self, switch_db):
        # Probe/aggregate feeds go through the keyed columnar path, which
        # deliberately does not fan out; the plain leaf pipeline does, and
        # the mix is byte-identical to the all-serial columnar run.
        def run(workers):
            return switch_db.execute(
                RUNNING_EXAMPLE_SQL,
                params=SWITCH_PARAMS,
                mode=DynamicMode.OFF,
                execution_mode="columnar",
                workers=workers,
            )

        serial = run(1)
        assert serial.profile.columnar_parallel_pipelines == 0
        result = run(2)
        profile = result.profile
        assert profile.columnar_keyed_pipelines >= 1
        assert profile.columnar_parallel_pipelines >= 1
        # Keyed and parallel pipelines are disjoint subsets of the total.
        assert (
            profile.columnar_keyed_pipelines + profile.columnar_parallel_pipelines
            <= profile.columnar_pipelines
        )
        assert result.rows == serial.rows
        assert profile.total_cost == serial.profile.total_cost
        assert profile.breakdown == serial.profile.breakdown
        assert profile.buffer == serial.profile.buffer

    def test_columnar_parallel_toggle_off(self):
        db = _clustered_db()
        plan = plan_for(db, FILTER_SQL)
        result, ctx = dispatch(
            db, plan, "columnar", workers=2, columnar_parallel=False
        )
        assert ctx.columnar.parallel_pipelines == 0
        assert ctx.columnar.pipelines >= 1


# ----------------------------------------------------------------------
# Zone-map skips as exact free observations (SCIA / EXPLAIN ANALYZE)
# ----------------------------------------------------------------------


class TestZoneMapObservations:
    numpy = pytest.importorskip("numpy")

    @pytest.mark.parametrize("cost_mode", ("charge", "free"))
    def test_scan_actuals_include_skipped_rows(self, cost_mode):
        # A zone-map skip is an exact cardinality observation: the scan's
        # actual rows must count skipped groups in both cost modes, so
        # Q-error never reads pruning as a cardinality miss.
        db = _clustered_db()
        db.config = db.config.with_updates(zone_map_cost_mode=cost_mode)
        report = db.explain_analyze(FILTER_SQL, execution_mode="columnar")
        assert report.result.profile.zone_map_skips > 0
        scan = next(
            node
            for plan in report.plans
            for node in plan.nodes
            if node.zone_map is not None
        )
        assert scan.zone_map["rows_skipped"] > 0
        table_rows = len(db.catalog.table("t").rows)
        assert scan.actual_rows == table_rows
        assert scan.rows_q_error == pytest.approx(1.0, abs=0.05)
        assert f"{scan.zone_map['rows_skipped']} rows" in report.render()

    def test_by_scan_counts_rows_in_both_modes(self):
        db = _clustered_db()
        plan = plan_for(db, FILTER_SQL)
        __result, charge_ctx = dispatch(db, plan, "columnar")
        __result, free_ctx = dispatch(
            db, plan, "columnar", zone_map_cost_mode="free"
        )
        for ctx in (charge_ctx, free_ctx):
            (per_scan,) = ctx.columnar.by_scan.values()
            assert per_scan["rows_skipped"] > 0
            assert per_scan["rows_skipped"] == ctx.columnar.rows_skipped


# ----------------------------------------------------------------------
# Mid-query plan switches while build/sort pipelines are parallel
# ----------------------------------------------------------------------


class TestSwitchInteraction:
    def test_serial_baseline_switches(self, switch_db):
        serial = switch_db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        assert serial.profile.plan_switches >= 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_switch_with_parallel_build_parity(self, switch_db, workers):
        serial = switch_db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        par = switch_db.execute(
            RUNNING_EXAMPLE_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="parallel",
            workers=workers,
        )
        assert par.profile.plan_switches == serial.profile.plan_switches >= 1
        assert par.profile.parallel_build_pipelines >= 1
        assert par.rows == serial.rows
        assert par.profile.total_cost == serial.profile.total_cost
        assert par.profile.breakdown == serial.profile.breakdown
        assert par.profile.buffer == serial.profile.buffer

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_switch_with_order_by_remainder_parity(self, switch_db, workers):
        serial = switch_db.execute(
            SORT_SWITCH_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        assert serial.profile.plan_switches >= 1
        par = switch_db.execute(
            SORT_SWITCH_SQL,
            params=SWITCH_PARAMS,
            mode=DynamicMode.FULL,
            execution_mode="parallel",
            workers=workers,
        )
        assert par.profile.plan_switches == serial.profile.plan_switches
        assert par.rows == serial.rows
        assert par.profile.total_cost == serial.profile.total_cost
        assert par.profile.breakdown == serial.profile.breakdown
        assert par.profile.buffer == serial.profile.buffer

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_reopt_during_parallel_sort_parity(self, switch_db, workers):
        # A single-table ORDER BY whose chain carries a collector: any
        # re-optimization decision taken while the sort pipeline is
        # parallel must match the serial run event for event.
        sql = (
            "SELECT id, groupattr FROM rel1 WHERE selectattr1 < :value1 "
            "ORDER BY groupattr DESC, id"
        )
        serial = switch_db.execute(
            sql, params={"value1": 80}, mode=DynamicMode.FULL,
            execution_mode="batch",
        )
        par = switch_db.execute(
            sql, params={"value1": 80}, mode=DynamicMode.FULL,
            execution_mode="parallel", workers=workers,
        )
        assert par.profile.parallel_sort_pipelines >= 1
        assert par.rows == serial.rows
        assert par.profile.total_cost == serial.profile.total_cost
        assert par.profile.breakdown == serial.profile.breakdown
        assert par.profile.plan_switches == serial.profile.plan_switches
        assert len(par.profile.events) == len(serial.profile.events)


# ----------------------------------------------------------------------
# Telemetry, metrics and the plan-cache key
# ----------------------------------------------------------------------


class TestTelemetrySurfaces:
    def test_profile_and_metrics_record_new_counters(self, tpcd_db):
        db = Database(EngineConfig(morsel_pages=4))
        db.create_table(
            "s", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], key=["k"]
        )
        db.load_rows("s", [(i, (i * 7) % 101) for i in range(4000)])
        db.analyze()
        result = db.execute(
            "SELECT k, v FROM s WHERE v > 3 ORDER BY v, k",
            execution_mode="parallel",
            workers=2,
        )
        profile = result.profile
        assert profile.parallel_sort_pipelines >= 1
        assert profile.sort_runs_merged >= 2
        snapshot = db.metrics_snapshot()
        assert snapshot["parallel.sort_pipelines"]["value"] >= 1
        assert snapshot["parallel.sort_runs_merged"]["value"] >= 2
        for name in (
            "parallel.build_pipelines",
            "parallel.rows_spilled",
            "parallel.morsels_spilled",
            "parallel.partitions_spilled",
            "columnar.parallel_pipelines",
        ):
            assert snapshot[name]["type"] == "counter"
        summary = profile.summary()
        assert "sort runs merged=" in summary
        assert "spilled=" in summary

    def test_explain_analyze_surfaces_sort_and_spill_counters(self, tpcd_db):
        report = tpcd_db.explain_analyze(
            SORT_SQL, execution_mode="parallel", workers=2
        )
        text = report.render()
        assert "sort runs merged=" in text
        assert "spilled=" in text
        assert report.result.profile.parallel_sort_pipelines >= 1
