"""Tests for tables, the cost clock, the buffer pool, indexes and temp tables."""

import pytest

from repro.config import CostParameters, EngineConfig
from repro.errors import CatalogError, StorageError
from repro.stats.table_stats import compute_table_stats
from repro.storage import (
    BufferPool,
    Catalog,
    Column,
    CostClock,
    DataType,
    Schema,
    Table,
    TempTableManager,
    build_index,
)

from .conftest import simple_schema


class TestCostClock:
    def test_charges_accumulate_by_category(self):
        clock = CostClock(CostParameters())
        clock.charge_seq_read(10)
        clock.charge_rand_read(2)
        clock.charge_write(4)
        clock.charge_cpu(1.5)
        clock.charge_stats_cpu(0.5)
        clock.charge_optimizer(3.0)
        b = clock.breakdown
        assert b.seq_read == 10 * 1.0
        assert b.rand_read == 2 * 4.0
        assert b.write == 4 * 1.5
        assert b.cpu == 1.5
        assert b.stats_cpu == 0.5
        assert b.optimizer == 3.0
        assert clock.now == pytest.approx(b.total)

    def test_charge_tuples_uses_cpu_per_tuple(self):
        params = CostParameters()
        clock = CostClock(params)
        clock.charge_tuples(100)
        assert clock.breakdown.cpu == pytest.approx(100 * params.cpu_per_tuple)

    def test_snapshot_and_minus(self):
        clock = CostClock(CostParameters())
        clock.charge_seq_read(5)
        before = clock.breakdown.snapshot()
        clock.charge_seq_read(3)
        delta = clock.breakdown.minus(before)
        assert delta.seq_read == pytest.approx(3.0)

    def test_elapsed_since(self):
        clock = CostClock(CostParameters())
        start = clock.now
        clock.charge_cpu(7)
        assert clock.elapsed_since(start) == pytest.approx(7)


class TestBufferPool:
    def _pool(self, capacity=4):
        clock = CostClock(CostParameters())
        return BufferPool(capacity, clock), clock

    def test_miss_charges_hit_does_not(self):
        pool, clock = self._pool()
        assert pool.access(1, 0) is False
        cost_after_miss = clock.now
        assert pool.access(1, 0) is True
        assert clock.now == cost_after_miss

    def test_random_read_costs_more(self):
        pool, clock = self._pool()
        pool.access(1, 0, sequential=True)
        seq_cost = clock.now
        pool.access(1, 1, sequential=False)
        assert clock.now - seq_cost > seq_cost

    def test_lru_eviction(self):
        pool, __ = self._pool(capacity=2)
        pool.access(1, 0)
        pool.access(1, 1)
        pool.access(1, 2)  # evicts page 0
        assert pool.stats.evictions == 1
        assert pool.access(1, 0) is False  # page 0 was evicted

    def test_access_refreshes_lru_position(self):
        pool, __ = self._pool(capacity=2)
        pool.access(1, 0)
        pool.access(1, 1)
        pool.access(1, 0)  # refresh page 0
        pool.access(1, 2)  # should evict page 1, not 0
        assert pool.access(1, 0) is True

    def test_write_always_charges(self):
        pool, clock = self._pool()
        pool.write(1, 0)
        first = clock.now
        pool.write(1, 0)
        assert clock.now == pytest.approx(2 * first)

    def test_invalidate_owner(self):
        pool, __ = self._pool()
        pool.access(1, 0)
        pool.access(2, 0)
        pool.invalidate_owner(1)
        assert pool.access(2, 0) is True
        assert pool.access(1, 0) is False

    def test_hit_ratio(self):
        pool, __ = self._pool()
        assert pool.stats.hit_ratio == 0.0
        pool.access(1, 0)
        pool.access(1, 0)
        assert pool.stats.hit_ratio == pytest.approx(0.5)

    def test_invalid_capacity(self):
        clock = CostClock(CostParameters())
        with pytest.raises(ValueError):
            BufferPool(0, clock)


class TestTable:
    def test_append_and_geometry(self):
        table = Table("t", simple_schema(), page_size=4096)
        table.append_rows([(i, float(i), f"n{i}") for i in range(500)])
        assert table.row_count == 500
        assert table.page_count == simple_schema().page_count(500, 4096)
        assert table.total_bytes == 500 * simple_schema().row_bytes

    def test_arity_mismatch_raises(self):
        table = Table("t", simple_schema(), page_size=4096)
        with pytest.raises(StorageError):
            table.append_rows([(1, 2.0)])

    def test_iter_pages_covers_all_rows(self):
        table = Table("t", simple_schema(), page_size=4096)
        table.append_rows([(i, float(i), "x") for i in range(1000)])
        seen = sum(len(page) for page in table.iter_pages())
        assert seen == 1000
        sizes = [len(page) for page in table.iter_pages()]
        assert all(s == table.rows_per_page for s in sizes[:-1])

    def test_page_of_row(self):
        table = Table("t", simple_schema(), page_size=4096)
        table.append_rows([(i, float(i), "x") for i in range(300)])
        per = table.rows_per_page
        assert table.page_of_row(0) == 0
        assert table.page_of_row(per) == 1

    def test_truncate(self):
        table = Table("t", simple_schema(), page_size=4096)
        table.append_rows([(1, 1.0, "a")])
        table.truncate()
        assert table.row_count == 0


class TestIndex:
    def _table(self, n=1000):
        table = Table("t", simple_schema(), page_size=4096)
        table.append_rows([(i % 100, float(i), f"n{i}") for i in range(n)])
        return table

    def test_lookup_eq(self):
        table = self._table()
        index = build_index("ix", table, "id")
        matches = index.lookup_eq(42)
        assert len(matches) == 10
        assert all(table.rows[i][0] == 42 for i in matches)

    def test_lookup_eq_missing(self):
        index = build_index("ix", self._table(), "id")
        assert index.lookup_eq(1234) == []

    def test_lookup_range_inclusive_exclusive(self):
        table = self._table()
        index = build_index("ix", table, "id")
        inclusive = index.lookup_range(10, 12)
        assert {table.rows[i][0] for i in inclusive} == {10, 11, 12}
        exclusive = index.lookup_range(10, 12, low_inclusive=False, high_inclusive=False)
        assert {table.rows[i][0] for i in exclusive} == {11}

    def test_lookup_range_open_ended(self):
        table = self._table(100)
        index = build_index("ix", table, "id")
        assert len(index.lookup_range(None, None)) == 100
        low_only = index.lookup_range(95, None)
        assert all(table.rows[i][0] >= 95 for i in low_only)

    def test_empty_range(self):
        index = build_index("ix", self._table(), "id")
        assert index.lookup_range(50, 40) == []

    def test_geometry(self):
        index = build_index("ix", self._table(5000), "id")
        assert index.leaf_pages >= 1
        assert index.height >= 1
        assert index.leaf_pages_for(0) == 0
        assert index.leaf_pages_for(1) == 1

    def test_fetch_page_reads_clustered_vs_not(self):
        table = self._table()
        clustered = build_index("c", table, "id", clustered=True)
        unclustered = build_index("u", table, "value")
        seq, rand = clustered.fetch_page_reads(50)
        assert rand == 0 and seq >= 1
        seq2, rand2 = unclustered.fetch_page_reads(50)
        assert seq2 == 0 and rand2 == min(50, table.page_count)

    def test_unclustered_fetch_capped_at_table_pages(self):
        table = self._table()
        index = build_index("u", table, "value")
        __, rand = index.fetch_page_reads(10_000_000)
        assert rand == table.page_count

    def test_unknown_column_raises(self):
        with pytest.raises(StorageError):
            build_index("ix", self._table(), "missing")

    def test_rebuild_after_load(self):
        table = self._table(10)
        index = build_index("ix", table, "id")
        table.append_rows([(999, 0.0, "new")])
        index.rebuild()
        assert len(index.lookup_eq(999)) == 1


class TestCatalog:
    def test_create_and_lookup(self, catalog):
        table = catalog.create_table("t", simple_schema(), key_columns=["id"])
        assert "t" in catalog
        assert catalog.table("T") is table  # case-insensitive

    def test_duplicate_rejected(self, catalog):
        catalog.create_table("t", simple_schema())
        with pytest.raises(CatalogError):
            catalog.create_table("t", simple_schema())

    def test_unknown_key_column_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table("t", simple_schema(), key_columns=["nope"])

    def test_drop(self, catalog):
        catalog.create_table("t", simple_schema())
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_analyze_stores_stats(self, catalog):
        table = catalog.create_table("t", simple_schema(), key_columns=["id"])
        table.append_rows([(i, float(i), "x") for i in range(100)])
        stats = catalog.analyze("t")
        assert stats.row_count == 100
        assert catalog.stats_for("t").row_count == 100
        assert catalog.stats_for("t").column("id").is_key

    def test_stats_fallback_when_unanalyzed(self, catalog):
        catalog.create_table("t", simple_schema())
        stats = catalog.stats_for("t")
        assert stats.row_count > 0  # schema-only default
        assert stats.columns == {}

    def test_index_registration(self, catalog):
        table = catalog.create_table("t", simple_schema())
        table.append_rows([(i, float(i), "x") for i in range(10)])
        catalog.create_index("ix", "t", "id")
        assert catalog.index_on("t", "id") is not None
        assert catalog.index_on("t", "value") is None
        with pytest.raises(CatalogError):
            catalog.create_index("ix2", "t", "id")

    def test_is_key_column(self, catalog):
        catalog.create_table("t", simple_schema(), key_columns=["id"])
        assert catalog.is_key_column("t", "id")
        assert not catalog.is_key_column("t", "value")
        assert not catalog.is_key_column("t", "missing")


class TestTempTableManager:
    def _manager(self):
        config = EngineConfig()
        catalog = Catalog(config.page_size)
        clock = CostClock(config.cost)
        pool = BufferPool(config.buffer_pool_pages, clock)
        return TempTableManager(catalog, pool), catalog, clock

    def test_materialize_registers_and_charges(self):
        manager, catalog, clock = self._manager()
        rows = [(i, float(i), "x") for i in range(200)]
        table = manager.materialize(simple_schema(), rows)
        assert table.name in catalog
        assert table.row_count == 200
        assert clock.breakdown.write > 0

    def test_materialize_with_stats(self):
        manager, catalog, __ = self._manager()
        source = Table("src", simple_schema(), 4096)
        source.append_rows([(i, float(i), "x") for i in range(50)])
        stats = compute_table_stats(source)
        table = manager.materialize(simple_schema(), source.rows, stats=stats)
        assert catalog.stats_for(table.name).row_count == 50

    def test_create_empty_then_fill(self):
        manager, catalog, __ = self._manager()
        table = manager.create_empty(simple_schema())
        assert table.row_count == 0
        assert table.name in catalog
        table.append_rows([(1, 1.0, "a")])
        assert catalog.table(table.name).row_count == 1

    def test_names_are_unique(self):
        manager, __, __c = self._manager()
        names = {manager.next_name() for __ in range(10)}
        assert len(names) == 10

    def test_drop_all(self):
        manager, catalog, __ = self._manager()
        manager.materialize(simple_schema(), [])
        manager.create_empty(simple_schema())
        assert len(manager.active_names) == 2
        manager.drop_all()
        assert manager.active_names == []
        assert all(name not in catalog for name in ("__temp_1", "__temp_2"))
