"""A brute-force reference evaluator used as a correctness oracle.

Evaluates a bound :class:`~repro.plans.logical.LogicalQuery` the slow,
obviously-correct way: materialise the full cross product of the FROM
relations, filter by every predicate, then group/aggregate/sort/limit.
Executor and integration tests compare the engine's output against this.
"""

from __future__ import annotations

import itertools

from repro.engine.database import Database
from repro.plans.logical import (
    AggFunc,
    AggregateExpr,
    ColumnExpr,
    LogicalQuery,
)
from repro.storage.schema import Schema


def evaluate(db: Database, query: LogicalQuery) -> list[tuple]:
    """Evaluate ``query`` by brute force against the database's tables."""
    schema, rows = _cross_product(db, query)
    predicate_fns = [p.compile(schema) for p in query.predicates]
    survivors = [
        row for row in rows if all(fn(row) for fn in predicate_fns)
    ]
    if query.has_aggregates or query.group_by:
        result = _aggregate(schema, survivors, query)
        if query.having:
            out_schema = _output_schema(query)
            having_fns = [p.compile(out_schema) for p in query.having]
            result = [row for row in result if all(fn(row) for fn in having_fns)]
    else:
        exprs = [item.expr.compile(schema) for item in query.output]
        result = [tuple(fn(row) for fn in exprs) for row in survivors]
        if query.distinct:
            deduped = []
            seen = set()
            for row in result:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            result = deduped
    result = _order_and_limit(result, query)
    return result


def _output_schema(query: LogicalQuery):
    from repro.storage.schema import Column, DataType, Schema

    return Schema(Column(item.name, DataType.FLOAT) for item in query.output)


def _cross_product(db: Database, query: LogicalQuery):
    schemas = []
    table_rows = []
    for rel in query.relations:
        table = db.table(rel.table_name)
        schemas.append(table.schema.qualify(rel.alias))
        table_rows.append(table.rows)
    schema = schemas[0]
    for s in schemas[1:]:
        schema = schema.concat(s)
    rows = [
        tuple(itertools.chain.from_iterable(combo))
        for combo in itertools.product(*table_rows)
    ]
    return schema, rows


def _aggregate(schema: Schema, rows, query: LogicalQuery) -> list[tuple]:
    group_positions = [schema.index_of(c) for c in query.group_by]
    groups: dict[tuple, list] = {}
    for row in rows:
        groups.setdefault(tuple(row[p] for p in group_positions), []).append(row)
    if not query.group_by and not groups:
        groups[()] = []
    out = []
    for key, members in groups.items():
        record = []
        for item in query.output:
            if isinstance(item.expr, AggregateExpr):
                record.append(_agg_value(item.expr, schema, members))
            else:
                assert isinstance(item.expr, ColumnExpr)
                position = schema.index_of(item.expr.name)
                record.append(key[group_positions.index(position)])
        out.append(tuple(record))
    return out


def _agg_value(expr: AggregateExpr, schema: Schema, rows):
    if expr.func is AggFunc.COUNT:
        return len(rows)
    if not rows:
        return None
    fn = expr.arg.compile(schema)
    values = [fn(row) for row in rows]
    if expr.func is AggFunc.SUM:
        return sum(values)
    if expr.func is AggFunc.AVG:
        return sum(values) / len(values)
    if expr.func is AggFunc.MIN:
        return min(values)
    return max(values)


def _order_and_limit(rows: list[tuple], query: LogicalQuery) -> list[tuple]:
    if query.order_by:
        names = [item.name for item in query.output]
        for key in reversed(query.order_by):
            position = names.index(key.name)
            rows = sorted(rows, key=lambda r: r[position], reverse=not key.ascending)
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows
