"""Row-vs-batch execution parity suite.

The batch path's contract (see ``src/repro/executor/batch.py``) is that for
any plan it produces the same rows in the same order, the same cost-clock
charges (exactly, not approximately), the same buffer-pool behaviour and
the same observed statistics as the row path.  These tests enforce that
contract across random multi-join queries, every dynamic mode, weird batch
sizes, LIMIT, empty inputs, and a query that performs a mid-query plan
switch.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, DynamicMode, EngineConfig
from repro.engine.results import QueryResult
from repro.errors import ConfigError
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

from .test_random_queries import build_random_db, random_query

ALL_MODES = (
    DynamicMode.OFF,
    DynamicMode.MEMORY_ONLY,
    DynamicMode.PLAN_ONLY,
    DynamicMode.FULL,
)


def assert_parity(row_result: QueryResult, batch_result: QueryResult) -> None:
    """Assert exact row, cost-clock, buffer and event parity."""
    assert row_result.rows == batch_result.rows
    row_profile = row_result.profile
    batch_profile = batch_result.profile
    assert row_profile.breakdown == batch_profile.breakdown
    assert row_profile.total_cost == batch_profile.total_cost
    assert row_profile.buffer == batch_profile.buffer
    assert row_profile.plan_switches == batch_profile.plan_switches
    assert row_profile.memory_reallocations == batch_profile.memory_reallocations
    assert row_profile.collectors_inserted == batch_profile.collectors_inserted


def run_both(db: Database, sql: str, mode: DynamicMode, params=None):
    row_result = db.execute(sql, params=params, mode=mode, execution_mode="row")
    batch_result = db.execute(sql, params=params, mode=mode, execution_mode="batch")
    return row_result, batch_result


def parity_db(seed: int, tables: int = 3) -> Database:
    """Parity asserts bit-identical repeat executions on one engine; the
    cross-query feedback loop deliberately changes later runs, so pin it off
    regardless of a ``REPRO_FEEDBACK=1`` suite leg."""
    return build_random_db(
        seed, tables, config=EngineConfig(feedback_enabled=False)
    )


class TestRandomQueryParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_rows_costs_and_events_match(self, seed):
        db = parity_db(seed)
        rng = random.Random(seed * 17 + 1)
        sql = random_query(rng)
        for mode in ALL_MODES:
            row_result, batch_result = run_both(db, sql, mode)
            assert_parity(row_result, batch_result)

    @pytest.mark.parametrize("seed", [2, 5])
    def test_with_indexes(self, seed):
        db = parity_db(seed, tables=4)
        for i in range(1, 4):
            db.create_index(f"ix_t{i}", f"t{i}", f"t{i - 1}_k")
        rng = random.Random(seed + 41)
        sql = random_query(rng, tables=4)
        for mode in (DynamicMode.OFF, DynamicMode.FULL):
            row_result, batch_result = run_both(db, sql, mode)
            assert_parity(row_result, batch_result)

    def test_distinct_and_order_by(self):
        db = parity_db(3)
        sql = (
            "SELECT DISTINCT t0.v, t1.v FROM t0, t1 "
            "WHERE t1.t0_k = t0.k ORDER BY t0.v, t1.v"
        )
        for mode in ALL_MODES:
            row_result, batch_result = run_both(db, sql, mode)
            assert_parity(row_result, batch_result)

    def test_limit_keeps_early_termination_charges(self):
        db = parity_db(4)
        sql = "SELECT t0.v one FROM t0 WHERE t0.v < 12 LIMIT 5"
        for mode in (DynamicMode.OFF, DynamicMode.FULL):
            row_result, batch_result = run_both(db, sql, mode)
            assert len(batch_result.rows) <= 5
            assert_parity(row_result, batch_result)

    def test_empty_input(self):
        db = Database()
        from repro import DataType

        db.create_table("e", [("k", DataType.INTEGER), ("v", DataType.INTEGER)])
        db.analyze()
        for sql in (
            "SELECT v FROM e WHERE v < 3",
            "SELECT v, count(*) n FROM e GROUP BY v",
            "SELECT count(*) n FROM e",
        ):
            row_result, batch_result = run_both(db, sql, DynamicMode.FULL)
            assert_parity(row_result, batch_result)


class TestBatchSizeInsensitivity:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 100_000])
    def test_any_batch_size_matches_row_path(self, batch_size):
        db = Database(EngineConfig(batch_size=batch_size))
        rng = random.Random(99)
        from repro import DataType

        db.create_table("t0", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], key=["k"])
        db.create_table(
            "t1",
            [("k", DataType.INTEGER), ("t0_k", DataType.INTEGER), ("v", DataType.INTEGER)],
            key=["k"],
        )
        db.load_rows("t0", [(k, rng.randrange(10)) for k in range(200)])
        db.load_rows("t1", [(k, rng.randrange(200), rng.randrange(10)) for k in range(500)])
        db.analyze()
        sql = (
            "SELECT t0.v, count(*) n FROM t0, t1 "
            "WHERE t1.t0_k = t0.k AND t1.v < 7 GROUP BY t0.v"
        )
        row_result, batch_result = run_both(db, sql, DynamicMode.FULL)
        assert_parity(row_result, batch_result)


class TestObservedStatisticsParity:
    def _run_collect(self, db: Database, plan, execution_mode: str):
        config = db.config.with_updates(execution_mode=execution_mode)
        clock = CostClock(config.cost)
        pool = BufferPool(config.buffer_pool_pages, clock)
        ctx = RuntimeContext(
            catalog=db.catalog,
            config=config,
            clock=clock,
            buffer_pool=pool,
            temp_manager=TempTableManager(db.catalog, pool),
            cost_model=CostModel(config),
        )
        Dispatcher(ctx).run(plan)
        return ctx.observed

    def test_collectors_observe_identical_statistics(self):
        db = parity_db(6)
        sql = (
            "SELECT t0.v, count(*) n FROM t0, t1, t2 "
            "WHERE t1.t0_k = t0.k AND t2.t1_k = t1.k AND t0.v < 10 "
            "GROUP BY t0.v"
        )
        plan, scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        assert scia is not None and scia.collector_points > 0
        row_observed = self._run_collect(db, plan, "row")
        batch_observed = self._run_collect(db, plan, "batch")
        assert set(row_observed) == set(batch_observed)
        assert row_observed, "expected at least one completed collector"
        for node_id, row_stats in row_observed.items():
            batch_stats = batch_observed[node_id]
            assert row_stats.row_count == batch_stats.row_count
            assert row_stats.row_bytes == batch_stats.row_bytes
            assert dict(row_stats.minmax) == dict(batch_stats.minmax)
            assert dict(row_stats.distincts) == dict(batch_stats.distincts)
            assert set(row_stats.histograms) == set(batch_stats.histograms)
            for column, row_hist in row_stats.histograms.items():
                batch_hist = batch_stats.histograms[column]
                assert row_hist.kind == batch_hist.kind
                assert row_hist.buckets == batch_hist.buckets


class TestPlanSwitchParity:
    @pytest.fixture(scope="class")
    def underestimate_db(self):
        # Cold-optimizer misestimates must repeat identically run to run.
        db = Database(EngineConfig(feedback_enabled=False))
        build_running_example(
            db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
        )
        return db

    PARAMS = {"value1": 80, "value2": 80}

    def test_mid_query_switch_is_identical(self, underestimate_db):
        row_result, batch_result = run_both(
            underestimate_db, RUNNING_EXAMPLE_SQL, DynamicMode.FULL, self.PARAMS
        )
        assert batch_result.profile.plan_switches >= 1
        assert_parity(row_result, batch_result)
        assert (
            row_result.profile.remainder_sqls == batch_result.profile.remainder_sqls
        )

    def test_switch_parity_in_plan_only_mode(self, underestimate_db):
        row_result, batch_result = run_both(
            underestimate_db, RUNNING_EXAMPLE_SQL, DynamicMode.PLAN_ONLY, self.PARAMS
        )
        assert batch_result.profile.plan_switches >= 1
        assert_parity(row_result, batch_result)


class TestConfigKnobs:
    def test_batch_is_the_default(self, monkeypatch):
        # The env override exists so CI can re-run the whole suite under
        # another executor; absent it, batch is the documented default.
        monkeypatch.delenv("REPRO_EXECUTION_MODE", raising=False)
        assert EngineConfig().execution_mode == "batch"

    def test_execution_mode_validated(self):
        with pytest.raises(ConfigError):
            EngineConfig(execution_mode="vector").validate()

    def test_batch_size_validated(self):
        with pytest.raises(ConfigError):
            EngineConfig(batch_size=0).validate()
