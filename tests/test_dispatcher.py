"""Tests for the dispatcher's plan-switch handling and runtime context."""

import pytest

from repro import Database, DynamicMode
from repro.errors import ExecutionError
from repro.executor.dispatcher import Dispatcher
from repro.executor.iterators import execute_node
from repro.executor.runtime import PlanSwitchDirective, RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager

from .conftest import make_two_table_db


def make_ctx(db):
    clock = CostClock(db.config.cost)
    pool = BufferPool(db.config.buffer_pool_pages, clock)
    return RuntimeContext(
        catalog=db.catalog,
        config=db.config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(db.config),
    )


class TestRuntimeContext:
    def test_memory_for_defaults_to_max(self, two_table_db):
        plan, __, __o = two_table_db.plan(
            "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id",
            mode=DynamicMode.OFF,
        )
        ctx = make_ctx(two_table_db)
        join = next(n for n in plan.walk() if n.est.max_memory_pages > 0)
        assert ctx.memory_for(join) == join.est.max_memory_pages
        ctx.allocation[join.node_id] = 5
        assert ctx.memory_for(join) == 5

    def test_commit_memory_pins(self, two_table_db):
        plan, __, __o = two_table_db.plan(
            "SELECT r1.a one FROM r1, r2 WHERE r1.id = r2.r1_id",
            mode=DynamicMode.OFF,
        )
        ctx = make_ctx(two_table_db)
        join = next(n for n in plan.walk() if n.est.max_memory_pages > 0)
        ctx.allocation[join.node_id] = 7
        assert ctx.commit_memory(join) == 7
        assert join.node_id in ctx.memory_committed

    def test_switch_registration(self, two_table_db):
        ctx = make_ctx(two_table_db)
        plan, __, __o = two_table_db.plan("SELECT a FROM r1", mode=DynamicMode.OFF)
        temp = ctx.temp_manager.create_empty(plan.schema)
        directive = PlanSwitchDirective(
            cut_node_id=1, temp_table=temp, new_plan=plan,
            new_allocation={}, remainder_sql="SELECT 1 one FROM x",
        )
        ctx.request_switch(directive)
        # A second pending switch is rejected.
        with pytest.raises(ExecutionError):
            ctx.request_switch(directive)
        # Wrong node id does not claim it.
        assert ctx.take_switch_for(999) is None
        # The right one does, exactly once.
        assert ctx.take_switch_for(1) is directive
        assert ctx.take_switch_for(1) is None

    def test_tracking_counts_rows(self, two_table_db):
        plan, __, __o = two_table_db.plan(
            "SELECT a FROM r1 WHERE a < 10", mode=DynamicMode.OFF
        )
        ctx = make_ctx(two_table_db)
        rows = list(execute_node(plan, ctx))
        assert ctx.actual_rows[plan.node_id] == len(rows)
        assert plan.node_id in ctx.completed
        for node in plan.walk():
            assert node.node_id in ctx.started


class TestDispatcher:
    def test_plain_run(self, two_table_db):
        plan, __, __o = two_table_db.plan(
            "SELECT a, count(*) n FROM r1 GROUP BY a", mode=DynamicMode.OFF
        )
        ctx = make_ctx(two_table_db)
        outcome = Dispatcher(ctx).run(plan)
        assert outcome.final_plan is plan
        assert outcome.plan_history == [plan]
        assert outcome.switch_events == []
        assert len(outcome.rows) > 0

    def test_controller_notified_of_plan(self, two_table_db):
        plan, __, __o = two_table_db.plan("SELECT a FROM r1", mode=DynamicMode.OFF)
        ctx = make_ctx(two_table_db)

        class Recorder:
            seen = None

            def set_current_plan(self, p):
                self.seen = p

            def on_collector_complete(self, node, observed):
                pass

        recorder = Recorder()
        ctx.controller = recorder
        Dispatcher(ctx).run(plan)
        assert recorder.seen is plan
