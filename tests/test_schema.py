"""Tests for repro.storage.schema."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CatalogError
from repro.storage.schema import (
    Column,
    DataType,
    ROW_HEADER_BYTES,
    Schema,
    date_to_int,
    int_to_date,
)


class TestDataType:
    def test_default_widths(self):
        assert DataType.INTEGER.default_width == 4
        assert DataType.DATE.default_width == 4
        assert DataType.FLOAT.default_width == 8
        assert DataType.STRING.default_width == 16

    def test_numeric_classification(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert DataType.DATE.is_numeric
        assert not DataType.STRING.is_numeric


class TestDates:
    def test_roundtrip(self):
        assert int_to_date(date_to_int("1998-09-02")) == "1998-09-02"

    def test_ordering_matches_calendar(self):
        assert date_to_int("1994-01-01") < date_to_int("1995-01-01")

    def test_invalid_date_raises(self):
        with pytest.raises(ValueError):
            date_to_int("not-a-date")

    @given(st.integers(min_value=1, max_value=3_000_000))
    def test_roundtrip_property(self, ordinal):
        assert date_to_int(int_to_date(ordinal)) == ordinal


class TestColumn:
    def test_default_width_applied(self):
        col = Column("x", DataType.FLOAT)
        assert col.width == 8

    def test_explicit_width_kept(self):
        col = Column("x", DataType.STRING, width=40)
        assert col.width == 40

    def test_base_name_strips_qualifier(self):
        assert Column("t.x", DataType.INTEGER).base_name == "x"
        assert Column("x", DataType.INTEGER).base_name == "x"

    def test_qualified(self):
        col = Column("x", DataType.INTEGER).qualified("t")
        assert col.name == "t.x"
        # Re-qualifying replaces the qualifier rather than nesting.
        assert col.qualified("u").name == "u.x"


class TestSchema:
    def _schema(self):
        return Schema(
            [
                Column("id", DataType.INTEGER),
                Column("value", DataType.FLOAT),
                Column("name", DataType.STRING),
            ]
        )

    def test_len_and_names(self):
        schema = self._schema()
        assert len(schema) == 3
        assert schema.names == ("id", "value", "name")

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([Column("x", DataType.INTEGER), Column("x", DataType.FLOAT)])

    def test_index_of_bare_and_qualified(self):
        schema = self._schema().qualify("t")
        assert schema.index_of("t.value") == 1
        assert schema.index_of("value") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(CatalogError):
            self._schema().index_of("missing")

    def test_ambiguous_bare_name_raises(self):
        schema = self._schema().qualify("a").concat(self._schema().qualify("b"))
        with pytest.raises(CatalogError):
            schema.index_of("id")
        assert schema.index_of("a.id") == 0
        assert schema.index_of("b.id") == 3

    def test_row_bytes_includes_header(self):
        schema = self._schema()
        assert schema.row_bytes == ROW_HEADER_BYTES + 4 + 8 + 16

    def test_rows_per_page_at_least_one(self):
        wide = Schema([Column("s", DataType.STRING, width=10_000)])
        assert wide.rows_per_page(4096) == 1

    def test_page_count(self):
        schema = self._schema()
        per_page = schema.rows_per_page(4096)
        assert schema.page_count(0, 4096) == 0
        assert schema.page_count(1, 4096) == 1
        assert schema.page_count(per_page, 4096) == 1
        assert schema.page_count(per_page + 1, 4096) == 2

    def test_concat(self):
        left = self._schema().qualify("a")
        right = self._schema().qualify("b")
        joined = left.concat(right)
        assert len(joined) == 6
        assert joined.names[:3] == left.names

    def test_project(self):
        schema = self._schema()
        projected = schema.project(["name", "id"])
        assert projected.names == ("name", "id")

    def test_renamed(self):
        schema = self._schema()
        renamed = schema.renamed({"id": "t__id"})
        assert renamed.names == ("t__id", "value", "name")
        # dtypes preserved
        assert renamed.column("t__id").dtype is DataType.INTEGER

    def test_has_column(self):
        schema = self._schema().qualify("t")
        assert schema.has_column("t.id")
        assert schema.has_column("id")
        assert not schema.has_column("nope")

    def test_equality(self):
        assert self._schema() == self._schema()
        assert self._schema() != self._schema().qualify("t")

    @given(st.integers(min_value=1, max_value=100_000))
    def test_page_count_covers_all_rows(self, rows):
        schema = self._schema()
        pages = schema.page_count(rows, 4096)
        assert pages * schema.rows_per_page(4096) >= rows
        # And not excessively: one fewer page would not fit.
        assert (pages - 1) * schema.rows_per_page(4096) < rows
