"""End-to-end tests of Dynamic Re-Optimization on the paper's running example."""

import pytest

from repro import Database, DynamicMode, EngineConfig
from repro.bench.harness import rows_equivalent
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

SMALL = SyntheticConfig(rel1_rows=8000, rel2_rows=2000, rel3_rows=24_000)


@pytest.fixture(scope="module")
def underestimate_db():
    """Correlated selection attributes: the optimizer under-estimates.
    Feedback stays off so the misestimate (and its switch) repeats for
    every test sharing the module fixture."""
    db = Database(EngineConfig(feedback_enabled=False))
    build_running_example(
        db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
    )
    return db


class TestPlanModification:
    PARAMS = {"value1": 80, "value2": 80}  # actual sel ~0.8, estimated 1/9

    def test_switch_fires_and_improves(self, underestimate_db):
        db = underestimate_db
        off = db.execute(RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.OFF)
        full = db.execute(RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.FULL)
        assert full.profile.plan_switches >= 1
        assert full.profile.total_cost < off.profile.total_cost
        assert rows_equivalent(off.rows, full.rows)

    def test_plan_only_equals_full_here(self, underestimate_db):
        db = underestimate_db
        plan_only = db.execute(
            RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.PLAN_ONLY
        )
        assert plan_only.profile.plan_switches >= 1

    def test_remainder_sql_references_temp_table(self, underestimate_db):
        db = underestimate_db
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.FULL
        )
        assert result.profile.remainder_sqls
        assert "__temp_" in result.profile.remainder_sqls[0]
        assert "rel3" in result.profile.remainder_sqls[0]

    def test_temp_tables_cleaned_up(self, underestimate_db):
        db = underestimate_db
        db.execute(RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.FULL)
        leftovers = [n for n in db.catalog.table_names if n.startswith("__temp")]
        assert leftovers == []

    def test_plan_history_records_switch(self, underestimate_db):
        db = underestimate_db
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.FULL
        )
        assert len(result.profile.plan_explanations) == 1 + result.profile.plan_switches

    def test_optimizer_invoked_again_on_switch(self, underestimate_db):
        db = underestimate_db
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.FULL
        )
        assert result.profile.optimizer_invocations >= 2
        assert result.profile.breakdown.optimizer > 0

    def test_no_switch_when_estimates_accurate(self, underestimate_db):
        # A single literal predicate: the MaxDiff histogram estimates it
        # accurately (no correlation involved), drift stays under theta2,
        # so no re-optimization fires.
        db = underestimate_db
        sql = (
            "SELECT avg(rel1.selectattr1), rel1.groupattr "
            "FROM rel1, rel2, rel3 "
            "WHERE rel1.selectattr1 < 50 "
            "AND rel1.joinattr2 = rel2.joinattr2 "
            "AND rel1.joinattr3 = rel3.joinattr3 "
            "GROUP BY rel1.groupattr"
        )
        result = db.execute(sql, mode=DynamicMode.FULL)
        assert result.profile.plan_switches == 0

    def test_off_mode_never_switches(self, underestimate_db):
        db = underestimate_db
        result = db.execute(
            RUNNING_EXAMPLE_SQL, params=self.PARAMS, mode=DynamicMode.OFF
        )
        assert result.profile.plan_switches == 0
        assert result.profile.collectors_inserted == 0
        assert result.profile.breakdown.stats_cpu == 0.0


class TestMemoryReallocation:
    """The Figure 3 scenario: anti-correlated predicates over-estimate the
    filter output; observation lets the Memory Manager upgrade the second
    join to a one-pass grant."""

    SQL = (
        "SELECT avg(rel1.selectattr1), avg(rel1.selectattr2), rel1.groupattr "
        "FROM rel1, rel2, rel3 "
        "WHERE rel1.selectattr1 < 60 AND rel1.selectattr2 < 60 "
        "AND rel1.joinattr2 = rel2.joinattr2 "
        "AND rel1.joinattr3 = rel3.joinattr3 "
        "GROUP BY rel1.groupattr"
    )

    @pytest.fixture(scope="class")
    def db(self):
        db = Database(EngineConfig().with_updates(query_memory_pages=210))
        build_running_example(
            db,
            SyntheticConfig(
                rel1_rows=20_000, rel2_rows=8_000, rel3_rows=60_000,
                correlation=-1.0, index_rel3=False,
            ),
        )
        return db

    def test_reallocation_removes_spill(self, db):
        off = db.execute(self.SQL, mode=DynamicMode.OFF)
        memory = db.execute(self.SQL, mode=DynamicMode.MEMORY_ONLY)
        assert memory.profile.memory_reallocations >= 1
        assert off.profile.breakdown.write > 0
        assert memory.profile.breakdown.write == 0.0
        assert memory.profile.total_cost < off.profile.total_cost
        assert rows_equivalent(off.rows, memory.rows)

    def test_memory_only_never_switches_plans(self, db):
        memory = db.execute(self.SQL, mode=DynamicMode.MEMORY_ONLY)
        assert memory.profile.plan_switches == 0

    def test_committed_grants_are_never_changed(self, db):
        # Indirect check: results stay correct and no MemoryGrantError leaks.
        result = db.execute(self.SQL, mode=DynamicMode.FULL)
        assert result.rows


class TestModeEquivalence:
    """All four modes must return the same rows for a battery of queries."""

    QUERIES = [
        ("SELECT rel1.groupattr, count(*) n FROM rel1, rel2 "
         "WHERE rel1.joinattr2 = rel2.joinattr2 AND rel1.selectattr1 < :v "
         "GROUP BY rel1.groupattr", {"v": 70}),
        ("SELECT avg(rel3.attr3c) m FROM rel1, rel3 "
         "WHERE rel1.joinattr3 = rel3.joinattr3 AND rel1.selectattr2 < 30", None),
        (RUNNING_EXAMPLE_SQL, {"value1": 90, "value2": 90}),
        ("SELECT rel1.groupattr, min(rel1.selectattr1) lo, max(rel2.attr2a) hi "
         "FROM rel1, rel2, rel3 "
         "WHERE rel1.joinattr2 = rel2.joinattr2 AND rel1.joinattr3 = rel3.joinattr3 "
         "AND rel2.attr2a < 800 GROUP BY rel1.groupattr ORDER BY groupattr LIMIT 7",
         None),
    ]

    @pytest.fixture(scope="class")
    def db(self):
        db = Database(EngineConfig().with_updates(query_memory_pages=128))
        build_running_example(db, SMALL)
        return db

    @pytest.mark.parametrize("sql,params", QUERIES)
    def test_same_rows_across_modes(self, db, sql, params):
        baseline = db.execute(sql, params=params, mode=DynamicMode.OFF)
        for mode in (DynamicMode.MEMORY_ONLY, DynamicMode.PLAN_ONLY, DynamicMode.FULL):
            other = db.execute(sql, params=params, mode=mode)
            if sql.strip().endswith("LIMIT 7"):
                # LIMIT without a full ORDER BY key set can tie-break
                # differently; compare as sets of the ordered prefix length.
                assert len(other.rows) == len(baseline.rows)
            else:
                assert rows_equivalent(baseline.rows, other.rows), mode


class TestOverheadBound:
    """The mu parameter bounds statistics-collection overhead (section 3.2)."""

    def test_overhead_within_tolerance(self):
        db = Database()
        build_running_example(db, SMALL)
        sql = (
            "SELECT rel1.groupattr, count(*) n FROM rel1, rel2 "
            "WHERE rel1.joinattr2 = rel2.joinattr2 GROUP BY rel1.groupattr"
        )
        off = db.execute(sql, mode=DynamicMode.OFF)
        full = db.execute(sql, mode=DynamicMode.FULL)
        if full.profile.plan_switches == 0 and full.profile.memory_reallocations == 0:
            overhead = (
                full.profile.total_cost - off.profile.total_cost
            ) / off.profile.total_cost
            # mu = 0.05 plus slack for estimation error in the SCIA budget.
            assert overhead <= 0.10

    def test_simple_query_pays_nothing(self):
        db = Database()
        build_running_example(db, SMALL)
        sql = "SELECT groupattr, count(*) n FROM rel1 GROUP BY groupattr"
        full = db.execute(sql, mode=DynamicMode.FULL)
        assert full.profile.collectors_inserted == 0
        assert full.profile.breakdown.stats_cpu == 0.0
