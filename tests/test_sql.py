"""Tests for the SQL front end: lexer, parser, binder, deparser."""

import pytest

from repro.errors import BindError, LexerError, ParseError
from repro.plans.logical import (
    AggFunc,
    AggregateExpr,
    ColumnExpr,
    CompareOp,
    Comparison,
    ConstExpr,
    FuncExpr,
    InPredicate,
    NotPredicate,
    OrPredicate,
)
from repro.sql import bind, deparse, parse, tokenize
from repro.sql.lexer import TokenType
from repro.storage.schema import date_to_int

from .conftest import make_two_table_db


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens[:-1])

    def test_identifiers_and_symbols(self):
        tokens = tokenize("foo.bar <= 3")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.IDENT,
            TokenType.SYMBOL,
            TokenType.IDENT,
            TokenType.SYMBOL,
            TokenType.NUMBER,
            TokenType.EOF,
        ]

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].value == "42"
        assert tokens[1].value == "3.14"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_parameter(self):
        tokens = tokenize(":value1")
        assert tokens[0].type is TokenType.PARAM
        assert tokens[0].value == "value1"

    def test_parameter_requires_name(self):
        with pytest.raises(LexerError):
            tokenize(": 5")

    def test_not_equal_variants(self):
        assert tokenize("a <> b")[1].value == "<>"
        assert tokenize("a != b")[1].value == "<>"

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert tokens[1].type is TokenType.NUMBER

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")


class TestParser:
    def test_basic_select(self):
        stmt = parse("SELECT a, b FROM t WHERE a = 1")
        assert len(stmt.items) == 2
        assert stmt.tables[0].name == "t"
        assert stmt.where is not None

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select_star

    def test_aliases(self):
        stmt = parse("SELECT t.a AS x, b y FROM tbl AS t, other o")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.tables[0].alias == "t"
        assert stmt.tables[1].alias == "o"

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT a, count(*) FROM t GROUP BY a ORDER BY a DESC LIMIT 7"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 7

    def test_between_and_in(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)")
        assert stmt.where is not None

    def test_date_literal(self):
        stmt = parse("SELECT a FROM t WHERE a < DATE '1995-03-15'")
        comparison = stmt.where
        assert comparison.right.value == date_to_int("1995-03-15")

    def test_invalid_date(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE a < DATE 'xxx'")

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized_condition(self):
        stmt = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where is not None

    def test_aggregates(self):
        stmt = parse("SELECT sum(a), count(*), avg(a * 2) FROM t")
        assert stmt.items[0].expr.func == "sum"
        assert stmt.items[1].expr.arg is None

    def test_count_star_only(self):
        with pytest.raises(ParseError):
            parse("SELECT sum(*) FROM t")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra ,")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT a WHERE a = 1")

    def test_not_condition(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert stmt.where is not None

    def test_function_call(self):
        stmt = parse("SELECT a FROM t WHERE dist(a, 5) < 2")
        assert stmt.where.left.name == "dist"

    def test_negative_numbers(self):
        stmt = parse("SELECT a FROM t WHERE a > -5")
        assert stmt.where is not None


class TestBinder:
    def test_resolves_columns(self, two_table_db):
        query = two_table_db.bind_sql("SELECT r1.a FROM r1")
        assert query.output[0].expr.name == "r1.a"

    def test_bare_column_resolution(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1")
        assert query.output[0].expr.name == "r1.a"

    def test_ambiguous_column_rejected(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT id FROM r1, r2")

    def test_unknown_table(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT x FROM missing")

    def test_unknown_column(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT nope FROM r1")

    def test_duplicate_alias_rejected(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT 1 one FROM r1 x, r2 x")

    def test_conjunct_flattening(self, two_table_db):
        query = two_table_db.bind_sql(
            "SELECT r1.a FROM r1 WHERE a < 5 AND b > 2 AND a <> 3"
        )
        assert len(query.predicates) == 3

    def test_between_split_into_two_comparisons(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE a BETWEEN 2 AND 8")
        assert len(query.predicates) == 2
        ops = {p.op for p in query.predicates}
        assert ops == {CompareOp.GE, CompareOp.LE}

    def test_or_kept_as_one_conjunct(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE a = 1 OR a = 2 OR a = 3")
        assert len(query.predicates) == 1
        assert isinstance(query.predicates[0], OrPredicate)
        assert len(query.predicates[0].children) == 3

    def test_not_predicate(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE NOT a = 1")
        assert isinstance(query.predicates[0], NotPredicate)

    def test_in_predicate(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE a IN (1, 2, 3)")
        pred = query.predicates[0]
        assert isinstance(pred, InPredicate)
        assert pred.values == (1, 2, 3)

    def test_in_requires_constants(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT a FROM r1 WHERE a IN (b, 2)")

    def test_parameter_substitution_marks_predicate(self, two_table_db):
        query = two_table_db.bind_sql(
            "SELECT a FROM r1 WHERE a < :limit", params={"limit": 9}
        )
        pred = query.predicates[0]
        assert isinstance(pred, Comparison)
        assert pred.is_parameter_based
        assert isinstance(pred.right, ConstExpr) and pred.right.value == 9

    def test_missing_parameter(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT a FROM r1 WHERE a < :limit")

    def test_normalization_const_on_left(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE 5 > a")
        pred = query.predicates[0]
        assert isinstance(pred.left, ColumnExpr)
        assert pred.op is CompareOp.LT

    def test_aggregate_validation(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT b, sum(a) FROM r1 GROUP BY a")
        query = two_table_db.bind_sql("SELECT a, sum(b) FROM r1 GROUP BY a")
        assert query.has_aggregates

    def test_aggregate_not_allowed_in_where(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT a FROM r1 WHERE sum(a) > 5")

    def test_udf_resolution(self, two_table_db):
        two_table_db.register_udf("double_it", lambda x: 2 * x)
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE double_it(a) > 10")
        assert query.predicates[0].contains_function()

    def test_unknown_udf(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT a FROM r1 WHERE nope(a) > 10")

    def test_constant_folding(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a FROM r1 WHERE a < 2 + 3")
        assert isinstance(query.predicates[0].right, ConstExpr)
        assert query.predicates[0].right.value == 5

    def test_order_by_alias_and_column(self, two_table_db):
        query = two_table_db.bind_sql(
            "SELECT a AS alpha, sum(b) AS total FROM r1 GROUP BY a ORDER BY total DESC, alpha"
        )
        assert query.order_by[0].name == "total"
        assert not query.order_by[0].ascending
        assert query.order_by[1].name == "alpha"

    def test_order_by_unknown_key(self, two_table_db):
        with pytest.raises(BindError):
            two_table_db.bind_sql("SELECT a FROM r1 ORDER BY b")

    def test_select_star_expansion(self, two_table_db):
        query = two_table_db.bind_sql("SELECT * FROM r1")
        assert len(query.output) == 3

    def test_output_name_uniquing(self, two_table_db):
        query = two_table_db.bind_sql("SELECT a, a FROM r1")
        names = [item.name for item in query.output]
        assert len(set(names)) == 2

    def test_join_count(self, two_table_db):
        query = two_table_db.bind_sql("SELECT r1.a FROM r1, r2 WHERE r1.id = r2.r1_id")
        assert query.join_count == 1
        assert len(query.join_predicates()) == 1
        assert query.selection_predicates("r1") == []


class TestDeparser:
    ROUND_TRIP_QUERIES = [
        "SELECT r1.a FROM r1",
        "SELECT r1.a, r2.c FROM r1, r2 WHERE r1.id = r2.r1_id",
        "SELECT a, sum(b) AS total FROM r1 GROUP BY a ORDER BY total DESC LIMIT 3",
        "SELECT a FROM r1 WHERE a BETWEEN 2 AND 8 AND b <> 3",
        "SELECT a FROM r1 WHERE a = 1 OR a = 2",
        "SELECT a FROM r1 WHERE NOT (a = 1 OR b = 2)",
        "SELECT a FROM r1 WHERE a IN (1, 2, 3)",
        "SELECT avg(a * 2 + 1) one FROM r1",
        "SELECT count(*) n FROM r1 WHERE b > 10",
    ]

    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_round_trip_is_stable(self, two_table_db, sql):
        """bind -> deparse -> bind -> deparse must reach a fixed point."""
        query1 = two_table_db.bind_sql(sql)
        text1 = deparse(query1)
        query2 = two_table_db.bind_sql(text1)
        text2 = deparse(query2)
        assert text1 == text2

    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_round_trip_preserves_results(self, two_table_db, sql):
        """Executing the deparsed query must give the original's rows."""
        from repro.core.modes import DynamicMode

        original = two_table_db.execute(sql, mode=DynamicMode.OFF)
        rebound = deparse(two_table_db.bind_sql(sql))
        again = two_table_db.execute(rebound, mode=DynamicMode.OFF)
        assert sorted(map(str, original.rows)) == sorted(map(str, again.rows))

    def test_string_literal_escaping(self, two_table_db):
        expr = ConstExpr("it's")
        assert expr.sql() == "'it''s'"
