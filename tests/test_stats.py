"""Tests for the statistics substrate: sampling, sketches, Zipf, table stats."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StatisticsError
from repro.stats import (
    ExactDistinct,
    FlajoletMartin,
    Reservoir,
    ZipfGenerator,
    compute_column_stats,
    compute_table_stats,
    schema_only_stats,
)
from repro.stats.histogram import HistogramKind
from repro.storage import Column, DataType, Schema, Table


class TestReservoir:
    def test_small_input_is_exhaustive(self):
        res = Reservoir(100, seed=1)
        res.extend(range(50))
        assert res.is_exhaustive
        assert sorted(res.sample) == list(range(50))

    def test_capacity_respected(self):
        res = Reservoir(10, seed=1)
        res.extend(range(10_000))
        assert len(res) == 10
        assert not res.is_exhaustive
        assert res.seen == 10_000

    def test_scale_factor(self):
        res = Reservoir(10, seed=1)
        assert res.scale_factor() == 0.0
        res.extend(range(100))
        assert res.scale_factor() == pytest.approx(10.0)

    def test_sample_is_subset_of_input(self):
        res = Reservoir(20, seed=2)
        values = [random.Random(5).randrange(1000) for __ in range(500)]
        res.extend(values)
        assert set(res.sample) <= set(values)

    def test_uniformity_statistical(self):
        # Each of 1000 items should land in a 100-slot reservoir w.p. ~0.1;
        # count how often item 0 is sampled over repeated runs.
        hits = 0
        runs = 300
        for seed in range(runs):
            res = Reservoir(100, seed=seed)
            res.extend(range(1000))
            if 0 in res.sample:
                hits += 1
        assert 0.05 < hits / runs < 0.16

    def test_invalid_capacity(self):
        with pytest.raises(StatisticsError):
            Reservoir(0)

    @given(st.lists(st.integers(), max_size=300), st.integers(min_value=1, max_value=50))
    def test_sample_size_invariant(self, values, capacity):
        res = Reservoir(capacity, seed=7)
        res.extend(values)
        assert len(res) == min(capacity, len(values))


class TestDistinct:
    def test_exact(self):
        counter = ExactDistinct()
        counter.extend([1, 1, 2, 3, 3, 3])
        assert counter.estimate() == 3.0

    def test_fm_empty(self):
        assert FlajoletMartin(seed=1).estimate() < 150

    def test_fm_accuracy(self):
        for true_count in (100, 1000, 10_000):
            sketch = FlajoletMartin(num_maps=64, seed=3)
            sketch.extend(range(true_count))
            estimate = sketch.estimate()
            assert 0.5 * true_count < estimate < 2.0 * true_count, (
                true_count,
                estimate,
            )

    def test_fm_duplicates_do_not_inflate(self):
        sketch = FlajoletMartin(seed=4)
        for __ in range(10):
            sketch.extend(range(500))
        single = FlajoletMartin(seed=4)
        single.extend(range(500))
        assert sketch.estimate() == pytest.approx(single.estimate())

    def test_fm_deterministic_given_seed(self):
        a = FlajoletMartin(seed=9)
        b = FlajoletMartin(seed=9)
        a.extend(range(1000))
        b.extend(range(1000))
        assert a.estimate() == b.estimate()

    def test_fm_invalid_maps(self):
        with pytest.raises(StatisticsError):
            FlajoletMartin(num_maps=0)

    def test_fm_mixed_types(self):
        sketch = FlajoletMartin(seed=2)
        sketch.extend(["a", "b", 1, 2.5, ("t", 1)])
        assert sketch.estimate() > 0


class TestZipf:
    def test_uniform_when_z_zero(self):
        gen = ZipfGenerator(10, 0.0, seed=1)
        probs = gen.probabilities()
        assert probs == pytest.approx([0.1] * 10)

    def test_skew_orders_probabilities(self):
        gen = ZipfGenerator(100, 1.0, seed=1)
        probs = gen.probabilities()
        assert probs[0] > probs[1] > probs[50]
        assert probs.sum() == pytest.approx(1.0)

    def test_samples_in_domain(self):
        gen = ZipfGenerator(50, 0.6, seed=2)
        sample = gen.sample(10_000)
        assert sample.min() >= 1
        assert sample.max() <= 50

    def test_skew_concentrates_mass(self):
        flat = ZipfGenerator(1000, 0.0, seed=3).sample(20_000)
        skewed = ZipfGenerator(1000, 1.0, seed=3).sample(20_000)
        import numpy as np

        def top_share(values):
            __, counts = np.unique(values, return_counts=True)
            counts.sort()
            return counts[-10:].sum() / len(values)

        assert top_share(skewed) > 3 * top_share(flat)

    def test_permutation_decouples_value_order(self):
        gen = ZipfGenerator(1000, 1.2, seed=4, permute=True)
        sample = gen.sample(5000)
        import numpy as np

        values, counts = np.unique(sample, return_counts=True)
        most_frequent = values[counts.argmax()]
        assert most_frequent != 1  # with overwhelming probability

    def test_invalid_parameters(self):
        with pytest.raises(StatisticsError):
            ZipfGenerator(0, 1.0)
        with pytest.raises(StatisticsError):
            ZipfGenerator(10, -0.5)
        with pytest.raises(StatisticsError):
            ZipfGenerator(10, 1.0).sample(-1)

    def test_sample_list_returns_ints(self):
        values = ZipfGenerator(10, 0.5, seed=5).sample_list(10)
        assert all(isinstance(v, int) for v in values)


def _make_table(rows):
    schema = Schema(
        [
            Column("id", DataType.INTEGER),
            Column("v", DataType.FLOAT),
            Column("s", DataType.STRING),
        ]
    )
    table = Table("t", schema, page_size=4096)
    table.append_rows(rows)
    return table


class TestTableStats:
    def test_column_stats_numeric(self):
        table = _make_table([(i, float(i % 10), "x") for i in range(100)])
        stats = compute_column_stats(table, "v")
        assert stats.count == 100
        assert stats.distinct == 10
        assert stats.min_value == 0.0
        assert stats.max_value == 9.0
        assert stats.has_histogram

    def test_column_stats_string_no_histogram(self):
        table = _make_table([(i, 0.0, f"s{i % 5}") for i in range(50)])
        stats = compute_column_stats(table, "s")
        assert stats.distinct == 5
        assert not stats.has_histogram
        assert stats.min_value is None

    def test_key_column_marked(self):
        table = _make_table([(i, 0.0, "x") for i in range(10)])
        stats = compute_table_stats(table, key_columns=["id"])
        assert stats.column("id").is_key
        assert not stats.column("v").is_key

    def test_histogram_columns_restriction(self):
        table = _make_table([(i, float(i), "x") for i in range(10)])
        stats = compute_table_stats(table, histogram_columns=["v"])
        assert stats.column("v").has_histogram
        assert not stats.column("id").has_histogram

    def test_scaled_rows(self):
        table = _make_table([(i, float(i), "x") for i in range(100)])
        stats = compute_table_stats(table).scaled_rows(2.0)
        assert stats.row_count == 200
        assert stats.column("id").count == 200

    def test_without_histograms(self):
        table = _make_table([(i, float(i), "x") for i in range(100)])
        stats = compute_table_stats(table).without_histograms()
        assert not stats.column("id").has_histogram
        partial = compute_table_stats(table).without_histograms(["id"])
        assert not partial.column("id").has_histogram
        assert partial.column("v").has_histogram

    def test_mark_updated(self):
        table = _make_table([(1, 1.0, "x")])
        stats = compute_table_stats(table)
        assert not stats.significant_update_activity
        assert stats.mark_updated().significant_update_activity

    def test_schema_only_fallback(self):
        table = _make_table([])
        stats = schema_only_stats(table, assumed_rows=500)
        assert stats.row_count == 500
        assert stats.columns == {}

    def test_histogram_kind_none(self):
        table = _make_table([(i, float(i), "x") for i in range(10)])
        stats = compute_table_stats(table, histogram_kind=None)
        assert not stats.column("v").has_histogram


class TestHistogramKinds:
    def test_serial_class_membership(self):
        assert HistogramKind.MAXDIFF.is_serial_class
        assert HistogramKind.END_BIASED.is_serial_class
        assert not HistogramKind.EQUI_WIDTH.is_serial_class
        assert not HistogramKind.EQUI_DEPTH.is_serial_class
