"""Tests for the section 2.3 extension: memory-responsive hash joins.

The paper: "we assume that once an operator starts executing, its memory
allocation cannot be changed ... If, however, the operators ... can respond
to changes in memory allocation in mid-execution, our algorithm can be
extended to take advantage of this."  With ``responsive_hash_joins=True`` a
hash join's grant stays adjustable until its spill decision, so the
re-allocation triggered by the collector on its *own* build input reaches
it — a case the baseline (and Paradise) cannot exploit.
"""

import pytest

from repro import Database, DynamicMode, EngineConfig
from repro.bench.harness import rows_equivalent
from repro.workloads.tpcd import CatalogProfile, TpcdConfig, generate_tpcd, query_by_name


def build_db(responsive: bool) -> Database:
    # Q3 under an over-estimating catalog and a tight budget: the big join's
    # estimated maximum does not fit, so it starts on its minimum grant.
    config = EngineConfig().with_updates(
        query_memory_pages=64, responsive_hash_joins=responsive,
        feedback_enabled=False,  # repeated runs must stay cold
    )
    db = Database(config)
    generate_tpcd(
        db,
        TpcdConfig(scale_factor=0.01, catalog=CatalogProfile.STALE,
                   stale_row_factor=3.0),
    )
    return db


class TestResponsiveHashJoins:
    @pytest.fixture(scope="class")
    def outcomes(self):
        results = {}
        for responsive in (False, True):
            db = build_db(responsive)
            q = query_by_name("Q3")
            off = db.execute(q.sql, mode=DynamicMode.OFF)
            memory = db.execute(q.sql, mode=DynamicMode.MEMORY_ONLY)
            results[responsive] = (off, memory)
        return results

    def test_baseline_cannot_fix_its_own_join(self, outcomes):
        off, memory = outcomes[False]
        # The join committed its minimum grant before its build collector
        # completed: spilling persists despite re-allocation attempts.
        assert memory.profile.breakdown.write == pytest.approx(
            off.profile.breakdown.write
        )

    def test_responsive_join_picks_up_reallocation(self, outcomes):
        off, memory = outcomes[True]
        assert memory.profile.memory_reallocations >= 1
        assert memory.profile.breakdown.write < off.profile.breakdown.write
        assert memory.profile.total_cost < off.profile.total_cost

    def test_results_identical_in_all_variants(self, outcomes):
        reference = outcomes[False][0].rows
        for off, memory in outcomes.values():
            assert rows_equivalent(reference, off.rows)
            assert rows_equivalent(reference, memory.rows)

    def test_flag_survives_config_updates(self):
        config = EngineConfig().with_updates(responsive_hash_joins=True)
        assert config.responsive_hash_joins
        assert not EngineConfig().responsive_hash_joins
