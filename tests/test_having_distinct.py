"""Tests for HAVING and SELECT DISTINCT."""

import pytest

from repro import DynamicMode
from repro.errors import BindError
from repro.plans.physical import DistinctNode, FilterNode, HashAggregateNode
from repro.sql import deparse

from .conftest import make_two_table_db
from .oracle import evaluate


@pytest.fixture(scope="module")
def db():
    return make_two_table_db(r1_rows=400, r2_rows=900)


def run_both(db, sql):
    result = db.execute(sql, mode=DynamicMode.OFF)
    expected = evaluate(db, db.bind_sql(sql))
    return result.rows, expected


def same(a, b):
    assert sorted(map(repr, a)) == sorted(map(repr, b))


class TestHaving:
    def test_having_on_aggregate(self, db):
        sql = "SELECT a, count(*) n FROM r1 GROUP BY a HAVING count(*) > 3"
        actual, expected = run_both(db, sql)
        same(actual, expected)
        assert all(row[1] > 3 for row in actual)

    def test_having_on_alias(self, db):
        sql = "SELECT a, sum(b) total FROM r1 GROUP BY a HAVING total >= 100"
        actual, expected = run_both(db, sql)
        same(actual, expected)

    def test_having_on_group_column(self, db):
        sql = "SELECT a, count(*) n FROM r1 GROUP BY a HAVING a < 10"
        actual, expected = run_both(db, sql)
        same(actual, expected)
        assert all(row[0] < 10 for row in actual)

    def test_having_compound_condition(self, db):
        sql = (
            "SELECT a, count(*) n, avg(b) m FROM r1 GROUP BY a "
            "HAVING count(*) > 2 AND avg(b) BETWEEN 10 AND 40"
        )
        actual, expected = run_both(db, sql)
        same(actual, expected)

    def test_having_with_joins_and_order(self, db):
        sql = (
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id "
            "GROUP BY r1.a HAVING sum(r2.c) > 50 ORDER BY s DESC LIMIT 5"
        )
        result = db.execute(sql, mode=DynamicMode.OFF)
        expected = evaluate(db, db.bind_sql(sql))
        assert result.rows == expected

    def test_having_plan_shape(self, db):
        plan, __, __o = db.plan(
            "SELECT a, count(*) n FROM r1 GROUP BY a HAVING count(*) > 3",
            mode=DynamicMode.OFF,
        )
        # A filter over the aggregate's output.
        filters = [
            n for n in plan.walk()
            if isinstance(n, FilterNode)
            and isinstance(n.child, HashAggregateNode)
        ]
        assert filters

    def test_having_requires_grouping(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT a FROM r1 HAVING a > 1")

    def test_having_aggregate_must_be_selected(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT a, count(*) n FROM r1 GROUP BY a HAVING sum(b) > 5")

    def test_having_unknown_column(self, db):
        with pytest.raises(BindError):
            db.bind_sql("SELECT a, count(*) n FROM r1 GROUP BY a HAVING missing > 5")

    def test_having_deparse_round_trip(self, db):
        sql = "SELECT a, count(*) n FROM r1 GROUP BY a HAVING n > 3 AND a < 50"
        text1 = deparse(db.bind_sql(sql))
        assert "HAVING" in text1
        text2 = deparse(db.bind_sql(text1))
        assert text1 == text2

    def test_having_modes_agree(self, db):
        sql = (
            "SELECT r1.a, sum(r2.c) s FROM r1, r2 WHERE r1.id = r2.r1_id "
            "GROUP BY r1.a HAVING sum(r2.c) > 40"
        )
        off = db.execute(sql, mode=DynamicMode.OFF)
        full = db.execute(sql, mode=DynamicMode.FULL)
        same(off.rows, full.rows)


class TestDistinct:
    def test_distinct_removes_duplicates(self, db):
        sql = "SELECT DISTINCT a FROM r1"
        actual, expected = run_both(db, sql)
        same(actual, expected)
        assert len(actual) == len(set(actual))

    def test_distinct_multi_column(self, db):
        sql = "SELECT DISTINCT r1.a, r2.c FROM r1, r2 WHERE r1.id = r2.r1_id"
        actual, expected = run_both(db, sql)
        same(actual, expected)

    def test_distinct_plan_shape(self, db):
        plan, __, __o = db.plan("SELECT DISTINCT a FROM r1", mode=DynamicMode.OFF)
        assert any(isinstance(n, DistinctNode) for n in plan.walk())

    def test_distinct_estimates_cardinality(self, db):
        plan, __, __o = db.plan("SELECT DISTINCT a FROM r1", mode=DynamicMode.OFF)
        node = next(n for n in plan.walk() if isinstance(n, DistinctNode))
        # ~100 distinct values of a, far below the 400 input rows.
        assert node.est.rows < node.child.est.rows

    def test_distinct_with_order_and_limit(self, db):
        sql = "SELECT DISTINCT a FROM r1 ORDER BY a LIMIT 5"
        result = db.execute(sql, mode=DynamicMode.OFF)
        values = [row[0] for row in result.rows]
        assert values == sorted(set(values))[:5]

    def test_distinct_deparse_round_trip(self, db):
        sql = "SELECT DISTINCT a, b FROM r1 WHERE a < 10"
        text1 = deparse(db.bind_sql(sql))
        assert text1.startswith("SELECT DISTINCT")
        assert deparse(db.bind_sql(text1)) == text1

    def test_distinct_modes_agree(self, db):
        sql = "SELECT DISTINCT r1.a FROM r1, r2 WHERE r1.id = r2.r1_id"
        off = db.execute(sql, mode=DynamicMode.OFF)
        full = db.execute(sql, mode=DynamicMode.FULL)
        same(off.rows, full.rows)
