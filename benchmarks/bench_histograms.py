"""Experiment E9 — the histogram estimation substrate (section 2.2, [19]).

Supports the paper's premises rather than reproducing a numbered figure:

* serial-class histograms (MaxDiff) estimate equality selectivities on
  skewed data far better than equi-width ones — the basis of the
  inaccuracy-potential levels;
* histograms built from a one-page reservoir sample track full-data
  histograms closely — the basis of the run-time collector design.
"""

from __future__ import annotations

import random

from conftest import write_result

from repro.bench import render_table
from repro.stats.histogram import (
    HistogramKind,
    build_histogram,
    from_sample,
)
from repro.stats.zipf import ZipfGenerator


def _mean_abs_error(values, histogram):
    from collections import Counter

    counts = Counter(values)
    total = len(values)
    err = 0.0
    for value, count in counts.items():
        err += abs(histogram.selectivity_eq(value) - count / total)
    return err / len(counts)


def test_histogram_accuracy(benchmark, results_dir):
    def run():
        outcome = {}
        for z in (0.0, 0.6, 1.2):
            values = ZipfGenerator(500, z, seed=5, permute=True).sample_list(40_000)
            per_kind = {}
            for kind in (HistogramKind.EQUI_WIDTH, HistogramKind.EQUI_DEPTH,
                         HistogramKind.MAXDIFF, HistogramKind.END_BIASED):
                hist = build_histogram(values, kind=kind, num_buckets=16)
                per_kind[kind.value] = _mean_abs_error(values, hist)
            # Reservoir-sampled histogram (the run-time collector path).
            sample = random.Random(6).sample(values, 512)
            sampled = from_sample(sample, len(values), num_buckets=16)
            per_kind["maxdiff-from-512-sample"] = _mean_abs_error(values, sampled)
            outcome[z] = per_kind
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for z, per_kind in outcome.items():
        for kind, error in per_kind.items():
            rows.append([f"{z:g}", kind, f"{error:.5f}"])
    table = render_table(
        ["zipf z", "histogram", "mean abs selectivity error"],
        rows,
        title="Histogram estimation accuracy (16 buckets, 500-value domain)",
    )
    write_result(results_dir, "histograms", table)
    benchmark.extra_info["errors"] = {
        f"z={z}": {k: round(v, 5) for k, v in per_kind.items()}
        for z, per_kind in outcome.items()
    }

    # Serial-class histograms beat equi-width under skew.
    for z in (0.6, 1.2):
        assert outcome[z]["maxdiff"] < outcome[z]["equi-width"]
        assert outcome[z]["end-biased"] < outcome[z]["equi-width"]
    # Sampled histograms stay within a small factor of full-data MaxDiff.
    assert outcome[0.6]["maxdiff-from-512-sample"] < 5 * outcome[0.6]["maxdiff"] + 1e-3
