"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures.  Simulated
execution times (the reproduction's measurements) are written to
``results/<experiment>.txt`` next to this directory and attached to the
pytest-benchmark ``extra_info`` so ``--benchmark-json`` exports carry them.
Wall-clock times measured by pytest-benchmark only describe the harness
itself, not the reproduction's metric.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the per-experiment reproduction tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, content: str) -> None:
    """Persist one experiment's table (also echoed for ``-s`` runs)."""
    path = results_dir / f"{name}.txt"
    path.write_text(content + "\n")
    print(f"\n{content}\n[written to {path}]")
