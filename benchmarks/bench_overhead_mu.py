"""Experiment E5 — the statistics-collection overhead bound (section 3.2).

"In all these queries, we set the value of mu (maximum allowable overhead)
to 0.05 ensuring that none of the queries ever performed 5% worse than
normal."  This bench runs every TPC-D query in FULL mode and reports the
overhead relative to the Normal run; queries that got re-optimized are
excluded from the bound check (they are *faster*, not overheads) and simple
queries must carry exactly zero collection cost.
"""

from __future__ import annotations

from conftest import write_result

from repro.bench import ExperimentConfig, build_database, render_table, run_comparison
from repro.core.modes import DynamicMode
from repro.workloads.tpcd import ALL_QUERIES

CONFIG = ExperimentConfig(scale_factor=0.01, memory_pages=192)
#: mu plus slack: the SCIA budget is checked against *estimated*
#: cardinalities, so actual overhead can exceed mu by the estimation error.
OVERHEAD_TOLERANCE = 0.10


def test_overhead_bounded_by_mu(benchmark, results_dir):
    def run():
        db = build_database(CONFIG)
        return [
            run_comparison(db, q, (DynamicMode.OFF, DynamicMode.FULL))
            for q in ALL_QUERIES
        ]

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    overheads = {}
    for comp in comparisons:
        off = comp.profiles["off"]
        full = comp.profiles["full"]
        overhead = (full.total_cost - off.total_cost) / off.total_cost
        overheads[comp.query.name] = overhead
        rows.append(
            [
                comp.query.name,
                comp.query.category,
                f"{overhead * 100:+.2f}%",
                f"{full.breakdown.stats_cpu:.1f}",
                str(full.plan_switches),
            ]
        )
    table = render_table(
        ["query", "category", "overhead", "stats cpu", "switches"],
        rows,
        title="Collection overhead vs Normal (mu = 0.05)",
    )
    write_result(results_dir, "overhead_mu", table)
    benchmark.extra_info["overhead_pct"] = {
        name: round(v * 100, 2) for name, v in overheads.items()
    }

    for comp in comparisons:
        full = comp.profiles["full"]
        if comp.query.category == "simple":
            # Simple queries are skipped entirely by the SCIA.
            assert full.breakdown.stats_cpu == 0.0
            assert abs(overheads[comp.query.name]) < 0.005
        elif full.plan_switches == 0 and full.memory_reallocations == 0:
            # No corrective action taken: overhead must stay near mu.
            assert overheads[comp.query.name] <= OVERHEAD_TOLERANCE
