"""Parallel scaling curve: morsel-driven execution vs the serial batch path.

Like ``bench_wallclock``, this benchmark reports *real* elapsed time
(``time.perf_counter``), not the simulated cost clock.  Each TPC-D query is
optimized once (FULL mode) and the plan is dispatched repeatedly under
``execution_mode="batch"`` and ``execution_mode="parallel"`` at several
worker counts, producing a scaling curve.  Every parallel run is also
checked against the batch run for the determinism contract of
``src/repro/executor/parallel.py``: byte-identical rows, bit-identical
simulated cost and buffer statistics — a benchmark result with broken
parity is a bug, not a data point.

The speedup gate (scan-heavy queries at least ``REQUIRED_SPEEDUP`` faster
at 4 workers) is hardware-dependent by nature: a fork-based worker pool
cannot beat the serial path without real CPUs to fan out to.  The gate is
therefore asserted only when the host grants this process at least
``REQUIRED_CPUS`` cores; on smaller hosts the curve and parity checks
still run and the JSON document records the gate as skipped.

Results go to ``BENCH_parallel.json`` at the repository root and
``results/parallel.txt``.  Runs under pytest
(``pytest benchmarks/bench_parallel.py``) or as a script with knobs::

    python benchmarks/bench_parallel.py [--smoke] [--scale 0.05]
                                        [--workers 1,2,4] [--repetitions 3]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import Database, DynamicMode
from repro.bench import ExperimentConfig, build_database, stamp_document
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES

SCALE_FACTOR = 0.05
SMOKE_SCALE_FACTOR = 0.01
REPETITIONS = 3
WORKER_COUNTS = (1, 2, 4)
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

#: The speedup gate: scan-heavy queries, in aggregate, this much faster at
#: 4 workers than the serial batch path — asserted only on hosts that
#: actually grant the process enough CPUs to fan out to.
REQUIRED_SPEEDUP = 1.8
REQUIRED_CPUS = 4

#: Queries whose runtime is dominated by a parallelizable leaf pipeline
#: (big lineitem scans); the scaling gate aggregates over these.
SCAN_HEAVY = ("Q1", "Q6")


def available_cpus() -> int:
    """CPUs actually granted to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _dispatch(db: Database, plan, execution_mode: str, workers: int = 0):
    """One timed Dispatcher run on a fresh runtime context."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    start = time.perf_counter()
    result = Dispatcher(ctx).run(plan)
    elapsed = time.perf_counter() - start
    ctx.temp_manager.drop_all()
    return elapsed, result, ctx


def _check_parity(batch, batch_ctx, parallel, parallel_ctx) -> list[str]:
    """The determinism contract, as a list of violations (empty = clean)."""
    violations = []
    if parallel.rows != batch.rows:
        violations.append("rows differ")
    if parallel_ctx.clock.breakdown != batch_ctx.clock.breakdown:
        violations.append("cost breakdown differs")
    if parallel_ctx.clock.now != batch_ctx.clock.now:
        violations.append("total cost differs")
    if parallel_ctx.buffer_pool.stats != batch_ctx.buffer_pool.stats:
        violations.append("buffer statistics differ")
    return violations


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    repetitions: int = REPETITIONS,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
) -> dict:
    """Measure the scaling curve for every harness query."""
    db = build_database(ExperimentConfig(scale_factor=scale_factor))
    queries = []
    for query in ALL_QUERIES:
        plan, __scia, __opt = db.plan(query.sql, mode=DynamicMode.FULL)
        best_batch, batch_result, batch_ctx = min(
            (_dispatch(db, plan, "batch") for __ in range(repetitions)),
            key=lambda r: r[0],
        )
        entry = {
            "name": query.name,
            "category": query.category,
            "batch_s": round(best_batch, 6),
            "parity": True,
        }
        for workers in worker_counts:
            best, result, ctx = min(
                (_dispatch(db, plan, "parallel", workers) for __ in range(repetitions)),
                key=lambda r: r[0],
            )
            violations = _check_parity(batch_result, batch_ctx, result, ctx)
            if violations:
                entry["parity"] = False
                entry.setdefault("violations", []).extend(
                    f"workers={workers}: {v}" for v in violations
                )
            entry[f"parallel{workers}_s"] = round(best, 6)
            entry[f"speedup{workers}"] = round(best_batch / best, 2)
            if workers == max(worker_counts):
                entry["pipelines"] = ctx.parallel.pipelines
                entry["join_pipelines"] = ctx.parallel.join_pipelines
                entry["morsels"] = ctx.parallel.morsels
        queries.append(entry)

    gate_workers = max(worker_counts)
    scan_heavy = [q for q in queries if q["name"] in SCAN_HEAVY]
    batch_total = sum(q["batch_s"] for q in scan_heavy)
    parallel_total = sum(q[f"parallel{gate_workers}_s"] for q in scan_heavy)
    cpus = available_cpus()
    gate_enforced = cpus >= REQUIRED_CPUS and gate_workers >= REQUIRED_CPUS
    document = {
        "scale_factor": scale_factor,
        "repetitions": repetitions,
        "worker_counts": list(worker_counts),
        "cpus_available": cpus,
        "metric": "best-of-N wall-clock seconds (time.perf_counter)",
        "queries": queries,
        "scan_heavy": {
            "names": list(SCAN_HEAVY),
            "batch_s": round(batch_total, 6),
            f"parallel{gate_workers}_s": round(parallel_total, 6),
            "speedup": round(batch_total / parallel_total, 2),
        },
        "speedup_gate": {
            "required": REQUIRED_SPEEDUP,
            "at_workers": gate_workers,
            "enforced": gate_enforced,
            "reason": (
                "enforced"
                if gate_enforced
                else f"skipped: {cpus} CPU(s) granted, need {REQUIRED_CPUS}"
            ),
        },
        "parity_ok": all(q["parity"] for q in queries),
        # Probe-side join pipelines must both run and hold parity on every
        # host — the parity record above already covers them (it compares
        # whole-query rows/costs), this asserts they didn't silently
        # regress to leaf-only parallelism.
        "join_pipelines_ran": any(q["join_pipelines"] >= 1 for q in queries),
    }
    return stamp_document(document, {"speedup_gate": REQUIRED_CPUS})


def _render(document: dict) -> str:
    counts = document["worker_counts"]
    header = f"{'query':<8}{'batch s':>10}"
    for w in counts:
        header += f"{f'w{w} s':>10}{'spdup':>7}"
    header += f"{'parity':>8}"
    lines = [
        "Morsel-parallel scaling vs serial batch path "
        f"(TPC-D sf={document['scale_factor']}, best of {document['repetitions']}, "
        f"{document['cpus_available']} CPU(s))",
        header,
    ]
    for entry in document["queries"]:
        line = f"{entry['name']:<8}{entry['batch_s']:>10.3f}"
        for w in counts:
            line += f"{entry[f'parallel{w}_s']:>10.3f}{entry[f'speedup{w}']:>6.2f}x"
        line += f"{'ok' if entry['parity'] else 'FAIL':>8}"
        lines.append(line)
    heavy = document["scan_heavy"]
    gate = document["speedup_gate"]
    lines.append(
        f"scan-heavy ({','.join(heavy['names'])}): {heavy['speedup']:.2f}x "
        f"at {gate['at_workers']} workers (gate {gate['required']}x, {gate['reason']})"
    )
    return "\n".join(lines)


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run (sf={SMOKE_SCALE_FACTOR}, 1 repetition, workers 1,2)",
    )
    parser.add_argument("--scale", type=float, default=None, help="TPC-D scale factor")
    parser.add_argument(
        "--workers",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=None,
        help="comma-separated worker counts (default 1,2,4)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="best-of-N repetitions"
    )
    return parser.parse_args(argv)


def test_parallel_scaling(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "parallel", _render(document))
    assert document["parity_ok"], [
        q for q in document["queries"] if not q["parity"]
    ]
    assert document["join_pipelines_ran"], "no probe-side join pipeline fanned out"
    if document["speedup_gate"]["enforced"]:
        assert document["scan_heavy"]["speedup"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    workers = args.workers if args.workers is not None else (
        (1, 2) if args.smoke else WORKER_COUNTS
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if args.smoke else REPETITIONS
    )
    doc = run_benchmark(scale, repetitions, workers)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    if not doc["parity_ok"]:
        raise SystemExit("parity violations detected")
    if not doc["join_pipelines_ran"]:
        raise SystemExit("no probe-side join pipeline fanned out")
    if not args.smoke:
        print(f"\nwrote {JSON_PATH}")
