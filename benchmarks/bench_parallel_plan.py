"""Plan-wide parallelism scaling: build sides, sorts, columnar morsels.

The companion to ``bench_parallel_joins`` for PR 7's tentpole, with three
legs per worker count:

* **build** — TPC-D join queries dispatched with ``parallel_build`` on and
  morsels sized so the leaf-extractable build sides fan out: the hash-join
  build fold runs as per-worker partition folds merged in morsel order.
* **sort** — ORDER BY queries over leaf-extractable chains: workers sort
  their morsel runs with the serial multi-pass sort and the parent merges
  them through the loser tree.
* **columnar** — the same filter pipelines under ``execution_mode=
  "columnar"`` with ``columnar_parallel`` on, so the NumPy kernels and
  zone-map skipping run inside forked morsel workers.

The parity record is unconditional: every parallel run must produce
byte-identical rows and bit-identical simulated cost/CostBreakdown and
buffer statistics vs its serial reference (batch for the row legs, batch
*and* serial columnar for the columnar leg) — a benchmark result with
broken parity is a bug, not a data point.  The engagement assertions are
also unconditional: build pipelines must fan out on the build leg and sort
pipelines (with at least two merged runs) on the sort leg, so the tentpole
cannot silently regress to probe-only parallelism.

The speedup gates (builds at least ``REQUIRED_JOIN_SPEEDUP`` and sorts at
least ``REQUIRED_SORT_SPEEDUP`` faster at 4 workers, aggregated per leg)
are hardware-dependent by nature and are enforced only when the host
grants this process at least ``REQUIRED_CPUS`` cores; smaller hosts still
run the curve and the parity checks, and the JSON document records the
gates as skipped with the reason.

Results go to ``BENCH_parallel_plan.json`` at the repository root and
``results/parallel_plan.txt``.  Runs under pytest
(``pytest benchmarks/bench_parallel_plan.py``) or as a script with knobs::

    python benchmarks/bench_parallel_plan.py [--smoke] [--scale 0.05]
                                             [--workers 1,2,4]
                                             [--repetitions 3]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import Database, DynamicMode
from repro.bench import ExperimentConfig, build_database, stamp_document
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES

SCALE_FACTOR = 0.05
SMOKE_SCALE_FACTOR = 0.01
REPETITIONS = 3
WORKER_COUNTS = (1, 2, 4)
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_plan.json"

REQUIRED_JOIN_SPEEDUP = 1.6
REQUIRED_SORT_SPEEDUP = 1.5
REQUIRED_CPUS = 4

#: Morsels sized so the TPC-D build-side scans (customer, orders) split
#: into enough morsels to fan out at small scale factors.
BUILD_MORSEL_PAGES = 4

#: TPC-D queries whose hash joins have leaf-extractable build sides large
#: enough to split at ``BUILD_MORSEL_PAGES`` (Q10's only leaf build side
#: is the one-page nation table, so it cannot fan out at any geometry) —
#: the build-leg gate aggregates over these.
BUILD_QUERIES = ("Q3",)

#: ORDER BY over leaf-extractable chains (filter over a base scan) — the
#: shape the parallel sort handles; sorts over aggregates stay serial.
SORT_QUERIES = (
    (
        "sort_price",
        "SELECT l_orderkey, l_extendedprice FROM lineitem "
        "WHERE l_quantity > 10 ORDER BY l_extendedprice DESC, l_orderkey",
    ),
    (
        "sort_keys",
        "SELECT l_suppkey, l_partkey, l_orderkey FROM lineitem "
        "WHERE l_orderkey > 100 ORDER BY l_suppkey, l_partkey, l_orderkey",
    ),
)

#: Filter pipelines for the columnar-morsel leg.
COLUMNAR_QUERIES = (
    (
        "col_filter",
        "SELECT l_orderkey, l_extendedprice FROM lineitem "
        "WHERE l_quantity > 10",
    ),
)


def available_cpus() -> int:
    """CPUs actually granted to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _dispatch(db: Database, plan, execution_mode: str, workers: int = 0, **knobs):
    """One timed Dispatcher run on a fresh runtime context."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers, **knobs
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    start = time.perf_counter()
    result = Dispatcher(ctx).run(plan)
    elapsed = time.perf_counter() - start
    ctx.temp_manager.drop_all()
    return elapsed, result, ctx


def _check_parity(reference, reference_ctx, candidate, candidate_ctx) -> list[str]:
    """The determinism contract, as a list of violations (empty = clean)."""
    violations = []
    if candidate.rows != reference.rows:
        violations.append("rows differ")
    if candidate_ctx.clock.breakdown != reference_ctx.clock.breakdown:
        violations.append("cost breakdown differs")
    if candidate_ctx.clock.now != reference_ctx.clock.now:
        violations.append("total cost differs")
    if candidate_ctx.buffer_pool.stats != reference_ctx.buffer_pool.stats:
        violations.append("buffer statistics differ")
    return violations


def _run_leg(
    db: Database,
    leg: str,
    name: str,
    plan,
    repetitions: int,
    worker_counts: tuple[int, ...],
    parallel_mode: str,
    knobs: dict,
) -> dict:
    """Measure one query's scaling curve for one leg."""
    best_serial, serial_result, serial_ctx = min(
        (_dispatch(db, plan, "batch", **knobs) for __ in range(repetitions)),
        key=lambda r: r[0],
    )
    entry = {
        "name": name,
        "leg": leg,
        "batch_s": round(best_serial, 6),
        "parity": True,
    }
    for workers in worker_counts:
        best, result, ctx = min(
            (
                _dispatch(db, plan, parallel_mode, workers, **knobs)
                for __ in range(repetitions)
            ),
            key=lambda r: r[0],
        )
        violations = _check_parity(serial_result, serial_ctx, result, ctx)
        if violations:
            entry["parity"] = False
            entry.setdefault("violations", []).extend(
                f"workers={workers}: {v}" for v in violations
            )
        entry[f"parallel{workers}_s"] = round(best, 6)
        entry[f"speedup{workers}"] = round(best_serial / best, 2)
        if workers == max(worker_counts):
            entry["build_pipelines"] = ctx.parallel.build_pipelines
            entry["sort_pipelines"] = ctx.parallel.sort_pipelines
            entry["sort_runs_merged"] = ctx.parallel.sort_runs_merged
            entry["rows_spilled"] = ctx.parallel.rows_spilled
            entry["partitions_spilled"] = ctx.parallel.partitions_spilled
            entry["columnar_parallel_pipelines"] = ctx.columnar.parallel_pipelines
            entry["zone_map_rows_skipped"] = ctx.columnar.rows_skipped
    return entry


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    repetitions: int = REPETITIONS,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
) -> dict:
    """Measure the plan-wide scaling curves: build, sort and columnar legs."""
    db = build_database(ExperimentConfig(scale_factor=scale_factor))
    queries: list[dict] = []

    for query in (q for q in ALL_QUERIES if q.name in BUILD_QUERIES):
        plan, __scia, __opt = db.plan(query.sql, mode=DynamicMode.FULL)
        queries.append(
            _run_leg(
                db,
                "build",
                query.name,
                plan,
                repetitions,
                worker_counts,
                "parallel",
                {"morsel_pages": BUILD_MORSEL_PAGES},
            )
        )

    for name, sql in SORT_QUERIES:
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        queries.append(
            _run_leg(db, "sort", name, plan, repetitions, worker_counts, "parallel", {})
        )

    for name, sql in COLUMNAR_QUERIES:
        plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
        queries.append(
            _run_leg(db, "columnar", name, plan, repetitions, worker_counts, "columnar", {})
        )

    gate_workers = max(worker_counts)
    cpus = available_cpus()
    gate_enforced = cpus >= REQUIRED_CPUS and gate_workers >= REQUIRED_CPUS

    def leg_summary(leg: str, required: float) -> dict:
        members = [q for q in queries if q["leg"] == leg]
        serial_total = sum(q["batch_s"] for q in members)
        parallel_total = sum(q[f"parallel{gate_workers}_s"] for q in members)
        return {
            "names": [q["name"] for q in members],
            "batch_s": round(serial_total, 6),
            f"parallel{gate_workers}_s": round(parallel_total, 6),
            "speedup": round(serial_total / parallel_total, 2),
            "required": required,
        }

    build_leg = leg_summary("build", REQUIRED_JOIN_SPEEDUP)
    sort_leg = leg_summary("sort", REQUIRED_SORT_SPEEDUP)
    document = {
        "scale_factor": scale_factor,
        "repetitions": repetitions,
        "worker_counts": list(worker_counts),
        "cpus_available": cpus,
        "metric": "best-of-N wall-clock seconds (time.perf_counter)",
        "queries": queries,
        "build": build_leg,
        "sort": sort_leg,
        "speedup_gate": {
            "at_workers": gate_workers,
            "enforced": gate_enforced,
            "reason": (
                "enforced"
                if gate_enforced
                else f"skipped: {cpus} CPU(s) granted, need {REQUIRED_CPUS}"
            ),
        },
        "parity_ok": all(q["parity"] for q in queries),
        "build_pipelines_ran": all(
            q["build_pipelines"] >= 1 for q in queries if q["leg"] == "build"
        ),
        "sort_pipelines_ran": all(
            q["sort_pipelines"] >= 1 and q["sort_runs_merged"] >= 2
            for q in queries
            if q["leg"] == "sort"
        ),
        "columnar_pipelines_ran": all(
            q["columnar_parallel_pipelines"] >= 1
            for q in queries
            if q["leg"] == "columnar"
        )
        if gate_workers > 1
        else True,
    }
    return stamp_document(document, {"speedup_gate": REQUIRED_CPUS})


def _render(document: dict) -> str:
    counts = document["worker_counts"]
    header = f"{'query':<12}{'leg':<10}{'serial s':>10}"
    for w in counts:
        header += f"{f'w{w} s':>10}{'spdup':>7}"
    header += f"{'parity':>8}"
    lines = [
        "Plan-wide parallelism scaling vs serial path "
        f"(TPC-D sf={document['scale_factor']}, best of {document['repetitions']}, "
        f"{document['cpus_available']} CPU(s))",
        header,
    ]
    for entry in document["queries"]:
        line = f"{entry['name']:<12}{entry['leg']:<10}{entry['batch_s']:>10.3f}"
        for w in counts:
            line += f"{entry[f'parallel{w}_s']:>10.3f}{entry[f'speedup{w}']:>6.2f}x"
        line += f"{'ok' if entry['parity'] else 'FAIL':>8}"
        lines.append(line)
    gate = document["speedup_gate"]
    for leg_name, leg in (("build", document["build"]), ("sort", document["sort"])):
        lines.append(
            f"{leg_name} leg ({','.join(leg['names'])}): {leg['speedup']:.2f}x "
            f"at {gate['at_workers']} workers "
            f"(gate {leg['required']}x, {gate['reason']})"
        )
    return "\n".join(lines)


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run (sf={SMOKE_SCALE_FACTOR}, 1 repetition, workers 1,2)",
    )
    parser.add_argument("--scale", type=float, default=None, help="TPC-D scale factor")
    parser.add_argument(
        "--workers",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=None,
        help="comma-separated worker counts (default 1,2,4)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="best-of-N repetitions"
    )
    return parser.parse_args(argv)


def _assert_document(document: dict) -> None:
    assert document["parity_ok"], [
        q for q in document["queries"] if not q["parity"]
    ]
    assert document["build_pipelines_ran"], "no build pipeline fanned out"
    assert document["sort_pipelines_ran"], "no sort pipeline fanned out"
    assert document["columnar_pipelines_ran"], "no columnar pipeline fanned out"
    if document["speedup_gate"]["enforced"]:
        assert document["build"]["speedup"] >= REQUIRED_JOIN_SPEEDUP
        assert document["sort"]["speedup"] >= REQUIRED_SORT_SPEEDUP


def test_parallel_plan_scaling(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "parallel_plan", _render(document))
    _assert_document(document)


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    workers = args.workers if args.workers is not None else (
        (1, 2) if args.smoke else WORKER_COUNTS
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if args.smoke else REPETITIONS
    )
    doc = run_benchmark(scale, repetitions, workers)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    try:
        _assert_document(doc)
    except AssertionError as exc:
        raise SystemExit(str(exc))
    if not args.smoke:
        print(f"\nwrote {JSON_PATH}")
