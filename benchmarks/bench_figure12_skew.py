"""Experiment E3 — paper Figure 12: the effect of skew.

The paper reruns the medium and complex queries on data where all non-key
attributes follow a generalized Zipfian distribution with z = 0.3 and
z = 0.6.  Expected shape: "the relative performance of Dynamic
Re-Optimization improves slightly as more skew is introduced", while for
some queries the benefit *decreases* with skew because serial histograms
get more accurate on skewed data.
"""

from __future__ import annotations

from conftest import write_result

from repro.bench import ExperimentConfig, comparison_table, run_experiment
from repro.core.modes import DynamicMode
from repro.workloads.tpcd import COMPLEX_QUERIES, MEDIUM_QUERIES

MODES = (DynamicMode.OFF, DynamicMode.FULL)
QUERIES = MEDIUM_QUERIES + COMPLEX_QUERIES
SKEWS = (0.0, 0.3, 0.6)


def test_figure12_skew(benchmark, results_dir):
    def run():
        outcome = {}
        for z in SKEWS:
            config = ExperimentConfig(scale_factor=0.01, memory_pages=192, zipf_z=z)
            outcome[z] = run_experiment(config, queries=QUERIES, modes=MODES)
        return outcome

    by_skew = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for z, comparisons in by_skew.items():
        sections.append(
            comparison_table(
                comparisons, list(MODES),
                title=f"Figure 12 — Zipf z = {z} (normalized, Normal = 100)",
            )
        )
    write_result(results_dir, "figure12_skew", "\n\n".join(sections))

    improvements = {
        z: {
            c.query.name: round(c.improvement_pct(DynamicMode.FULL), 1)
            for c in comparisons
        }
        for z, comparisons in by_skew.items()
    }
    benchmark.extra_info["improvement_pct_by_skew"] = improvements

    for comparisons in by_skew.values():
        assert all(c.row_sets_match for c in comparisons)

    # Re-optimization keeps winning on complex queries at every skew level.
    for z in SKEWS:
        best = max(improvements[z][name] for name in ("Q5", "Q7", "Q8"))
        assert best > 5.0, f"no complex-query benefit at z={z}"

    # And at least one query's benefit *grows* with skew (the paper's
    # headline observation for this figure).
    grew = [
        name
        for name in improvements[0.0]
        if improvements[0.6][name] > improvements[0.0][name] + 1.0
    ]
    assert grew, "expected some query to benefit more under skew"
