"""Experiment E6 — sensitivity to mu, theta1 and theta2.

The paper defers its sensitivity analysis to Kabra's thesis [12]; this
ablation sweeps each parameter on the running example (where the optimizer
under-estimates a correlated filter) and reports when re-optimization stops
firing:

* theta2 (sub-optimality drift gate): small values re-optimize eagerly,
  values above the actual drift suppress re-optimization entirely;
* theta1 (optimization-cost gate): large values always pass; tiny values
  suppress re-optimization on short queries;
* mu (collection budget): zero drops every budgeted statistic but keeps the
  free cardinality counts — re-optimization still works off cardinality.
"""

from __future__ import annotations

from conftest import write_result

from repro import Database, DynamicMode, EngineConfig
from repro.bench import render_table
from repro.config import ReoptimizationParameters
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

PARAMS = {"value1": 80, "value2": 80}
DATA = SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)


def _run(reopt: ReoptimizationParameters):
    db = Database(EngineConfig().with_updates(reopt=reopt))
    build_running_example(db, DATA)
    off = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.OFF)
    full = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.FULL)
    improvement = 100 * (1 - full.profile.total_cost / off.profile.total_cost)
    return improvement, full.profile.plan_switches


def test_parameter_sensitivity(benchmark, results_dir):
    def run():
        grid = {}
        for theta2 in (0.05, 0.2, 1.0, 10.0):
            grid[("theta2", theta2)] = _run(ReoptimizationParameters(theta2=theta2))
        for theta1 in (0.001, 0.05, 0.5):
            grid[("theta1", theta1)] = _run(ReoptimizationParameters(theta1=theta1))
        for mu in (0.0, 0.05, 0.5):
            grid[("mu", mu)] = _run(ReoptimizationParameters(mu=mu))
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [param, str(value), f"{improvement:.1f}%", str(switches)]
        for (param, value), (improvement, switches) in grid.items()
    ]
    table = render_table(
        ["parameter", "value", "improvement", "switches"],
        rows,
        title="Sensitivity of Dynamic Re-Optimization to mu, theta1, theta2",
    )
    write_result(results_dir, "sensitivity_parameters", table)
    benchmark.extra_info["grid"] = {
        f"{p}={v}": {"improvement_pct": round(i, 1), "switches": s}
        for (p, v), (i, s) in grid.items()
    }

    # theta2 at the paper's default fires; an absurdly large theta2 does not.
    assert grid[("theta2", 0.2)][1] >= 1
    assert grid[("theta2", 10.0)][1] == 0
    # A generous theta1 still fires on this (expensive) query.
    assert grid[("theta1", 0.5)][1] >= 1
    # With mu = 0 re-optimization still works from free cardinality counts.
    assert grid[("mu", 0.0)][1] >= 1
