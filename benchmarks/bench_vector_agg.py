"""Vectorized aggregation & join-probe kernels vs the serial batch path.

Like ``bench_columnar``, this benchmark reports *real* elapsed time
(``time.perf_counter``), not the simulated cost clock.  Three legs run:

* **TPC-D parity** (indexed database) — every harness query is optimized
  once (FULL mode) and dispatched under ``"batch"`` and ``"columnar"``
  with the vector kernels on; the runs must agree byte-for-byte on rows,
  simulated cost breakdown and buffer statistics.  Each query is then
  also executed *end-to-end* under ``DynamicMode.FULL`` in both modes so
  mid-query plan switches fire (the complex joins switch at this scale);
  row parity is asserted across the switch too.  Parity is
  **unconditional**: a violation fails the benchmark, it is never a data
  point.
* **Aggregate-heavy gate** (index-free database, so the optimizer picks
  sequential scans) — high-cardinality group-bys where the batch path's
  per-row dict bucketing dominates.  The gate: total batch time over the
  gate queries at least ``REQUIRED_SPEEDUP``x the columnar-vectorized
  time.  Single-core NumPy needs no extra CPUs, so the gate is **always
  enforced**.  Knob-off runs (``vectorized_agg=False``) are recorded per
  gate query to isolate the kernels' contribution from the rest of the
  columnar path.
* **Morsel pre-aggregation telemetry** — a float SUM/AVG group-by runs on
  the parallel path and must ship **zero raw rows**: float aggregates
  travel as per-group ordered value runs (folded once at the merge
  point), never as row payloads.  Asserted, not reported.

Results go to ``BENCH_vector_agg.json`` at the repository root and
``results/vector_agg.txt``.  Runs under pytest
(``pytest benchmarks/bench_vector_agg.py``) or as a script with knobs::

    python benchmarks/bench_vector_agg.py [--smoke] [--scale 0.05]
                                          [--repetitions 3]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import Database, DynamicMode
from repro.bench import ExperimentConfig, stamp_document
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES
from repro.workloads.tpcd.datagen import TpcdConfig, generate_tpcd

SCALE_FACTOR = 0.05
SMOKE_SCALE_FACTOR = 0.01
REPETITIONS = 3
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_vector_agg.json"

#: The speedup gate: the aggregate-heavy queries, in total, this much
#: faster under the vectorized columnar fold than the serial batch path.
#: No CPU gate — the kernels are single-core NumPy — so the gate is
#: always enforced.
REQUIRED_SPEEDUP = 2.0

#: The aggregate-heavy gate queries (high-cardinality group-bys, built by
#: :func:`_agg_workload`).  The moderate-cardinality queries stay data
#: points: their runtime is dominated by the charge-replay floor shared
#: with the batch path, not by the fold.
GATE_QUERIES = ("HICARD", "WIDE")


def _build_db(scale_factor: float, build_indexes: bool) -> Database:
    config = ExperimentConfig(scale_factor=scale_factor)
    db = Database(config.engine_config())
    generate_tpcd(
        db,
        TpcdConfig(scale_factor=scale_factor, build_indexes=build_indexes),
    )
    return db


def _dispatch(db: Database, plan, execution_mode: str, **updates):
    """One timed Dispatcher run on a fresh runtime context."""
    config = db.config.with_updates(execution_mode=execution_mode, **updates)
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    start = time.perf_counter()
    result = Dispatcher(ctx).run(plan)
    elapsed = time.perf_counter() - start
    ctx.temp_manager.drop_all()
    return elapsed, result, ctx


def _best(db, plan, mode, repetitions, **updates):
    """Best-of-N timed dispatches after one untimed warm-up (the warm-up
    builds/syncs column stores, one-time costs shared by later runs)."""
    _dispatch(db, plan, mode, **updates)
    return min(
        (_dispatch(db, plan, mode, **updates) for __ in range(repetitions)),
        key=lambda r: r[0],
    )


def _check_parity(batch, batch_ctx, col, col_ctx) -> list[str]:
    """The vectorized parity contract, as a list of violations."""
    violations = []
    if col.rows != batch.rows:
        violations.append("rows differ")
    if col_ctx.clock.breakdown != batch_ctx.clock.breakdown:
        violations.append("cost breakdown differs")
    if col_ctx.clock.now != batch_ctx.clock.now:
        violations.append("total cost differs")
    if col_ctx.buffer_pool.stats != batch_ctx.buffer_pool.stats:
        violations.append("buffer statistics differ")
    return violations


def _switch_parity(db: Database, sql: str) -> tuple[bool, int]:
    """End-to-end FULL-mode parity: batch vs columnar *with* mid-query
    re-optimization armed.  Returns (rows identical, switches seen)."""
    db.plan_cache.clear()
    batch = db.execute(sql, mode=DynamicMode.FULL, execution_mode="batch")
    db.plan_cache.clear()
    col = db.execute(sql, mode=DynamicMode.FULL, execution_mode="columnar")
    switches = max(batch.profile.plan_switches, col.profile.plan_switches)
    return col.rows == batch.rows, switches


def _agg_workload(db: Database) -> list[tuple[str, str]]:
    """Aggregate-heavy group-bys over lineitem, moderate to high key
    cardinality.  ``HICARD``/``WIDE`` gate; the rest are data points."""
    return [
        (
            "AGGGROUP",
            "SELECT l_returnflag, sum(l_extendedprice) AS revenue, "
            "avg(l_quantity) AS qty, count(*) AS n "
            "FROM lineitem GROUP BY l_returnflag",
        ),
        (
            "HICARD",
            "SELECT l_partkey, sum(l_extendedprice) AS revenue, "
            "avg(l_quantity) AS qty, count(*) AS n "
            "FROM lineitem GROUP BY l_partkey",
        ),
        (
            "HICARD2",
            "SELECT l_orderkey, sum(l_extendedprice) AS revenue, "
            "min(l_quantity) AS lo, max(l_quantity) AS hi "
            "FROM lineitem GROUP BY l_orderkey",
        ),
        (
            "WIDE",
            "SELECT l_suppkey, sum(l_extendedprice) AS s1, "
            "avg(l_extendedprice) AS a1, sum(l_quantity) AS s2, "
            "avg(l_quantity) AS a2, min(l_extendedprice) AS lo, "
            "max(l_extendedprice) AS hi, count(*) AS n "
            "FROM lineitem GROUP BY l_suppkey",
        ),
    ]


def _measure_tpcd(db, query, repetitions) -> dict:
    """One harness query: batch vs columnar timing + unconditional parity
    (dispatcher-level and end-to-end across mid-query switches)."""
    plan, __scia, __opt = db.plan(query.sql, mode=DynamicMode.FULL)
    best_batch, batch_result, batch_ctx = _best(db, plan, "batch", repetitions)
    best_col, col_result, col_ctx = _best(db, plan, "columnar", repetitions)
    violations = _check_parity(batch_result, batch_ctx, col_result, col_ctx)
    switch_ok, switches = _switch_parity(db, query.sql)
    if not switch_ok:
        violations.append("end-to-end FULL-mode rows differ")
    entry = {
        "name": query.name,
        "category": query.category,
        "batch_s": round(best_batch, 6),
        "columnar_s": round(best_col, 6),
        "speedup_vs_batch": round(best_batch / best_col, 2),
        "vector_agg_pipelines": col_ctx.vector.agg_pipelines,
        "vector_probe_pipelines": col_ctx.vector.probe_pipelines,
        "rows_folded": col_ctx.vector.rows_folded,
        "plan_switches": switches,
        "parity": not violations,
    }
    if violations:
        entry["violations"] = violations
    return entry


def _measure_gate(db, name, sql, repetitions) -> dict:
    """One aggregate-heavy query: batch vs vectorized vs knob-off."""
    plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
    best_batch, batch_result, batch_ctx = _best(db, plan, "batch", repetitions)
    best_col, col_result, col_ctx = _best(db, plan, "columnar", repetitions)
    best_off, off_result, __off_ctx = _best(
        db, plan, "columnar", repetitions, vectorized_agg=False
    )
    violations = _check_parity(batch_result, batch_ctx, col_result, col_ctx)
    if off_result.rows != col_result.rows:
        violations.append("knob-off rows differ")
    entry = {
        "name": name,
        "category": "aggregate-heavy",
        "gated": name in GATE_QUERIES,
        "batch_s": round(best_batch, 6),
        "columnar_s": round(best_col, 6),
        "columnar_novec_s": round(best_off, 6),
        "speedup_vs_batch": round(best_batch / best_col, 2),
        "speedup_vs_novec": round(best_off / best_col, 2),
        "vector_agg_pipelines": col_ctx.vector.agg_pipelines,
        "rows_folded": col_ctx.vector.rows_folded,
        "groups": len(col_result.rows),
        "parity": not violations,
    }
    if violations:
        entry["violations"] = violations
    return entry


def _preagg_telemetry(db: Database) -> dict:
    """Parallel float SUM/AVG pre-aggregation must ship zero raw rows."""
    sql = (
        "SELECT l_returnflag, sum(l_extendedprice) AS revenue, "
        "avg(l_quantity) AS qty FROM lineitem GROUP BY l_returnflag"
    )
    plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
    __serial, serial_result, __sctx = _dispatch(db, plan, "batch")
    __elapsed, result, ctx = _dispatch(
        db, plan, "parallel", parallel_workers=2
    )
    telemetry = {
        "query": "float SUM/AVG GROUP BY l_returnflag, 2 workers",
        "preagg_pipelines": ctx.parallel.preagg_pipelines,
        "rows_preaggregated": ctx.parallel.rows_preaggregated,
        "rows_shipped": ctx.parallel.rows_shipped,
        "vector_agg_pipelines": ctx.vector.agg_pipelines,
        "parity": result.rows == serial_result.rows,
    }
    assert telemetry["rows_shipped"] == 0, (
        f"float pre-aggregation shipped raw rows: {telemetry}"
    )
    assert telemetry["preagg_pipelines"] >= 1, (
        f"float SUM/AVG did not pre-aggregate: {telemetry}"
    )
    assert telemetry["rows_preaggregated"] > 0, telemetry
    assert telemetry["parity"], "parallel pre-aggregated rows differ"
    return telemetry


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    repetitions: int = REPETITIONS,
) -> dict:
    """Measure both legs plus the pre-aggregation telemetry assert."""
    db = _build_db(scale_factor, build_indexes=True)
    queries = [_measure_tpcd(db, q, repetitions) for q in ALL_QUERIES]
    preagg = _preagg_telemetry(db)

    agg_db = _build_db(scale_factor, build_indexes=False)
    agg_queries = [
        _measure_gate(agg_db, name, sql, repetitions)
        for name, sql in _agg_workload(agg_db)
    ]

    gated = [q for q in agg_queries if q["gated"]]
    batch_total = sum(q["batch_s"] for q in gated)
    col_total = sum(q["columnar_s"] for q in gated)
    document = {
        "scale_factor": scale_factor,
        "repetitions": repetitions,
        "metric": "best-of-N wall-clock seconds (time.perf_counter)",
        "queries": queries,
        "aggregate_heavy": agg_queries,
        "preagg_telemetry": preagg,
        "gate_total": {
            "names": list(GATE_QUERIES),
            "batch_s": round(batch_total, 6),
            "columnar_s": round(col_total, 6),
            "speedup": round(batch_total / col_total, 2),
        },
        "speedup_gate": {
            "required": REQUIRED_SPEEDUP,
            "enforced": True,
            "reason": "enforced (single-core NumPy fold, no CPU gate)",
        },
        "parity_ok": all(
            q["parity"] for q in queries + agg_queries
        ) and preagg["parity"],
        "switches_seen": sum(q["plan_switches"] for q in queries),
    }
    return stamp_document(document, {"speedup_gate": 0})


def _render(document: dict) -> str:
    lines = [
        "Vectorized aggregation kernels vs serial batch "
        f"(TPC-D sf={document['scale_factor']}, best of {document['repetitions']})",
        f"{'query':<10}{'batch s':>9}{'col s':>9}{'vs bat':>8}"
        f"{'folded':>9}{'switch':>7}{'parity':>8}",
    ]
    for entry in document["queries"]:
        lines.append(
            f"{entry['name']:<10}{entry['batch_s']:>9.3f}"
            f"{entry['columnar_s']:>9.3f}{entry['speedup_vs_batch']:>7.2f}x"
            f"{entry['rows_folded']:>9}{entry['plan_switches']:>7}"
            f"{'ok' if entry['parity'] else 'FAIL':>8}"
        )
    lines.append(
        f"{'query':<10}{'batch s':>9}{'col s':>9}{'novec s':>9}"
        f"{'vs bat':>8}{'vs off':>8}{'groups':>8}{'parity':>8}"
    )
    for entry in document["aggregate_heavy"]:
        star = "*" if entry["gated"] else " "
        lines.append(
            f"{entry['name'] + star:<10}{entry['batch_s']:>9.3f}"
            f"{entry['columnar_s']:>9.3f}{entry['columnar_novec_s']:>9.3f}"
            f"{entry['speedup_vs_batch']:>7.2f}x"
            f"{entry['speedup_vs_novec']:>7.2f}x{entry['groups']:>8}"
            f"{'ok' if entry['parity'] else 'FAIL':>8}"
        )
    gate = document["gate_total"]
    required = document["speedup_gate"]["required"]
    preagg = document["preagg_telemetry"]
    lines.append(
        f"gate ({','.join(gate['names'])}): {gate['speedup']:.2f}x vs batch "
        f"(gate {required}x, {document['speedup_gate']['reason']})"
    )
    lines.append(
        f"float preagg: {preagg['rows_preaggregated']} rows folded into runs, "
        f"{preagg['rows_shipped']} raw rows shipped"
    )
    return "\n".join(lines)


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run (sf={SMOKE_SCALE_FACTOR}, 1 repetition, no gate)",
    )
    parser.add_argument("--scale", type=float, default=None, help="TPC-D scale factor")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="best-of-N repetitions"
    )
    return parser.parse_args(argv)


def test_vector_agg_speedup(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "vector_agg", _render(document))
    assert document["parity_ok"], [
        q
        for q in document["queries"] + document["aggregate_heavy"]
        if not q["parity"]
    ]
    assert document["preagg_telemetry"]["rows_shipped"] == 0
    assert document["gate_total"]["speedup"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if args.smoke else REPETITIONS
    )
    doc = run_benchmark(scale, repetitions)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    if not doc["parity_ok"]:
        raise SystemExit("parity violations detected")
    if not args.smoke and doc["gate_total"]["speedup"] < REQUIRED_SPEEDUP:
        raise SystemExit(
            f"aggregate-heavy speedup {doc['gate_total']['speedup']}x "
            f"below gate {REQUIRED_SPEEDUP}x"
        )
    if not args.smoke:
        print(f"\nwrote {JSON_PATH}")
