"""Experiment E2 — paper Figure 11: isolating memory management vs plan
modification.

The paper reruns the medium and complex queries with the algorithm in two
restricted modes — improved statistics used *only* for memory management,
and *only* for plan modification.  Expected shape: medium queries benefit
only from improved memory management; complex queries benefit from both,
with the larger share coming from plan modification.

At laptop scale no single catalog-staleness setting produces both memory
pressure on the medium queries and plan-switch opportunities on the complex
ones (the paper's 3 GB scale produced both naturally), so the two query
classes run under the staleness profile that recreates their respective
error regime — documented in DESIGN.md section 3.
"""

from __future__ import annotations

from conftest import write_result

from repro.bench import ExperimentConfig, comparison_table, run_experiment
from repro.core.modes import DynamicMode
from repro.workloads.tpcd import COMPLEX_QUERIES, CatalogProfile, MEDIUM_QUERIES

MODES = (
    DynamicMode.OFF,
    DynamicMode.MEMORY_ONLY,
    DynamicMode.PLAN_ONLY,
    DynamicMode.FULL,
)

#: Medium queries: over-estimated dimension table -> min-granted operators
#: that observation upgrades (memory pressure regime).
MEDIUM_CONFIG = ExperimentConfig(
    scale_factor=0.01, memory_pages=96,
    catalog=CatalogProfile.STALE, stale_row_factor=0.5,
)
#: Complex queries: coarse histograms + correlations -> underestimates that
#: trigger plan modification.
COMPLEX_CONFIG = ExperimentConfig(scale_factor=0.01, memory_pages=192)


def test_figure11_isolation(benchmark, results_dir):
    def run():
        medium = run_experiment(MEDIUM_CONFIG, queries=MEDIUM_QUERIES, modes=MODES)
        complex_ = run_experiment(COMPLEX_CONFIG, queries=COMPLEX_QUERIES, modes=MODES)
        return medium + complex_

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    table = comparison_table(
        comparisons, list(MODES),
        title="Figure 11 — isolating memory management vs plan modification",
    )
    write_result(results_dir, "figure11_isolation", table)

    by_name = {c.query.name: c for c in comparisons}
    benchmark.extra_info["memory_only_pct"] = {
        n: round(c.improvement_pct(DynamicMode.MEMORY_ONLY), 1)
        for n, c in by_name.items()
    }
    benchmark.extra_info["plan_only_pct"] = {
        n: round(c.improvement_pct(DynamicMode.PLAN_ONLY), 1)
        for n, c in by_name.items()
    }

    assert all(c.row_sets_match for c in comparisons)

    # Medium queries benefit only from improved memory management: at least
    # one shows a memory-only gain, and neither switches plans.
    assert any(
        by_name[n].improvement_pct(DynamicMode.MEMORY_ONLY) > 2.0
        for n in ("Q3", "Q10")
    )
    for n in ("Q3", "Q10"):
        assert by_name[n].profiles["plan-only"].plan_switches == 0

    # Complex queries: plan modification dominates.
    plan_gains = [
        by_name[n].improvement_pct(DynamicMode.PLAN_ONLY) for n in ("Q5", "Q7", "Q8")
    ]
    memory_gains = [
        by_name[n].improvement_pct(DynamicMode.MEMORY_ONLY) for n in ("Q5", "Q7", "Q8")
    ]
    assert max(plan_gains) > 10.0
    assert max(plan_gains) > max(memory_gains)
