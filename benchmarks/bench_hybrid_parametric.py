"""Experiment E10 — the section 4 hybrid: parametric plans + re-optimization.

The paper's closing proposal: anticipate the common run-time cases with a
parameterised plan, choose among them when the values arrive, and fall back
to Dynamic Re-Optimization for the situations no scenario anticipated.

Two regimes on the running example:

* **parameter error only** (independent attributes, broad values): choosing
  the right scenario up front recovers the win without any mid-query
  materialisation — parametric alone ~ matches FULL;
* **parameter + correlation error** (identical attributes): no anticipated
  scenario captures the correlation, so re-optimization still contributes;
  the hybrid is at least as good as either technique alone.
"""

from __future__ import annotations

from conftest import write_result

from repro import Database, DynamicMode
from repro.bench import render_table
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

PARAMS = {"value1": 85, "value2": 85}


def _run_grid(correlation: float):
    db = Database()
    build_running_example(
        db,
        SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=correlation),
    )
    grid = {}
    grid["static"] = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.OFF)
    grid["reopt"] = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.FULL)
    grid["parametric"] = db.execute(
        RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.OFF, parametric=True
    )
    grid["hybrid"] = db.execute(
        RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.FULL, parametric=True
    )
    return grid


def test_hybrid_parametric(benchmark, results_dir):
    def run():
        return {
            "parameter error only (corr=0)": _run_grid(0.0),
            "parameter + correlation (corr=1)": _run_grid(1.0),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    summary = {}
    for regime, grid in outcomes.items():
        base = grid["static"].profile.total_cost
        for strategy, result in grid.items():
            normalized = 100 * result.profile.total_cost / base
            rows.append(
                [
                    regime,
                    strategy,
                    f"{normalized:.1f}",
                    str(result.profile.plan_switches),
                    str(result.profile.parametric_plan_count),
                ]
            )
            summary.setdefault(regime, {})[strategy] = round(normalized, 1)
    table = render_table(
        ["regime", "strategy", "normalized cost", "switches", "scenario plans"],
        rows,
        title="Section 4 hybrid: parametric plans + Dynamic Re-Optimization "
              "(static = 100)",
    )
    write_result(results_dir, "hybrid_parametric", table)
    benchmark.extra_info["normalized"] = summary

    for regime, grid in outcomes.items():
        base_rows = grid["static"].rows
        for strategy, result in grid.items():
            assert sorted(map(str, base_rows)) == sorted(map(str, result.rows)), (
                regime, strategy,
            )

    simple = summary["parameter error only (corr=0)"]
    hard = summary["parameter + correlation (corr=1)"]
    # Parametric choice alone recovers (most of) the win when the only
    # error is the unknown parameter value.
    assert simple["parametric"] <= simple["static"] + 1.0
    # The hybrid never loses to either constituent technique (small slack
    # for collection overhead).
    for regime in (simple, hard):
        assert regime["hybrid"] <= regime["parametric"] + 2.0
        assert regime["hybrid"] <= regime["reopt"] + 2.0
        assert regime["hybrid"] <= 100.0 + 1.0
