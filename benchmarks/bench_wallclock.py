"""Wall-clock comparison of the row and batch execution paths.

Unlike every other benchmark in this directory — which reports the
*simulated* cost clock — this one measures real elapsed time with
``time.perf_counter``.  Each TPC-D query is optimized once (FULL mode, with
statistics collectors inserted) and the resulting plan is then dispatched
repeatedly under ``execution_mode="row"`` and ``"batch"``, isolating the
executor from the (mode-independent) optimizer.  End-to-end ``db.execute``
times are reported alongside for context.

Results are written to ``BENCH_wallclock.json`` at the repository root and
to ``results/wallclock.txt``.  Runs either under pytest
(``pytest benchmarks/bench_wallclock.py``) or as a script
(``python benchmarks/bench_wallclock.py [--workers N]``; the flag adds a
morsel-parallel timing per query without touching the committed JSON —
the full scaling curve is ``bench_parallel.py``'s job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import Database, DynamicMode
from repro.bench import ExperimentConfig, build_database, stamp_document
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES

CONFIG = ExperimentConfig(scale_factor=0.02)
REPETITIONS = 5
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"

#: Acceptance bound: the batch path must at least halve executor wall-clock
#: across the whole TPC-D harness.
REQUIRED_SPEEDUP = 2.0


def _dispatch_seconds(db: Database, plan, execution_mode: str, workers: int = 0) -> float:
    """One timed Dispatcher run of ``plan`` on a fresh runtime context."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
    )
    start = time.perf_counter()
    Dispatcher(ctx).run(plan)
    return time.perf_counter() - start


def _execute_seconds(db: Database, sql: str, execution_mode: str) -> tuple[float, dict]:
    """One timed *cold* end-to-end ``db.execute`` (optimizer included).

    The plan cache is cleared first so every repetition pays the full
    compile pipeline; warm (cached) latency is ``bench_prepared``'s metric.
    """
    db.plan_cache.clear()
    start = time.perf_counter()
    result = db.execute(sql, mode=DynamicMode.FULL, execution_mode=execution_mode)
    elapsed = time.perf_counter() - start
    return elapsed, result.profile.phases.as_dict()


def run_benchmark(repetitions: int = REPETITIONS, workers: int = 0) -> dict:
    """Measure every harness query; return the result document.

    ``workers`` > 0 additionally times the morsel-parallel executor at that
    worker count (dispatcher-level only), adding ``parallel_s`` per query.
    """
    db = build_database(CONFIG)
    queries = []
    totals = {"row": 0.0, "batch": 0.0}
    for query in ALL_QUERIES:
        plan, __scia, __opt = db.plan(query.sql, mode=DynamicMode.FULL)
        entry = {"name": query.name, "category": query.category}
        for mode in ("row", "batch"):
            best = min(
                _dispatch_seconds(db, plan, mode) for __ in range(repetitions)
            )
            entry[f"{mode}_s"] = round(best, 6)
            totals[mode] += best
            runs = [_execute_seconds(db, query.sql, mode) for __ in range(2)]
            best_run = min(runs, key=lambda r: r[0])
            entry[f"end_to_end_{mode}_s"] = round(best_run[0], 6)
            entry[f"phases_{mode}"] = {
                k: round(v, 6) for k, v in best_run[1].items()
            }
        if workers > 0:
            entry["parallel_s"] = round(
                min(
                    _dispatch_seconds(db, plan, "parallel", workers)
                    for __ in range(repetitions)
                ),
                6,
            )
            entry["parallel_workers"] = workers
        entry["speedup"] = round(entry["row_s"] / entry["batch_s"], 2)
        entry["end_to_end_speedup"] = round(
            entry["end_to_end_row_s"] / entry["end_to_end_batch_s"], 2
        )
        queries.append(entry)
    document = {
        "scale_factor": CONFIG.scale_factor,
        "repetitions": repetitions,
        "metric": "best-of-N wall-clock seconds (time.perf_counter)",
        "queries": queries,
        "total": {
            "row_s": round(totals["row"], 6),
            "batch_s": round(totals["batch"], 6),
            "speedup": round(totals["row"] / totals["batch"], 2),
        },
        # Engine-wide counters/gauges/histograms accumulated over the whole
        # run (plan-cache traffic, reoptimizer activity, buffer-pool hit
        # rate, per-query cost distribution).
        "metrics": db.metrics.snapshot(),
    }
    return stamp_document(document)


def _render(document: dict) -> str:
    lines = [
        "Executor wall-clock: row vs batch path "
        f"(TPC-D sf={document['scale_factor']}, best of {document['repetitions']})",
        f"{'query':<8}{'row s':>10}{'batch s':>10}{'speedup':>9}{'end-to-end':>12}",
    ]
    for entry in document["queries"]:
        lines.append(
            f"{entry['name']:<8}{entry['row_s']:>10.3f}{entry['batch_s']:>10.3f}"
            f"{entry['speedup']:>8.2f}x{entry['end_to_end_speedup']:>11.2f}x"
        )
    total = document["total"]
    lines.append(
        f"{'TOTAL':<8}{total['row_s']:>10.3f}{total['batch_s']:>10.3f}"
        f"{total['speedup']:>8.2f}x"
    )
    return "\n".join(lines)


def test_batch_path_halves_wallclock(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "wallclock", _render(document))
    assert document["total"]["speedup"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description="row vs batch wall-clock benchmark")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also time the morsel-parallel executor at this worker count",
    )
    args = parser.parse_args()
    doc = run_benchmark(workers=args.workers)
    if args.workers <= 0:
        # The committed document stays a pure row-vs-batch comparison;
        # parallel timings live in BENCH_parallel.json.
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    if args.workers > 0:
        for entry in doc["queries"]:
            print(
                f"  {entry['name']}: parallel({args.workers} workers) "
                f"{entry['parallel_s']:.3f}s"
            )
    else:
        print(f"\nwrote {JSON_PATH}")
