"""Columnar execution: NumPy kernels and zone-map skipping vs row/batch.

Like ``bench_parallel``, this benchmark reports *real* elapsed time
(``time.perf_counter``), not the simulated cost clock.  Each query is
optimized once (FULL mode) and the plan is dispatched repeatedly under
``execution_mode="row"``, ``"batch"`` and ``"columnar"``; every columnar
run under the default ``zone_map_cost_mode="charge"`` is also checked
against the batch run for the parity contract of
``src/repro/executor/columnar.py``: byte-identical rows, bit-identical
simulated cost and buffer statistics — a benchmark result with broken
parity is a bug, not a data point.

Two workloads run:

* **TPC-D harness queries** on the standard (indexed) database — the
  vectorization data points.  Q6's speedup here is bounded by design:
  charge mode replays every page's simulated buffer/CPU charges in serial
  order to stay bit-identical, and that bookkeeping floor is shared with
  the batch path.
* **Clustered zone scans** (``ZONESCAN``/``ZONERANGE``) on an index-free
  copy of the database, so the optimizer picks a sequential scan — the
  situation zone maps target.  lineitem is generated in ``l_orderkey``
  order, so orderkey ranges prune ~90% of page groups.  These run in both
  cost modes: ``"charge"`` (parity-checked, skips save only real work)
  and ``"free"`` (skips also avoid the simulated page charges, modelling
  storage that can actually skip the I/O).

The speedup gate: the clustered zone scans, in aggregate, at least
``REQUIRED_SPEEDUP``x faster columnar (free mode) than batch, with a
non-zero skip rate.  Results go to ``BENCH_columnar.json`` at the
repository root and ``results/columnar.txt``.  Runs under pytest
(``pytest benchmarks/bench_columnar.py``) or as a script with knobs::

    python benchmarks/bench_columnar.py [--smoke] [--scale 0.05]
                                        [--repetitions 3]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro import Database, DynamicMode
from repro.bench import ExperimentConfig, stamp_document
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES
from repro.workloads.tpcd.datagen import TpcdConfig, generate_tpcd

SCALE_FACTOR = 0.05
SMOKE_SCALE_FACTOR = 0.01
REPETITIONS = 3
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"

#: The speedup gate: the clustered zone scans, in aggregate, this much
#: faster columnar (free cost mode) than the serial batch path.  No CPU
#: gate — single-core vectorization plus scan skipping needs no extra
#: cores — so the gate is always enforced.
REQUIRED_SPEEDUP = 2.0

#: The scan-heavy gate queries (built by :func:`_zone_workload`).
SCAN_HEAVY = ("ZONESCAN", "ZONERANGE")


def _build_db(scale_factor: float, build_indexes: bool) -> Database:
    config = ExperimentConfig(scale_factor=scale_factor)
    db = Database(config.engine_config())
    generate_tpcd(
        db,
        TpcdConfig(scale_factor=scale_factor, build_indexes=build_indexes),
    )
    return db


def _dispatch(db: Database, plan, execution_mode: str, **updates):
    """One timed Dispatcher run on a fresh runtime context."""
    config = db.config.with_updates(execution_mode=execution_mode, **updates)
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    start = time.perf_counter()
    result = Dispatcher(ctx).run(plan)
    elapsed = time.perf_counter() - start
    ctx.temp_manager.drop_all()
    return elapsed, result, ctx


def _best(db, plan, mode, repetitions, **updates):
    """Best-of-N timed dispatches after one untimed warm-up (the warm-up
    builds/syncs column stores and populates compiled-kernel caches, which
    are one-time costs shared by every later execution of the plan)."""
    _dispatch(db, plan, mode, **updates)
    return min(
        (_dispatch(db, plan, mode, **updates) for __ in range(repetitions)),
        key=lambda r: r[0],
    )


def _check_parity(batch, batch_ctx, col, col_ctx) -> list[str]:
    """The charge-mode parity contract, as a list of violations."""
    violations = []
    if col.rows != batch.rows:
        violations.append("rows differ")
    if col_ctx.clock.breakdown != batch_ctx.clock.breakdown:
        violations.append("cost breakdown differs")
    if col_ctx.clock.now != batch_ctx.clock.now:
        violations.append("total cost differs")
    if col_ctx.buffer_pool.stats != batch_ctx.buffer_pool.stats:
        violations.append("buffer statistics differ")
    return violations


def _zone_workload(db: Database) -> list[tuple[str, str]]:
    """Clustered-orderkey scans whose zone maps prune most page groups."""
    n_orders = len(db.catalog.table("orders").rows)
    tenth = max(1, n_orders // 10)
    return [
        (
            "ZONESCAN",
            "SELECT sum(l_extendedprice) AS revenue FROM lineitem "
            f"WHERE l_orderkey < {tenth}",
        ),
        (
            "ZONERANGE",
            "SELECT l_orderkey, l_quantity, l_extendedprice FROM lineitem "
            f"WHERE l_orderkey >= {4 * tenth} AND l_orderkey < {5 * tenth}",
        ),
    ]


def _measure(db, name, category, sql, repetitions, with_free) -> dict:
    plan, __scia, __opt = db.plan(sql, mode=DynamicMode.FULL)
    best_row, __, __ctx = _best(db, plan, "row", repetitions)
    best_batch, batch_result, batch_ctx = _best(db, plan, "batch", repetitions)
    best_col, col_result, col_ctx = _best(db, plan, "columnar", repetitions)
    violations = _check_parity(batch_result, batch_ctx, col_result, col_ctx)
    stats = col_ctx.columnar
    total_groups = stats.groups_read + stats.groups_skipped
    entry = {
        "name": name,
        "category": category,
        "row_s": round(best_row, 6),
        "batch_s": round(best_batch, 6),
        "columnar_s": round(best_col, 6),
        "speedup_vs_row": round(best_row / best_col, 2),
        "speedup_vs_batch": round(best_batch / best_col, 2),
        "columnar_pipelines": stats.pipelines,
        "keyed_pipelines": stats.keyed_pipelines,
        "groups_read": stats.groups_read,
        "groups_skipped": stats.groups_skipped,
        "pages_skipped": stats.pages_skipped,
        "skip_rate": round(
            stats.groups_skipped / total_groups if total_groups else 0.0, 4
        ),
        "parity": not violations,
    }
    if violations:
        entry["violations"] = violations
    if with_free:
        best_free, free_result, __free_ctx = _best(
            db, plan, "columnar", repetitions, zone_map_cost_mode="free"
        )
        entry["columnar_free_s"] = round(best_free, 6)
        entry["speedup_free_vs_batch"] = round(best_batch / best_free, 2)
        if free_result.rows != batch_result.rows:
            entry["parity"] = False
            entry.setdefault("violations", []).append("free-mode rows differ")
    return entry


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    repetitions: int = REPETITIONS,
) -> dict:
    """Measure row vs batch vs columnar wall-clock for every query."""
    db = _build_db(scale_factor, build_indexes=True)
    queries = [
        _measure(db, q.name, q.category, q.sql, repetitions, with_free=False)
        for q in ALL_QUERIES
    ]
    zone_db = _build_db(scale_factor, build_indexes=False)
    queries.extend(
        _measure(zone_db, name, "clustered", sql, repetitions, with_free=True)
        for name, sql in _zone_workload(zone_db)
    )

    scan_heavy = [q for q in queries if q["name"] in SCAN_HEAVY]
    batch_total = sum(q["batch_s"] for q in scan_heavy)
    charge_total = sum(q["columnar_s"] for q in scan_heavy)
    free_total = sum(q["columnar_free_s"] for q in scan_heavy)
    document = {
        "scale_factor": scale_factor,
        "repetitions": repetitions,
        "metric": "best-of-N wall-clock seconds (time.perf_counter)",
        "cost_modes": {
            "charge": "default; simulated costs byte-identical across modes",
            "free": "skipped groups charge nothing (documented divergence)",
        },
        "queries": queries,
        "scan_heavy": {
            "names": list(SCAN_HEAVY),
            "batch_s": round(batch_total, 6),
            "columnar_charge_s": round(charge_total, 6),
            "columnar_free_s": round(free_total, 6),
            "speedup_charge": round(batch_total / charge_total, 2),
            "speedup_free": round(batch_total / free_total, 2),
        },
        "speedup_gate": {
            "required": REQUIRED_SPEEDUP,
            "mode": "free",
            "enforced": True,
            "reason": "enforced (single-core vectorization, no CPU gate)",
        },
        "parity_ok": all(q["parity"] for q in queries),
        "zone_maps_skipped": any(q["groups_skipped"] > 0 for q in queries),
    }
    return stamp_document(document, {"speedup_gate": 0})


def _render(document: dict) -> str:
    header = (
        f"{'query':<10}{'row s':>9}{'batch s':>9}{'col s':>9}{'free s':>9}"
        f"{'vs row':>8}{'vs bat':>8}{'skip%':>7}{'parity':>8}"
    )
    lines = [
        "Columnar kernels + zone maps vs row/batch "
        f"(TPC-D sf={document['scale_factor']}, best of {document['repetitions']})",
        header,
    ]
    for entry in document["queries"]:
        free = entry.get("columnar_free_s")
        lines.append(
            f"{entry['name']:<10}{entry['row_s']:>9.3f}{entry['batch_s']:>9.3f}"
            f"{entry['columnar_s']:>9.3f}"
            + (f"{free:>9.3f}" if free is not None else f"{'-':>9}")
            + f"{entry['speedup_vs_row']:>7.2f}x{entry['speedup_vs_batch']:>7.2f}x"
            f"{entry['skip_rate'] * 100:>6.1f}%"
            f"{'ok' if entry['parity'] else 'FAIL':>8}"
        )
    heavy = document["scan_heavy"]
    gate = document["speedup_gate"]
    lines.append(
        f"scan-heavy ({','.join(heavy['names'])}): "
        f"{heavy['speedup_charge']:.2f}x charge-mode, "
        f"{heavy['speedup_free']:.2f}x free-mode vs batch "
        f"(gate {gate['required']}x on free mode, {gate['reason']})"
    )
    return "\n".join(lines)


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run (sf={SMOKE_SCALE_FACTOR}, 1 repetition, no gate)",
    )
    parser.add_argument("--scale", type=float, default=None, help="TPC-D scale factor")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="best-of-N repetitions"
    )
    return parser.parse_args(argv)


def test_columnar_speedup(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "columnar", _render(document))
    assert document["parity_ok"], [
        q for q in document["queries"] if not q["parity"]
    ]
    assert document["zone_maps_skipped"], "no zone-map skip fired anywhere"
    assert document["scan_heavy"]["speedup_free"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if args.smoke else REPETITIONS
    )
    doc = run_benchmark(scale, repetitions)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    if not doc["parity_ok"]:
        raise SystemExit("parity violations detected")
    if not doc["zone_maps_skipped"]:
        raise SystemExit("no zone-map skip fired anywhere")
    if not args.smoke and doc["scan_heavy"]["speedup_free"] < REQUIRED_SPEEDUP:
        raise SystemExit(
            f"scan-heavy free-mode speedup {doc['scan_heavy']['speedup_free']}x "
            f"below gate {REQUIRED_SPEEDUP}x"
        )
    if not args.smoke:
        print(f"\nwrote {JSON_PATH}")
