"""Experiment E7 — ablating the statistics-collectors insertion algorithm.

Section 2.5's trade-off: collecting at too many points costs too much;
collecting at too few misses re-optimization opportunities.  This ablation
runs a complex query with three budgets:

* ``mu = 0``   — every budgeted statistic pruned (bare collectors only),
* ``mu = 0.05`` — the paper's default,
* ``mu = 1.0`` — effectively everything kept,

and reports overhead and achieved improvement.  The default budget should
capture (nearly) all of the improvement of unlimited collection while
spending less on statistics.
"""

from __future__ import annotations

from conftest import write_result

from repro import Database, DynamicMode, EngineConfig
from repro.bench import render_table
from repro.config import ReoptimizationParameters
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

PARAMS = {"value1": 80, "value2": 80}
DATA = SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)


def _run(mu: float):
    db = Database(EngineConfig().with_updates(reopt=ReoptimizationParameters(mu=mu)))
    build_running_example(db, DATA)
    off = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.OFF)
    full = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.FULL)
    return off.profile, full.profile


def test_scia_budget_ablation(benchmark, results_dir):
    def run():
        return {mu: _run(mu) for mu in (0.0, 0.05, 1.0)}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    summary = {}
    for mu, (off, full) in outcomes.items():
        improvement = 100 * (1 - full.total_cost / off.total_cost)
        rows.append(
            [
                f"{mu:g}",
                str(full.statistics_kept),
                str(full.statistics_dropped),
                f"{full.breakdown.stats_cpu:.1f}",
                f"{improvement:.1f}%",
                str(full.plan_switches),
            ]
        )
        summary[mu] = {
            "kept": full.statistics_kept,
            "stats_cpu": round(full.breakdown.stats_cpu, 1),
            "improvement_pct": round(improvement, 1),
        }
    table = render_table(
        ["mu", "stats kept", "dropped", "stats cpu", "improvement", "switches"],
        rows,
        title="SCIA budget ablation on the running example",
    )
    write_result(results_dir, "scia_ablation", table)
    benchmark.extra_info["by_mu"] = {str(k): v for k, v in summary.items()}

    zero, default, unlimited = outcomes[0.0], outcomes[0.05], outcomes[1.0]
    # Budget pruning is monotone in kept statistics and collection cost.
    assert zero[1].statistics_kept == 0
    assert default[1].statistics_kept <= unlimited[1].statistics_kept
    assert zero[1].breakdown.stats_cpu <= default[1].breakdown.stats_cpu + 1e-9
    assert default[1].breakdown.stats_cpu <= unlimited[1].breakdown.stats_cpu + 1e-9
    # The default budget achieves (essentially) the unlimited improvement.
    default_improvement = 1 - default[1].total_cost / default[0].total_cost
    unlimited_improvement = 1 - unlimited[1].total_cost / unlimited[0].total_cost
    assert default_improvement >= unlimited_improvement - 0.02
