"""Concurrent-server throughput: interleaved TPC-D sessions vs serial.

PR 8's tentpole benchmark.  A workload of simulated clients — each with its
own :class:`~repro.engine.session.Session` and statement script drawn from
the TPC-D query mix — is run two ways on the same database:

* **serial** — every statement back to back through the inline engine,
  one query at a time (the pre-server engine).
* **concurrent** — every client on its own thread through the
  :class:`~repro.engine.server.QueryServer`, under admission control and
  the global memory broker.

Both worker modes are measured: ``thread`` (shared-memory, mid-query
re-grants reach running queries, but the GIL serialises pure-Python
execution) and ``fork`` (one forked process per statement — real
multi-core scaling where ``os.fork`` exists).

The parity record is unconditional: the concurrent run must produce
byte-identical rows, statement by statement, client by client, vs the
serial baseline — a benchmark result with broken parity is a bug, not a
data point.  The throughput gate (>= ``REQUIRED_SPEEDUP``x at
``GATE_SESSIONS`` sessions, best worker mode) is hardware-dependent and is
enforced only when the host grants this process at least ``REQUIRED_CPUS``
cores; smaller hosts still run the curve and the parity checks, and the
JSON document records the gate as skipped with the reason.

Results go to ``BENCH_server.json`` at the repository root and
``results/server.txt``.  Runs under pytest
(``pytest benchmarks/bench_server.py``) or as a script with knobs::

    python benchmarks/bench_server.py [--smoke] [--scale 0.02]
                                      [--sessions 1,2,4]
                                      [--statements 6]
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro import Database, MetricsRegistry
from repro.bench import ExperimentConfig, stamp_document
from repro.workloads import (
    assert_parity,
    build_tpcd_scripts,
    run_concurrent,
    run_serial,
)
from repro.workloads.tpcd import generate_tpcd

SCALE_FACTOR = 0.02
SMOKE_SCALE_FACTOR = 0.005
SESSION_COUNTS = (1, 2, 4)
STATEMENTS_PER_SESSION = 6
SMOKE_STATEMENTS = 2
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_server.json"

REQUIRED_SPEEDUP = 2.0
GATE_SESSIONS = 4
REQUIRED_CPUS = 4

#: Metrics worth surfacing in the benchmark document (prefix match).
TELEMETRY_PREFIXES = ("server.", "broker.")


def available_cpus() -> int:
    """CPUs actually granted to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def worker_modes() -> tuple[str, ...]:
    """Thread mode always; fork mode where the platform can fork."""
    return ("thread", "fork") if hasattr(os, "fork") else ("thread",)


def _build_server_database(
    scale_factor: float, worker_mode: str, max_sessions: int
) -> Database:
    """A TPC-D database whose server runs in the given worker mode."""
    experiment = ExperimentConfig(scale_factor=scale_factor)
    engine = experiment.engine_config().with_updates(
        server_worker_mode=worker_mode,
        max_sessions=max_sessions,
    )
    # Own registry per mode: telemetry in the document must not mix the
    # thread-mode and fork-mode runs through the process-wide default.
    db = Database(engine, metrics=MetricsRegistry())
    generate_tpcd(db, experiment.tpcd_config())
    return db


def _telemetry(db: Database) -> dict:
    """Admission/broker counters accumulated over this database's runs."""
    snapshot = db.metrics_snapshot()
    return {
        name: payload
        for name, payload in sorted(snapshot.items())
        if name.startswith(TELEMETRY_PREFIXES)
    }


def _run_mode(
    db: Database,
    worker_mode: str,
    session_counts: tuple[int, ...],
    statements_per_session: int,
) -> dict:
    """The scaling curve for one worker mode on one database."""
    points = []
    for sessions in session_counts:
        scripts = build_tpcd_scripts(
            sessions=sessions, statements_per_session=statements_per_session
        )
        # Warm the plan cache so both measurements compare steady-state
        # execution, not first-compile overhead.
        run_serial(db, scripts)
        serial_rows, serial_elapsed = run_serial(db, scripts)
        report = run_concurrent(db.server, scripts)
        assert_parity(serial_rows, report)
        statements = report.statements
        serial_qps = statements / serial_elapsed if serial_elapsed > 0 else 0.0
        point = report.summary()
        point.update(
            {
                "serial_s": round(serial_elapsed, 4),
                "serial_qps": round(serial_qps, 2),
                "speedup": round(
                    report.throughput_qps / serial_qps if serial_qps > 0 else 0.0, 2
                ),
                "parity": True,
            }
        )
        points.append(point)
    return {
        "worker_mode": worker_mode,
        "points": points,
        "telemetry": _telemetry(db),
    }


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    session_counts: tuple[int, ...] = SESSION_COUNTS,
    statements_per_session: int = STATEMENTS_PER_SESSION,
) -> dict:
    """Measure serial vs concurrent TPC-D throughput per worker mode."""
    modes = []
    for worker_mode in worker_modes():
        db = _build_server_database(
            scale_factor, worker_mode, max_sessions=max(session_counts)
        )
        modes.append(
            _run_mode(db, worker_mode, session_counts, statements_per_session)
        )

    gate_sessions = max(session_counts)
    cpus = available_cpus()
    gate_enforced = cpus >= REQUIRED_CPUS and gate_sessions >= GATE_SESSIONS

    def speedup_at_gate(mode: dict) -> float:
        for point in mode["points"]:
            if point["sessions"] == gate_sessions:
                return point["speedup"]
        return 0.0

    best = max(modes, key=speedup_at_gate)
    document = {
        "scale_factor": scale_factor,
        "session_counts": list(session_counts),
        "statements_per_session": statements_per_session,
        "cpus_available": cpus,
        "metric": "completed statements per wall-clock second",
        "modes": modes,
        "best_mode": best["worker_mode"],
        "best_speedup": speedup_at_gate(best),
        "throughput_gate": {
            "at_sessions": gate_sessions,
            "required_speedup": REQUIRED_SPEEDUP,
            "enforced": gate_enforced,
            "reason": (
                "enforced"
                if gate_enforced
                else f"skipped: {cpus} CPU(s) granted, need {REQUIRED_CPUS}"
            ),
        },
        "parity_ok": all(
            point["parity"] for mode in modes for point in mode["points"]
        ),
    }
    return stamp_document(document, {"throughput_gate": REQUIRED_CPUS})


def _render(document: dict) -> str:
    lines = [
        "Concurrent server throughput vs serial baseline "
        f"(TPC-D sf={document['scale_factor']}, "
        f"{document['statements_per_session']} stmts/session, "
        f"{document['cpus_available']} CPU(s))",
        f"{'mode':<8}{'sessions':>9}{'serial qps':>12}{'server qps':>12}"
        f"{'spdup':>7}{'p50 ms':>9}{'p99 ms':>9}{'parity':>8}",
    ]
    for mode in document["modes"]:
        for point in mode["points"]:
            lines.append(
                f"{mode['worker_mode']:<8}{point['sessions']:>9}"
                f"{point['serial_qps']:>12.2f}{point['throughput_qps']:>12.2f}"
                f"{point['speedup']:>6.2f}x{point['latency_p50_ms']:>9.1f}"
                f"{point['latency_p99_ms']:>9.1f}"
                f"{'ok' if point['parity'] else 'FAIL':>8}"
            )
    gate = document["throughput_gate"]
    lines.append(
        f"gate: best mode {document['best_mode']} at {gate['at_sessions']} "
        f"sessions = {document['best_speedup']:.2f}x "
        f"(need {gate['required_speedup']}x, {gate['reason']})"
    )
    return "\n".join(lines)


def _assert_document(document: dict) -> None:
    assert document["parity_ok"], "concurrent rows diverged from serial baseline"
    for mode in document["modes"]:
        telemetry = mode["telemetry"]
        assert telemetry.get("server.admitted", {}).get("value", 0) >= 1
        assert telemetry.get("broker.leases", {}).get("value", 0) >= 1
        for point in mode["points"]:
            assert point["errors"] == 0
    if document["throughput_gate"]["enforced"]:
        assert document["best_speedup"] >= REQUIRED_SPEEDUP, (
            f"best mode {document['best_mode']} reached only "
            f"{document['best_speedup']}x at "
            f"{document['throughput_gate']['at_sessions']} sessions"
        )


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            f"tiny run (sf={SMOKE_SCALE_FACTOR}, sessions 1,2, "
            f"{SMOKE_STATEMENTS} stmts/session)"
        ),
    )
    parser.add_argument("--scale", type=float, default=None, help="TPC-D scale factor")
    parser.add_argument(
        "--sessions",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=None,
        help="comma-separated concurrent session counts (default 1,2,4)",
    )
    parser.add_argument(
        "--statements", type=int, default=None, help="statements per session"
    )
    return parser.parse_args(argv)


def test_server_throughput(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "server", _render(document))
    _assert_document(document)


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    sessions = args.sessions if args.sessions is not None else (
        (1, 2) if args.smoke else SESSION_COUNTS
    )
    statements = args.statements if args.statements is not None else (
        SMOKE_STATEMENTS if args.smoke else STATEMENTS_PER_SESSION
    )
    doc = run_benchmark(scale, sessions, statements)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    try:
        _assert_document(doc)
    except AssertionError as exc:
        raise SystemExit(str(exc))
    if not args.smoke:
        print(f"\nwrote {JSON_PATH}")
