"""Experiment E8 — the plan-modification mechanism (paper Figures 4-6).

Runs the running example with a correlated filter the optimizer
under-estimates by ~13x and verifies every step of the Figure 6 pipeline:
the drift triggers Equations 1/2, the remainder is regenerated as SQL over
a temporary table, re-parsed, re-bound, re-optimized, accepted, and the
query finishes faster under the new plan with identical results.
"""

from __future__ import annotations

from conftest import write_result

from repro import Database, DynamicMode
from repro.bench import render_table
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)

PARAMS = {"value1": 80, "value2": 80}


def test_plan_modification_mechanism(benchmark, results_dir):
    def run():
        db = Database()
        build_running_example(
            db, SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0)
        )
        off = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.OFF)
        full = db.execute(RUNNING_EXAMPLE_SQL, params=PARAMS, mode=DynamicMode.FULL)
        return off, full

    off, full = benchmark.pedantic(run, rounds=1, iterations=1)

    improvement = 100 * (1 - full.profile.total_cost / off.profile.total_cost)
    table = render_table(
        ["metric", "value"],
        [
            ["normal cost", f"{off.profile.total_cost:.1f}"],
            ["re-optimized cost", f"{full.profile.total_cost:.1f}"],
            ["improvement", f"{improvement:.1f}%"],
            ["plan switches", str(full.profile.plan_switches)],
            ["optimizer invocations", str(full.profile.optimizer_invocations)],
            ["re-optimization cost units", f"{full.profile.breakdown.optimizer:.1f}"],
            ["remainder SQL", full.profile.remainder_sqls[0][:70] + "..."],
        ],
        title="Plan modification on the running example (paper Figures 4-6)",
    )
    write_result(results_dir, "plan_modification", table)
    benchmark.extra_info["improvement_pct"] = round(improvement, 1)

    assert full.profile.plan_switches == 1
    assert improvement > 15.0
    # The remainder went through the SQL round trip over a temp table.
    assert full.profile.remainder_sqls and "__temp_" in full.profile.remainder_sqls[0]
    # The switch paid for an extra optimizer invocation.
    assert full.profile.optimizer_invocations == off.profile.optimizer_invocations + 1
    assert sorted(map(str, off.rows)) == sorted(map(str, full.rows))
