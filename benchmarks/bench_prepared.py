"""Cold vs warm end-to-end latency with the plan cache and prepared statements.

Every other benchmark reports the *simulated* cost clock; like
``bench_wallclock`` this one measures real elapsed time.  Each TPC-D query
is executed end-to-end (parse, bind, optimize, SCIA, execute) twice over:

* **cold** — the plan cache is cleared before every run, so each execution
  pays the full compile pipeline, exactly like the engine before the cache
  existed;
* **warm** — the cache is populated once, then repeated executions serve
  the cloned cached plan and skip parse-to-SCIA entirely.

Results must be *byte-identical* between the two (the cache serves clones
of the same deterministic plan and the simulated cost clock is charged
identically), so the comparison isolates pure compile-time overhead.

The benchmark runs under ``DynamicMode.MEMORY_ONLY``: statistics collectors
and dynamic memory re-allocation stay armed (cold runs pay the full
parse/bind/optimize/SCIA pipeline), but mid-query *plan modification* is
off.  That is deliberate — a plan switch proves the optimizer's estimates
wrong and therefore bumps the statistics epoch, correctly invalidating the
cached plan; a statement that re-optimizes mid-flight on every execution
must never be served warm, so under FULL mode the complex queries (which
switch even with fresh statistics at this scale) measure the invalidation
path rather than the cache.  ``test_full_mode_switching_is_never_served_stale``
pins that behaviour.

Writes ``BENCH_prepared.json`` at the repository root and
``results/prepared.txt``.  Runs under pytest
(``pytest benchmarks/bench_prepared.py``), as a script
(``python benchmarks/bench_prepared.py``), or as a quick CI smoke test
(``python benchmarks/bench_prepared.py --smoke``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro import DynamicMode
from repro.bench import ExperimentConfig, build_database, stamp_document
from repro.workloads.tpcd import CatalogProfile, query_by_name

#: Accurate statistics: warm-path measurements should not be polluted by
#: mid-query re-optimizations (which bump the statistics epoch and
#: deliberately invalidate the cache).
CONFIG = ExperimentConfig(scale_factor=0.02, catalog=CatalogProfile.FRESH)
QUERY_NAMES = ("Q3", "Q5", "Q7", "Q8", "Q10")
COLD_REPETITIONS = 3
WARM_REPETITIONS = 10
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_prepared.json"

#: Acceptance bound: at least REQUIRED_SPEEDUP end-to-end on at least
#: REQUIRED_COUNT of the complex queries (Q5/Q7/Q8).
REQUIRED_SPEEDUP = 3.0
REQUIRED_COUNT = 2
COMPLEX_NAMES = ("Q5", "Q7", "Q8")


#: Benchmark mode: dynamic memory re-allocation armed, plan modification
#: off (see module docstring).
BENCH_MODE = DynamicMode.MEMORY_ONLY


def _timed_execute(db, stmt, params=None):
    start = time.perf_counter()
    result = stmt.execute(params, mode=BENCH_MODE)
    return time.perf_counter() - start, result


def bench_query(db, sql: str, cold_reps: int, warm_reps: int) -> dict:
    """Cold/warm best-of measurements plus identity checks for one query."""
    stmt = db.prepare(sql)
    cold_s = float("inf")
    cold_result = None
    for __ in range(cold_reps):
        db.plan_cache.clear()
        seconds, result = _timed_execute(db, stmt)
        assert not result.profile.plan_cache_hit
        cold_s = min(cold_s, seconds)
        cold_result = result

    # Populate, then measure warm executions.
    db.plan_cache.clear()
    __, populate = _timed_execute(db, stmt)
    warm_s = float("inf")
    warm_result = populate
    for __ in range(warm_reps):
        seconds, result = _timed_execute(db, stmt)
        assert result.profile.plan_cache_hit, "warm execution missed the plan cache"
        warm_s = min(warm_s, seconds)
        warm_result = result

    assert warm_result.rows == cold_result.rows, "warm rows differ from cold"
    assert warm_result.profile.total_cost == cold_result.profile.total_cost, (
        "warm simulated cost differs from cold"
    )
    cold_phases = cold_result.profile.phases
    return {
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 2),
        "rows": len(cold_result.rows),
        "identical_results": True,
        "cold_phases": {k: round(v, 6) for k, v in cold_phases.as_dict().items()},
        "cold_compile_s": round(cold_phases.compile_s, 6),
        "warm_execute_s": round(warm_result.profile.phases.execute_s, 6),
    }


def run_benchmark(
    config: ExperimentConfig = CONFIG,
    cold_reps: int = COLD_REPETITIONS,
    warm_reps: int = WARM_REPETITIONS,
) -> dict:
    """Measure every benchmark query; return the result document."""
    db = build_database(config)
    queries = []
    for name in QUERY_NAMES:
        query = query_by_name(name)
        entry = {"name": query.name, "category": query.category}
        entry.update(bench_query(db, query.sql, cold_reps, warm_reps))
        queries.append(entry)
    cache = db.plan_cache.stats
    document = {
        "scale_factor": config.scale_factor,
        "mode": BENCH_MODE.value,
        "cold_repetitions": cold_reps,
        "warm_repetitions": warm_reps,
        "metric": "best-of-N end-to-end wall-clock seconds (time.perf_counter)",
        "queries": queries,
        "plan_cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
            "stores": cache.stores,
            "hit_rate": round(cache.hit_rate, 4),
        },
    }
    return stamp_document(document)


def _render(document: dict) -> str:
    lines = [
        "Prepared-statement end-to-end latency: cold vs plan-cache warm "
        f"(TPC-D sf={document['scale_factor']})",
        f"{'query':<8}{'cold s':>10}{'warm s':>10}{'speedup':>9}"
        f"{'compile s':>11}{'identical':>11}",
    ]
    for entry in document["queries"]:
        lines.append(
            f"{entry['name']:<8}{entry['cold_s']:>10.4f}{entry['warm_s']:>10.4f}"
            f"{entry['speedup']:>8.2f}x{entry['cold_compile_s']:>11.4f}"
            f"{'yes' if entry['identical_results'] else 'NO':>11}"
        )
    cache = document["plan_cache"]
    lines.append(
        f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.0%})"
    )
    return "\n".join(lines)


def _meets_acceptance(document: dict) -> bool:
    fast_complex = [
        e
        for e in document["queries"]
        if e["name"] in COMPLEX_NAMES and e["speedup"] >= REQUIRED_SPEEDUP
    ]
    return len(fast_complex) >= REQUIRED_COUNT


def test_full_mode_switching_is_never_served_stale():
    """FULL mode: a plan switch bumps the epoch, so no stale warm serving."""
    db = build_database(
        ExperimentConfig(scale_factor=0.005, catalog=CatalogProfile.FRESH)
    )
    query = query_by_name("Q5")
    first = db.execute(query.sql, mode=DynamicMode.FULL)
    second = db.execute(query.sql, mode=DynamicMode.FULL)
    if first.profile.plan_switches:
        # The switch discredited the cached plan's estimates mid-execution;
        # the follow-up execution must re-optimize, not serve the stale plan.
        assert not second.profile.plan_cache_hit
    else:  # pragma: no cover - depends on scale/statistics
        assert second.profile.plan_cache_hit
    assert second.rows == first.rows


def test_warm_executions_beat_cold(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "prepared", _render(document))
    assert all(e["identical_results"] for e in document["queries"])
    assert _meets_acceptance(document), (
        f"need >= {REQUIRED_SPEEDUP}x on >= {REQUIRED_COUNT} of "
        f"{COMPLEX_NAMES}: {[(e['name'], e['speedup']) for e in document['queries']]}"
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        # Quick correctness pass for CI: tiny scale, one repetition each,
        # no timing assertions (shared runners make speedups noisy) — but
        # the byte-identity and cache-hit assertions inside bench_query
        # still run.
        doc = run_benchmark(
            ExperimentConfig(scale_factor=0.005, catalog=CatalogProfile.FRESH),
            cold_reps=1,
            warm_reps=2,
        )
        print(_render(doc))
        print("smoke OK")
    else:
        doc = run_benchmark()
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(_render(doc))
        if not _meets_acceptance(doc):
            print(f"WARNING: below {REQUIRED_SPEEDUP}x acceptance bound")
            sys.exit(1)
        print(f"\nwrote {JSON_PATH}")
