"""Experiment E4 — the paper's Figure 3 memory-re-allocation walk-through.

The running example executes under a constrained memory budget with the
catalog over-estimating the filter output (anti-correlated selection
attributes).  Statically, the Memory Manager grants the second hash join
only its minimum (the believed maximum does not fit) and the join runs in
two passes.  With dynamic re-allocation, the collector's observed
cardinality shrinks the join's demand, the Memory Manager is re-invoked,
and the join runs in one pass — the paper's 15000-estimated /
7500-observed scenario.
"""

from __future__ import annotations

from conftest import write_result

from repro import Database, DynamicMode, EngineConfig
from repro.bench import render_table
from repro.workloads.synthetic import SyntheticConfig, build_running_example

SQL = (
    "SELECT avg(rel1.selectattr1), avg(rel1.selectattr2), rel1.groupattr "
    "FROM rel1, rel2, rel3 "
    "WHERE rel1.selectattr1 < 60 AND rel1.selectattr2 < 60 "
    "AND rel1.joinattr2 = rel2.joinattr2 "
    "AND rel1.joinattr3 = rel3.joinattr3 "
    "GROUP BY rel1.groupattr"
)
BUDGET_PAGES = 210


def _build_db() -> Database:
    db = Database(EngineConfig().with_updates(query_memory_pages=BUDGET_PAGES))
    build_running_example(
        db,
        SyntheticConfig(
            rel1_rows=20_000, rel2_rows=8_000, rel3_rows=60_000,
            correlation=-1.0, index_rel3=False,
        ),
    )
    return db


def test_memory_reallocation_scenario(benchmark, results_dir):
    def run():
        db = _build_db()
        off = db.execute(SQL, mode=DynamicMode.OFF)
        memory = db.execute(SQL, mode=DynamicMode.MEMORY_ONLY)
        # Section 2.3 extension ablation: operators that respond to grant
        # changes mid-execution (not available in Paradise).
        responsive_db = Database(
            EngineConfig().with_updates(
                query_memory_pages=BUDGET_PAGES, responsive_hash_joins=True
            )
        )
        build_running_example(
            responsive_db,
            SyntheticConfig(
                rel1_rows=20_000, rel2_rows=8_000, rel3_rows=60_000,
                correlation=-1.0, index_rel3=False,
            ),
        )
        responsive = responsive_db.execute(SQL, mode=DynamicMode.MEMORY_ONLY)
        return off, memory, responsive

    off, memory, responsive = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            "static allocation",
            f"{off.profile.total_cost:.1f}",
            f"{off.profile.breakdown.write:.1f}",
            str(off.profile.memory_reallocations),
        ],
        [
            "dynamic re-allocation",
            f"{memory.profile.total_cost:.1f}",
            f"{memory.profile.breakdown.write:.1f}",
            str(memory.profile.memory_reallocations),
        ],
        [
            "dynamic + responsive operators",
            f"{responsive.profile.total_cost:.1f}",
            f"{responsive.profile.breakdown.write:.1f}",
            str(responsive.profile.memory_reallocations),
        ],
    ]
    table = render_table(
        ["execution", "total cost", "spill writes", "reallocations"],
        rows,
        title=f"Figure 3 scenario — {BUDGET_PAGES}-page budget",
    )
    write_result(results_dir, "memory_reallocation", table)
    benchmark.extra_info["static_cost"] = round(off.profile.total_cost, 1)
    benchmark.extra_info["dynamic_cost"] = round(memory.profile.total_cost, 1)

    # Paper shape: the statically allocated run spills; the re-allocated run
    # completes the join in one pass and is significantly faster.
    assert off.profile.breakdown.write > 0
    assert memory.profile.breakdown.write == 0.0
    assert memory.profile.memory_reallocations >= 1
    assert memory.profile.total_cost < 0.7 * off.profile.total_cost
    assert sorted(map(str, off.rows)) == sorted(map(str, memory.rows))
    # The responsive extension is never worse than the baseline algorithm.
    assert responsive.profile.total_cost <= memory.profile.total_cost * 1.02
    assert sorted(map(str, off.rows)) == sorted(map(str, responsive.rows))
