"""Probe-side join scaling: parallel hash-join pipelines vs serial batch.

The companion to ``bench_parallel`` for PR 4's tentpole: every TPC-D query
with joins is optimized once (FULL mode) and dispatched under
``execution_mode="batch"`` and ``execution_mode="parallel"`` at several
worker counts, with ``parallel_joins`` on — so hash joins whose probe side
is leaf-extractable fan the probe lookup itself across the worker pool.
Per query the document records how many probe-side join pipelines (and
pre-aggregating pipelines) actually fanned out, plus the rows shipped from
workers to the merge point.

The parity record is unconditional: every parallel run must produce
byte-identical rows, bit-identical simulated cost/CostBreakdown and buffer
statistics vs the serial batch run — a benchmark result with broken parity
is a bug, not a data point — and the document asserts that probe-side join
pipelines really ran on the join-heavy queries (the tentpole cannot
silently regress to leaf-only parallelism).

The speedup gate (join-heavy queries at least ``REQUIRED_SPEEDUP`` faster
at 4 workers, aggregated) is hardware-dependent by nature and is enforced
only when the host grants this process at least ``REQUIRED_CPUS`` cores;
smaller hosts still run the curve and the parity checks, and the JSON
document records the gate as skipped with the reason.

Results go to ``BENCH_parallel_joins.json`` at the repository root and
``results/parallel_joins.txt``.  Runs under pytest
(``pytest benchmarks/bench_parallel_joins.py``) or as a script with knobs::

    python benchmarks/bench_parallel_joins.py [--smoke] [--scale 0.05]
                                              [--workers 1,2,4]
                                              [--repetitions 3]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import Database, DynamicMode
from repro.bench import ExperimentConfig, build_database, stamp_document
from repro.executor.dispatcher import Dispatcher
from repro.executor.runtime import RuntimeContext
from repro.optimizer.cost_model import CostModel
from repro.storage import BufferPool, CostClock, TempTableManager
from repro.workloads.tpcd import ALL_QUERIES

SCALE_FACTOR = 0.05
SMOKE_SCALE_FACTOR = 0.01
REPETITIONS = 3
WORKER_COUNTS = (1, 2, 4)
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_joins.json"

#: The speedup gate: join-heavy queries, in aggregate, this much faster at
#: 4 workers than the serial batch path — asserted only on hosts that
#: actually grant the process enough CPUs to fan out to.
REQUIRED_SPEEDUP = 1.6
REQUIRED_CPUS = 4

#: Queries whose optimized plans probe a hash join through a
#: leaf-extractable child at these scale factors, so the probe lookup
#: itself fans out; the scaling gate (and the unconditional
#: join-pipelines-ran assertion) aggregate over these.
JOIN_HEAVY = ("Q3", "Q7", "Q10")

#: Every query with at least one join, benchmarked for the curve.
JOIN_QUERIES = ("Q3", "Q5", "Q7", "Q8", "Q10")


def available_cpus() -> int:
    """CPUs actually granted to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _dispatch(db: Database, plan, execution_mode: str, workers: int = 0):
    """One timed Dispatcher run on a fresh runtime context."""
    config = db.config.with_updates(
        execution_mode=execution_mode, parallel_workers=workers
    )
    clock = CostClock(config.cost)
    pool = BufferPool(config.buffer_pool_pages, clock)
    ctx = RuntimeContext(
        catalog=db.catalog,
        config=config,
        clock=clock,
        buffer_pool=pool,
        temp_manager=TempTableManager(db.catalog, pool),
        cost_model=CostModel(config),
        memory_budget_pages=config.query_memory_pages,
    )
    start = time.perf_counter()
    result = Dispatcher(ctx).run(plan)
    elapsed = time.perf_counter() - start
    ctx.temp_manager.drop_all()
    return elapsed, result, ctx


def _check_parity(batch, batch_ctx, parallel, parallel_ctx) -> list[str]:
    """The determinism contract, as a list of violations (empty = clean)."""
    violations = []
    if parallel.rows != batch.rows:
        violations.append("rows differ")
    if parallel_ctx.clock.breakdown != batch_ctx.clock.breakdown:
        violations.append("cost breakdown differs")
    if parallel_ctx.clock.now != batch_ctx.clock.now:
        violations.append("total cost differs")
    if parallel_ctx.buffer_pool.stats != batch_ctx.buffer_pool.stats:
        violations.append("buffer statistics differ")
    return violations


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    repetitions: int = REPETITIONS,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
) -> dict:
    """Measure the join scaling curve for every join-bearing query."""
    db = build_database(ExperimentConfig(scale_factor=scale_factor))
    queries = []
    for query in (q for q in ALL_QUERIES if q.name in JOIN_QUERIES):
        plan, __scia, __opt = db.plan(query.sql, mode=DynamicMode.FULL)
        best_batch, batch_result, batch_ctx = min(
            (_dispatch(db, plan, "batch") for __ in range(repetitions)),
            key=lambda r: r[0],
        )
        entry = {
            "name": query.name,
            "category": query.category,
            "batch_s": round(best_batch, 6),
            "parity": True,
        }
        for workers in worker_counts:
            best, result, ctx = min(
                (_dispatch(db, plan, "parallel", workers) for __ in range(repetitions)),
                key=lambda r: r[0],
            )
            violations = _check_parity(batch_result, batch_ctx, result, ctx)
            if violations:
                entry["parity"] = False
                entry.setdefault("violations", []).extend(
                    f"workers={workers}: {v}" for v in violations
                )
            entry[f"parallel{workers}_s"] = round(best, 6)
            entry[f"speedup{workers}"] = round(best_batch / best, 2)
            if workers == max(worker_counts):
                entry["pipelines"] = ctx.parallel.pipelines
                entry["join_pipelines"] = ctx.parallel.join_pipelines
                entry["preagg_pipelines"] = ctx.parallel.preagg_pipelines
                entry["morsels"] = ctx.parallel.morsels
                entry["rows_shipped"] = ctx.parallel.rows_shipped
        queries.append(entry)

    gate_workers = max(worker_counts)
    join_heavy = [q for q in queries if q["name"] in JOIN_HEAVY]
    batch_total = sum(q["batch_s"] for q in join_heavy)
    parallel_total = sum(q[f"parallel{gate_workers}_s"] for q in join_heavy)
    cpus = available_cpus()
    gate_enforced = cpus >= REQUIRED_CPUS and gate_workers >= REQUIRED_CPUS
    document = {
        "scale_factor": scale_factor,
        "repetitions": repetitions,
        "worker_counts": list(worker_counts),
        "cpus_available": cpus,
        "metric": "best-of-N wall-clock seconds (time.perf_counter)",
        "queries": queries,
        "join_heavy": {
            "names": list(JOIN_HEAVY),
            "batch_s": round(batch_total, 6),
            f"parallel{gate_workers}_s": round(parallel_total, 6),
            "speedup": round(batch_total / parallel_total, 2),
            "join_pipelines": sum(q["join_pipelines"] for q in join_heavy),
        },
        "speedup_gate": {
            "required": REQUIRED_SPEEDUP,
            "at_workers": gate_workers,
            "enforced": gate_enforced,
            "reason": (
                "enforced"
                if gate_enforced
                else f"skipped: {cpus} CPU(s) granted, need {REQUIRED_CPUS}"
            ),
        },
        "parity_ok": all(q["parity"] for q in queries),
        "join_pipelines_ran": all(q["join_pipelines"] >= 1 for q in join_heavy),
    }
    return stamp_document(document, {"speedup_gate": REQUIRED_CPUS})


def _render(document: dict) -> str:
    counts = document["worker_counts"]
    header = f"{'query':<8}{'batch s':>10}"
    for w in counts:
        header += f"{f'w{w} s':>10}{'spdup':>7}"
    header += f"{'joins':>7}{'parity':>8}"
    lines = [
        "Probe-side join scaling vs serial batch path "
        f"(TPC-D sf={document['scale_factor']}, best of {document['repetitions']}, "
        f"{document['cpus_available']} CPU(s))",
        header,
    ]
    for entry in document["queries"]:
        line = f"{entry['name']:<8}{entry['batch_s']:>10.3f}"
        for w in counts:
            line += f"{entry[f'parallel{w}_s']:>10.3f}{entry[f'speedup{w}']:>6.2f}x"
        line += f"{entry['join_pipelines']:>7}"
        line += f"{'ok' if entry['parity'] else 'FAIL':>8}"
        lines.append(line)
    heavy = document["join_heavy"]
    gate = document["speedup_gate"]
    lines.append(
        f"join-heavy ({','.join(heavy['names'])}): {heavy['speedup']:.2f}x "
        f"at {gate['at_workers']} workers, {heavy['join_pipelines']} probe "
        f"pipelines (gate {gate['required']}x, {gate['reason']})"
    )
    return "\n".join(lines)


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny run (sf={SMOKE_SCALE_FACTOR}, 1 repetition, workers 1,2)",
    )
    parser.add_argument("--scale", type=float, default=None, help="TPC-D scale factor")
    parser.add_argument(
        "--workers",
        type=lambda s: tuple(int(v) for v in s.split(",")),
        default=None,
        help="comma-separated worker counts (default 1,2,4)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="best-of-N repetitions"
    )
    return parser.parse_args(argv)


def test_parallel_join_scaling(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "parallel_joins", _render(document))
    assert document["parity_ok"], [
        q for q in document["queries"] if not q["parity"]
    ]
    assert document["join_pipelines_ran"], "no probe-side join pipeline fanned out"
    if document["speedup_gate"]["enforced"]:
        assert document["join_heavy"]["speedup"] >= REQUIRED_SPEEDUP


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    workers = args.workers if args.workers is not None else (
        (1, 2) if args.smoke else WORKER_COUNTS
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        1 if args.smoke else REPETITIONS
    )
    doc = run_benchmark(scale, repetitions, workers)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
    print(_render(doc))
    if not doc["parity_ok"]:
        raise SystemExit("parity violations detected")
    if not doc["join_pipelines_ran"]:
        raise SystemExit("no probe-side join pipeline fanned out")
    if not args.smoke:
        print(f"\nwrote {JSON_PATH}")
