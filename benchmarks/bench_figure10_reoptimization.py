"""Experiment E1 — paper Figure 10: Normal vs Re-Optimized execution.

The paper runs TPC-D Q1, Q3, Q5, Q6, Q7, Q8, Q10 at SF 3 with and without
Dynamic Re-Optimization (mu=0.05, theta1=0.05, theta2=0.2) and reports
normalized execution times.  Expected shape: simple queries (Q1, Q6) see no
benefit and only negligible overhead; medium queries (Q3, Q10) change
little; complex queries (Q5, Q7, Q8) improve substantially (paper: 10-30%).

Here: SF 0.01, coarse (8-bucket equi-width) catalog histograms standing in
for the estimation-error magnitudes the paper saw at SF 3.
"""

from __future__ import annotations

from conftest import write_result

from repro.bench import ExperimentConfig, comparison_table, run_experiment
from repro.core.modes import DynamicMode
from repro.workloads.tpcd import ALL_QUERIES

MODES = (DynamicMode.OFF, DynamicMode.FULL)
CONFIG = ExperimentConfig(scale_factor=0.01, memory_pages=192)


def test_figure10_normal_vs_reoptimized(benchmark, results_dir):
    comparisons = benchmark.pedantic(
        lambda: run_experiment(CONFIG, modes=MODES), rounds=1, iterations=1
    )
    table = comparison_table(
        comparisons, list(MODES),
        title="Figure 10 — Normal vs Re-Optimized (normalized, Normal = 100)",
    )
    write_result(results_dir, "figure10_reoptimization", table)

    by_name = {c.query.name: c for c in comparisons}
    benchmark.extra_info["improvement_pct"] = {
        name: round(c.improvement_pct(DynamicMode.FULL), 1)
        for name, c in by_name.items()
    }

    # Correctness: every query returns identical rows in both modes.
    assert all(c.row_sets_match for c in comparisons)

    # Shape assertions mirroring the paper's claims:
    # 1. Simple queries pay (at most negligible) overhead and never benefit.
    for name in ("Q1", "Q6"):
        assert abs(by_name[name].improvement_pct(DynamicMode.FULL)) < 1.0
        assert by_name[name].profiles["full"].plan_switches == 0
    # 2. Medium queries change only modestly (paper: up to ~5%).
    for name in ("Q3", "Q10"):
        assert by_name[name].improvement_pct(DynamicMode.FULL) > -2.0
    # 3. Complex queries benefit significantly, via plan modification.
    complex_improvements = [
        by_name[name].improvement_pct(DynamicMode.FULL) for name in ("Q5", "Q7", "Q8")
    ]
    assert max(complex_improvements) > 10.0
    assert sum(1 for i in complex_improvements if i > 5.0) >= 2
    assert any(
        by_name[name].profiles["full"].plan_switches >= 1
        for name in ("Q5", "Q7", "Q8")
    )
