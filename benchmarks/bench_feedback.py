"""Closing the loop: cross-query feedback on a repeated TPC-D workload.

PR 10's tentpole benchmark.  A TPC-D workload (order-exact variants of Q3,
Q7 and Q10 — COUNT/MIN/MAX plus integer SUMs with a total ORDER BY, so
results are byte-comparable) runs repeatedly on ONE engine whose catalog
statistics are badly stale (``CatalogProfile.STALE``): the fact tables
grew 10x and a dimension shrank 10x since the last ANALYZE.  The engine
runs in FULL dynamic mode with the persistent feedback repository enabled.

* **Pass 1 (cold)** — the optimizer plans from the stale histograms, the
  paper's mid-query machinery catches the misestimates it can, and the
  repository absorbs one record per completed plan fragment.
* **Warm-up passes** — the loop closes: corrected estimates change plans,
  new plans produce new observations (including through plan switches —
  temp tables resolve back to the subtree they materialized), until the
  engine reaches a fixed point (two identical passes with no switches).
* **Pass 2 (warm)** — the first pass executed entirely against the warm
  store, measured like pass 1.

Gates (``learning_gate``): the warm pass must need *fewer* mid-query
re-optimizations and show *lower* aggregate (geomean worst-fragment)
Q-error than the cold pass.  Byte-identity is asserted unconditionally:
every pass — and a feedback-disabled reference engine — must produce
identical rows, query by query; a learning run with different answers is
a bug, not a data point.

Results go to ``BENCH_feedback.json`` at the repository root and
``results/feedback.txt``.  Runs under pytest
(``pytest benchmarks/bench_feedback.py``) or as a script::

    python benchmarks/bench_feedback.py [--smoke] [--scale 0.02]
                                        [--max-passes 16]
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path

from repro import Database, DynamicMode, MetricsRegistry
from repro.bench import ExperimentConfig, stamp_document
from repro.workloads.tpcd import CatalogProfile, generate_tpcd

SCALE_FACTOR = 0.02
SMOKE_SCALE_FACTOR = 0.005
MAX_PASSES = 16
SMOKE_MAX_PASSES = 4
MEMORY_PAGES = 192
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_feedback.json"

#: Order-exact TPC-D variants: aggregates are restricted to COUNT/MIN/MAX
#: and SUM over INTEGER columns, and every query ends in a total ORDER BY
#: over its group keys, so two executions are comparable byte for byte.
QUERIES = {
    "Q3": (
        "SELECT l_orderkey, count(*) AS n, min(l_extendedprice) AS lo, "
        "max(l_extendedprice) AS hi "
        "FROM customer, orders, lineitem "
        "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        "AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' "
        "GROUP BY l_orderkey ORDER BY l_orderkey"
    ),
    "Q7": (
        "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
        "count(*) AS n, sum(l_orderkey) AS key_mass "
        "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
        "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
        "AND c_custkey = o_custkey "
        "AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey "
        "AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') "
        "OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) "
        "AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
        "GROUP BY n1.n_name, n2.n_name ORDER BY supp_nation, cust_nation"
    ),
    "Q10": (
        "SELECT c_custkey, count(*) AS n, max(l_extendedprice) AS hi "
        "FROM customer, orders, lineitem, nation "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
        "AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' "
        "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
        "GROUP BY c_custkey ORDER BY c_custkey"
    ),
}


def _experiment(scale_factor: float, feedback: bool) -> ExperimentConfig:
    return ExperimentConfig(
        scale_factor=scale_factor,
        catalog=CatalogProfile.STALE,
        memory_pages=MEMORY_PAGES,
        feedback=feedback,
    )


def _build_database(scale_factor: float, feedback: bool) -> Database:
    exp = _experiment(scale_factor, feedback)
    db = Database(exp.engine_config(), metrics=MetricsRegistry())
    generate_tpcd(db, exp.tpcd_config())
    return db


def _run_pass(db: Database) -> dict:
    """Execute the workload once; per-pass telemetry plus the raw rows."""
    per_query = {}
    rows = {}
    worst_qs = []
    for name, sql in QUERIES.items():
        result = db.execute(sql, mode=DynamicMode.FULL)
        profile = result.profile
        rows[name] = result.rows
        worst_qs.append(max(profile.feedback_worst_q_error, 1.0))
        per_query[name] = {
            "plan_switches": profile.plan_switches,
            "feedback_corrections": profile.feedback_corrections,
            "worst_q_error": round(profile.feedback_worst_q_error, 3),
            "simulated_cost": round(profile.total_cost, 1),
        }
    geomean = math.exp(sum(math.log(q) for q in worst_qs) / len(worst_qs))
    return {
        "queries": per_query,
        "plan_switches": sum(q["plan_switches"] for q in per_query.values()),
        "geomean_q_error": round(geomean, 3),
        "simulated_cost": round(
            sum(q["simulated_cost"] for q in per_query.values()), 1
        ),
        "_rows": rows,
    }


def _fingerprint(tick: dict) -> tuple:
    """Plan-space state of one pass: identical fingerprints mean the
    optimizer made identical decisions (a fixed point of the loop)."""
    return tuple(
        (name, q["plan_switches"], q["simulated_cost"])
        for name, q in sorted(tick["queries"].items())
    )


def run_benchmark(
    scale_factor: float = SCALE_FACTOR,
    max_passes: int = MAX_PASSES,
    enforce_gate: bool = True,
) -> dict:
    """Repeated workload on one learning engine vs its own cold pass."""
    # Reference rows from an engine with feedback disabled: the learning
    # engine must agree with it on EVERY pass (zero result perturbation).
    reference = _build_database(scale_factor, feedback=False)
    reference_rows = {
        name: reference.execute(sql, mode=DynamicMode.FULL).rows
        for name, sql in QUERIES.items()
    }

    db = _build_database(scale_factor, feedback=True)
    passes = []
    converged = False
    for index in range(max_passes):
        tick = _run_pass(db)
        for name, rows in tick.pop("_rows").items():
            assert rows == reference_rows[name], (
                f"pass {index + 1} of {name} diverged from the "
                "feedback-disabled reference rows"
            )
        tick["pass"] = index + 1
        passes.append(tick)
        if (
            index >= 1
            and tick["plan_switches"] == 0
            and _fingerprint(tick) == _fingerprint(passes[-2])
        ):
            converged = True
            break

    cold, warm = passes[0], passes[-1]
    fewer_switches = warm["plan_switches"] < cold["plan_switches"]
    lower_q_error = warm["geomean_q_error"] < cold["geomean_q_error"]
    report = db.feedback_report()
    document = {
        "scale_factor": scale_factor,
        "memory_pages": MEMORY_PAGES,
        "catalog": "stale",
        "queries": sorted(QUERIES),
        "metric": (
            "mid-query plan switches and geomean worst-fragment Q-error, "
            "cold pass vs first pass at the learned fixed point"
        ),
        "passes": passes,
        "cold_pass": cold,
        "warm_pass": warm,
        "converged": converged,
        "byte_identical": True,  # asserted above, unconditionally
        "store": {
            "records": report.get("record_count", len(report.get("records", []))),
            "edges": report.get("edge_count", 0),
            "queries_absorbed": report.get("queries_absorbed", 0),
        },
        "learning_gate": {
            "fewer_switches": fewer_switches,
            "lower_q_error": lower_q_error,
            "cold_switches": cold["plan_switches"],
            "warm_switches": warm["plan_switches"],
            "cold_geomean_q_error": cold["geomean_q_error"],
            "warm_geomean_q_error": warm["geomean_q_error"],
            "enforced": enforce_gate,
            "reason": "enforced" if enforce_gate else "skipped: smoke run",
        },
    }
    return stamp_document(document, {"learning_gate": 0})


def _render(document: dict) -> str:
    lines = [
        "Cross-query feedback on a repeated stale-catalog TPC-D workload "
        f"(sf={document['scale_factor']}, {len(document['queries'])} queries, "
        f"{document['memory_pages']} pages)",
        f"{'pass':>5}{'switches':>10}{'geomean q':>11}{'sim cost':>12}  per query",
    ]
    for tick in document["passes"]:
        detail = " | ".join(
            f"{name}: sw={q['plan_switches']} q={q['worst_q_error']:.0f}"
            for name, q in sorted(tick["queries"].items())
        )
        lines.append(
            f"{tick['pass']:>5}{tick['plan_switches']:>10}"
            f"{tick['geomean_q_error']:>11.1f}{tick['simulated_cost']:>12.0f}"
            f"  {detail}"
        )
    gate = document["learning_gate"]
    lines.append(
        f"gate: switches {gate['cold_switches']} -> {gate['warm_switches']}, "
        f"geomean Q-error {gate['cold_geomean_q_error']:.1f} -> "
        f"{gate['warm_geomean_q_error']:.1f} "
        f"({gate['reason']}); converged={document['converged']}, "
        f"byte_identical={document['byte_identical']}, "
        f"store: {document['store']['records']} records / "
        f"{document['store']['edges']} edges"
    )
    return "\n".join(lines)


def _assert_document(document: dict) -> None:
    assert document["byte_identical"]
    if document["learning_gate"]["enforced"]:
        gate = document["learning_gate"]
        assert document["converged"], (
            "the learning loop did not reach a fixed point within the pass "
            "budget"
        )
        assert gate["fewer_switches"], (
            f"warm pass needed {gate['warm_switches']} mid-query "
            f"re-optimizations, cold pass {gate['cold_switches']}"
        )
        assert gate["lower_q_error"], (
            f"warm geomean Q-error {gate['warm_geomean_q_error']} not below "
            f"cold {gate['cold_geomean_q_error']}"
        )


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale + few passes; learning gate reported but not enforced",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--max-passes", type=int, default=None)
    return parser.parse_args(argv)


def test_feedback_learning(results_dir):
    from conftest import write_result

    document = run_benchmark()
    JSON_PATH.write_text(json.dumps(document, indent=2) + "\n")
    write_result(results_dir, "feedback", _render(document))
    _assert_document(document)


if __name__ == "__main__":
    args = _parse_args()
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE_FACTOR if args.smoke else SCALE_FACTOR
    )
    max_passes = args.max_passes if args.max_passes is not None else (
        SMOKE_MAX_PASSES if args.smoke else MAX_PASSES
    )
    doc = run_benchmark(scale, max_passes, enforce_gate=not args.smoke)
    print(_render(doc))
    _assert_document(doc)
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"\nwrote {JSON_PATH}")
