"""A decision-support session over the TPC-D workload (paper section 3.2).

Generates a small-scale TPC-D database, then runs the paper's seven queries
under Normal and Re-Optimized execution, printing a Figure-10-style table.

Run with::

    python examples/tpcd_analyst_session.py [scale_factor]
"""

from __future__ import annotations

import sys

from repro.bench import ExperimentConfig, comparison_table, run_experiment
from repro.core.modes import DynamicMode
from repro.workloads.tpcd import ALL_QUERIES


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.005
    config = ExperimentConfig(scale_factor=scale_factor, memory_pages=192)
    print(
        f"generating TPC-D at SF {scale_factor} "
        f"(~{int(6_000_000 * scale_factor)} lineitems) ..."
    )
    comparisons = run_experiment(
        config, modes=(DynamicMode.OFF, DynamicMode.FULL)
    )
    print()
    print(
        comparison_table(
            comparisons,
            [DynamicMode.OFF, DynamicMode.FULL],
            title="Normal vs Re-Optimized execution (normalized, Normal = 100)",
        )
    )
    print()
    mismatches = [c.query.name for c in comparisons if not c.row_sets_match]
    if mismatches:
        print(f"WARNING: result mismatches in {mismatches}")
    else:
        print("all queries returned identical results under both modes.")


if __name__ == "__main__":
    main()
