"""Skewed data and histogram quality (paper Figure 12 and section 2.2).

Shows two things on a Zipf-skewed TPC-D database:

1. how the histogram *kind* changes estimation quality under skew —
   serial-class histograms (MaxDiff) stay accurate where equi-width ones
   drift, which is why the paper's inaccuracy-potential rules rank them
   differently; and
2. how Dynamic Re-Optimization behaves on a complex query when the data is
   skewed (z = 0.6).

Run with::

    python examples/skewed_workload.py
"""

from __future__ import annotations

from repro import Database, DynamicMode, HistogramKind
from repro.stats.histogram import build_equi_width, build_maxdiff
from repro.stats.zipf import ZipfGenerator
from repro.workloads.tpcd import TpcdConfig, generate_tpcd, query_by_name


def histogram_accuracy_demo() -> None:
    print("=== histogram accuracy under skew (z = 1.0) ===")
    values = ZipfGenerator(1000, 1.0, seed=3, permute=True).sample_list(50_000)
    true_frequency = values.count(values[0]) / len(values)
    equi_width = build_equi_width(values, 16)
    maxdiff = build_maxdiff(values, 16)
    probe = values[0]
    print(f"true selectivity of most-sampled value {probe}: {true_frequency:.4f}")
    print(f"  equi-width estimate: {equi_width.selectivity_eq(probe):.4f}")
    print(f"  MaxDiff estimate:    {maxdiff.selectivity_eq(probe):.4f}")
    print()


def skewed_tpcd_demo() -> None:
    print("=== Q7 on skewed TPC-D (z = 0.6) ===")
    db = Database()
    generate_tpcd(db, TpcdConfig(scale_factor=0.005, zipf_z=0.6))
    query = query_by_name("Q7")
    off = db.execute(query.sql, mode=DynamicMode.OFF)
    full = db.execute(query.sql, mode=DynamicMode.FULL)
    improvement = 100 * (1 - full.profile.total_cost / off.profile.total_cost)
    print(
        f"normal: {off.profile.total_cost:.1f}; re-optimized: "
        f"{full.profile.total_cost:.1f} ({improvement:.1f}% improvement, "
        f"{full.profile.plan_switches} switch(es))"
    )


def main() -> None:
    histogram_accuracy_demo()
    skewed_tpcd_demo()


if __name__ == "__main__":
    main()
