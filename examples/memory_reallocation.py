"""Dynamic memory re-allocation (the paper's Figure 3 walk-through).

The catalog over-estimates the filter's output (anti-correlated selection
attributes), so the Memory Manager believes the second hash join's maximum
memory demand cannot be satisfied and grants it only the minimum — a
two-pass, spilling execution.  The statistics collector observes the true
(smaller) cardinality, the Memory Manager is re-invoked, and the join runs
in one pass.

Run with::

    python examples/memory_reallocation.py
"""

from __future__ import annotations

from repro import Database, DynamicMode, EngineConfig
from repro.workloads.synthetic import SyntheticConfig, build_running_example

SQL = (
    "SELECT avg(rel1.selectattr1), avg(rel1.selectattr2), rel1.groupattr "
    "FROM rel1, rel2, rel3 "
    "WHERE rel1.selectattr1 < 60 AND rel1.selectattr2 < 60 "
    "AND rel1.joinattr2 = rel2.joinattr2 "
    "AND rel1.joinattr3 = rel3.joinattr3 "
    "GROUP BY rel1.groupattr"
)


def main() -> None:
    # 210 pages ~ 860 KB of workspace memory: enough for the joins only if
    # the second join's build input is as small as it actually is, not as
    # large as the optimizer believes.
    db = Database(EngineConfig().with_updates(query_memory_pages=210))
    build_running_example(
        db,
        SyntheticConfig(
            rel1_rows=20_000,
            rel2_rows=8_000,
            rel3_rows=60_000,
            correlation=-1.0,  # anti-correlated: the optimizer over-estimates
            index_rel3=False,
        ),
    )

    off = db.execute(SQL, mode=DynamicMode.OFF)
    memory = db.execute(SQL, mode=DynamicMode.MEMORY_ONLY)

    print("=== normal execution (static memory allocation) ===")
    print(off.profile.summary())
    print(f"  spill writes: {off.profile.breakdown.write:.1f} cost units")
    print()
    print("=== with dynamic memory re-allocation ===")
    print(memory.profile.summary())
    print(f"  spill writes: {memory.profile.breakdown.write:.1f} cost units")
    print()
    improvement = 100 * (1 - memory.profile.total_cost / off.profile.total_cost)
    print(
        f"simulated execution time: {off.profile.total_cost:.1f} -> "
        f"{memory.profile.total_cost:.1f} ({improvement:.1f}% improvement), "
        f"{memory.profile.memory_reallocations} re-allocation(s)"
    )


if __name__ == "__main__":
    main()
