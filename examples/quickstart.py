"""Quickstart: create tables, load data, run queries, inspect profiles.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import Database, DataType, DynamicMode


def main() -> None:
    db = Database()
    rng = random.Random(7)

    # -- schema and data ---------------------------------------------------
    db.create_table(
        "employees",
        [
            ("emp_id", DataType.INTEGER),
            ("dept_id", DataType.INTEGER),
            ("salary", DataType.FLOAT),
            ("hired", DataType.DATE),
        ],
        key=["emp_id"],
    )
    db.create_table(
        "departments",
        [
            ("dept_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("budget", DataType.FLOAT),
        ],
        key=["dept_id"],
    )

    from repro import date_to_int

    db.load_rows(
        "departments",
        [(d, f"dept-{d}", rng.uniform(1e5, 1e6)) for d in range(20)],
    )
    db.load_rows(
        "employees",
        [
            (
                i,
                rng.randrange(20),
                rng.uniform(40_000, 180_000),
                date_to_int("2015-01-01") + rng.randrange(3000),
            )
            for i in range(50_000)
        ],
    )

    # ANALYZE builds the optimizer's statistics (MaxDiff histograms).
    db.analyze()
    db.create_index("ix_emp_dept", "employees", "dept_id", clustered=True)

    # -- EXPLAIN -----------------------------------------------------------
    sql = (
        "SELECT d.name, count(*) AS headcount, avg(e.salary) AS avg_salary "
        "FROM employees e, departments d "
        "WHERE e.dept_id = d.dept_id AND e.salary > 100000 "
        "GROUP BY d.name ORDER BY avg_salary DESC LIMIT 5"
    )
    print("=== EXPLAIN (with statistics collectors inserted) ===")
    print(db.explain(sql))
    print()

    # -- execute with Dynamic Re-Optimization enabled -----------------------
    result = db.execute(sql, mode=DynamicMode.FULL)
    print("=== top 5 departments by average high salary ===")
    print(result.format_table())
    print()
    print("=== execution profile ===")
    print(result.profile.summary())

    # -- host-variable parameters ---------------------------------------------
    parameterized = db.execute(
        "SELECT count(*) AS n FROM employees WHERE salary > :threshold",
        params={"threshold": 150_000},
        mode=DynamicMode.OFF,
    )
    print()
    print(f"employees above :threshold -> {parameterized.rows[0][0]}")


if __name__ == "__main__":
    main()
