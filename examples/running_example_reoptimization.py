"""The paper's running example, end to end (Figures 1-2 and 4-6).

Rel1's two selection attributes are perfectly correlated, but the optimizer
multiplies their selectivities (the independence assumption), so the
three-way join plan is built for a far smaller intermediate result than the
one that actually shows up.  The statistics collector after the filter
observes the real cardinality; Dynamic Re-Optimization materialises the
in-flight join's output to a temporary table, regenerates SQL for the
remainder of the query, re-optimizes it, and finishes under the better plan.

Run with::

    python examples/running_example_reoptimization.py
"""

from __future__ import annotations

from repro import Database, DynamicMode
from repro.workloads.synthetic import (
    RUNNING_EXAMPLE_SQL,
    SyntheticConfig,
    build_running_example,
)


def main() -> None:
    db = Database()
    build_running_example(
        db,
        SyntheticConfig(rel1_rows=20_000, rel3_rows=60_000, correlation=1.0),
    )
    params = {"value1": 80, "value2": 80}

    print("query (paper Figure 1):")
    print(" ", RUNNING_EXAMPLE_SQL)
    print()
    print("=== initial annotated plan with collectors (paper Figure 2) ===")
    print(db.explain(RUNNING_EXAMPLE_SQL, params=params))
    print()

    off = db.execute(RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.OFF)
    full = db.execute(RUNNING_EXAMPLE_SQL, params=params, mode=DynamicMode.FULL)

    print("=== normal execution (no re-optimization) ===")
    print(off.profile.summary())
    print()
    print("=== with Dynamic Re-Optimization ===")
    print(full.profile.summary())
    print()

    for i, sql in enumerate(full.profile.remainder_sqls, start=1):
        print(f"remainder query #{i} (paper Figure 6):")
        print(" ", sql)
        print()

    if full.profile.plan_switches:
        print("plan adopted after the switch:")
        print(full.profile.plan_explanations[-1])
        print()

    improvement = 100 * (1 - full.profile.total_cost / off.profile.total_cost)
    print(
        f"simulated execution time: normal={off.profile.total_cost:.1f}, "
        f"re-optimized={full.profile.total_cost:.1f} "
        f"({improvement:.1f}% improvement)"
    )
    assert sorted(map(str, off.rows)) == sorted(map(str, full.rows)), (
        "both executions must return identical results"
    )
    print("result sets are identical across modes.")


if __name__ == "__main__":
    main()
