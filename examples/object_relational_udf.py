"""User-defined functions: the paper's object-relational motivation.

The paper argues that user-defined methods make static optimization
hopeless: "if the selection predicate has a user-defined function in an
external language, there is no way for the database system to estimate the
selectivity of the filter" (footnote 2).  This example registers a Python
UDF whose selectivity the optimizer cannot know; the inaccuracy-potential
rules mark the filter HIGH, a collector lands right above it, and Dynamic
Re-Optimization corrects the plan for the remainder of the query.

Run with::

    python examples/object_relational_udf.py
"""

from __future__ import annotations

import math
import random

from repro import Database, DataType, DynamicMode


def main() -> None:
    db = Database()
    rng = random.Random(13)

    # A table of geo points plus a reference table to join against.
    db.create_table(
        "sites",
        [
            ("site_id", DataType.INTEGER),
            ("x", DataType.FLOAT),
            ("y", DataType.FLOAT),
            ("region_id", DataType.INTEGER),
        ],
        key=["site_id"],
    )
    db.load_rows(
        "sites",
        [
            (i, rng.uniform(0, 100), rng.uniform(0, 100), rng.randrange(25_000))
            for i in range(30_000)
        ],
    )
    db.create_table(
        "regions",
        [
            ("region_id", DataType.INTEGER),
            ("name", DataType.STRING),
            ("population", DataType.INTEGER),
        ],
        key=["region_id"],
    )
    db.load_rows(
        "regions",
        [(r, f"region-{r}", rng.randrange(1000, 100_000)) for r in range(25_000)],
    )
    db.create_table(
        "measurements",
        [
            ("site_id", DataType.INTEGER),
            ("reading", DataType.FLOAT),
        ],
    )
    db.load_rows(
        "measurements",
        [(rng.randrange(30_000), rng.gauss(20.0, 5.0)) for __ in range(120_000)],
    )
    db.analyze()

    # A spatial UDF: distance from a point of interest.  The optimizer has
    # no histogram for this, so it falls back to a magic selectivity.
    db.register_udf(
        "dist_from_hq", lambda x, y: math.hypot(x - 10.0, y - 10.0)
    )

    sql = (
        "SELECT r.name, count(*) AS sites_nearby, avg(m.reading) AS avg_reading "
        "FROM sites s, regions r, measurements m "
        "WHERE dist_from_hq(s.x, s.y) < 95 "
        "AND s.region_id = r.region_id "
        "AND m.site_id = s.site_id "
        "GROUP BY r.name ORDER BY sites_nearby DESC LIMIT 5"
    )

    print("=== plan: the UDF filter gets a HIGH inaccuracy potential ===")
    print(db.explain(sql))
    print()

    off = db.execute(sql, mode=DynamicMode.OFF)
    full = db.execute(sql, mode=DynamicMode.FULL)
    print("=== results ===")
    print(full.format_table())
    print()
    print(
        f"normal: {off.profile.total_cost:.1f} cost units; "
        f"re-optimized: {full.profile.total_cost:.1f} "
        f"(switches={full.profile.plan_switches}, "
        f"reallocations={full.profile.memory_reallocations})"
    )
    for event in full.profile.events:
        print(f"  event: {event.action} {event.detail[:100]}")


if __name__ == "__main__":
    main()
