"""The optimizer facade: bound query -> annotated physical plan.

Pipeline: access-path selection and DP join enumeration (``dp.py``), then
aggregation/projection, sort and limit operators on top, then a final
annotation pass so every node carries the optimizer's estimates — the
*annotated query execution plan* the paper requires.
"""

from __future__ import annotations

from typing import Mapping

from ..config import EngineConfig
from ..errors import OptimizerError
from ..plans.logical import LogicalQuery, output_schema
from ..plans.physical import (
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
)
from ..stats.estimator import Estimator, RelProfile
from ..storage.catalog import Catalog
from .annotate import PlanAnnotator
from .cost_model import CostModel
from .dp import JoinEnumerator


class Optimizer:
    """Produces annotated physical plans for bound queries."""

    def __init__(
        self,
        catalog: Catalog,
        config: EngineConfig,
        estimator: Estimator | None = None,
    ) -> None:
        self.catalog = catalog
        self.config = config
        self.estimator = estimator or Estimator()
        self.cost_model = CostModel(config)
        #: Number of optimizer invocations (initial + re-optimizations).
        self.invocations = 0

    def optimize(
        self,
        query: LogicalQuery,
        profile_overrides: Mapping[int, RelProfile] | None = None,
    ) -> PlanNode:
        """Optimize a bound query into an annotated physical plan."""
        self.invocations += 1
        annotator = PlanAnnotator(
            self.catalog, self.estimator, self.cost_model,
            profile_overrides=profile_overrides,
        )
        enumerator = JoinEnumerator(query, self.catalog, annotator)
        plan: PlanNode = enumerator.best_join_plan()
        plan = self._add_output_operators(plan, query)
        annotator.annotate(plan)
        return plan

    def _add_output_operators(self, plan: PlanNode, query: LogicalQuery) -> PlanNode:
        if not query.output:
            raise OptimizerError("query produces no output columns")
        result_schema = output_schema(query.output, plan.schema)
        if query.has_aggregates or query.group_by:
            plan = HashAggregateNode(
                plan, query.group_by, query.output, result_schema
            )
            if query.having:
                # HAVING predicates reference output-column names, which are
                # exactly the aggregate's output schema.
                plan = FilterNode(plan, query.having)
        else:
            plan = ProjectNode(plan, query.output, result_schema)
            if query.distinct:
                plan = DistinctNode(plan)
        if query.order_by:
            plan = SortNode(plan, query.order_by)
        if query.limit is not None:
            plan = LimitNode(plan, query.limit)
        return plan

    def annotator(
        self,
        allocation: Mapping[int, int] | None = None,
        profile_overrides: Mapping[int, RelProfile] | None = None,
    ) -> PlanAnnotator:
        """A fresh annotation pass bound to this optimizer's components."""
        return PlanAnnotator(
            self.catalog, self.estimator, self.cost_model,
            allocation=allocation, profile_overrides=profile_overrides,
        )
