"""Access-path selection for base relations.

For each FROM-clause relation the optimizer considers a sequential scan and,
for every index whose column appears in a sargable predicate, an index scan
bounded by that predicate (residual predicates stay in a filter above).  The
cheapest annotated alternative wins — classic System-R access-path selection.

Host-variable comparisons *are* sargable (the executor knows the value) even
though the estimator treats their selectivity as unknown; this mirrors real
systems executing parameterised plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..plans.logical import BaseRelation, CompareOp, Comparison, ConstExpr, Predicate
from ..plans.physical import FilterNode, IndexScanNode, PlanNode, SeqScanNode
from ..storage.catalog import Catalog
from .annotate import PlanAnnotator


@dataclass
class _Bound:
    """Accumulated sargable bounds for one index column."""

    low: object | None = None
    high: object | None = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    predicates: list[Predicate] = None

    def __post_init__(self) -> None:
        if self.predicates is None:
            self.predicates = []

    def tighten_low(self, value: object, inclusive: bool, pred: Predicate) -> None:
        """Raise the lower bound if ``value`` is tighter."""
        if self.low is None or value > self.low or (value == self.low and not inclusive):
            self.low = value
            self.low_inclusive = inclusive
        self.predicates.append(pred)

    def tighten_high(self, value: object, inclusive: bool, pred: Predicate) -> None:
        """Lower the upper bound if ``value`` is tighter."""
        if self.high is None or value < self.high or (value == self.high and not inclusive):
            self.high = value
            self.high_inclusive = inclusive
        self.predicates.append(pred)

    @property
    def usable(self) -> bool:
        """Whether any bound was established."""
        return self.low is not None or self.high is not None


def sargable_bound(
    predicates: Sequence[Predicate], column: str
) -> _Bound:
    """Extract index bounds on ``column`` from a conjunctive predicate list."""
    bound = _Bound()
    for pred in predicates:
        if not isinstance(pred, Comparison) or pred.contains_function():
            continue
        normalized = pred.normalized()
        col_const = normalized.column_and_constant()
        if col_const is None or col_const[0] != column:
            continue
        if not isinstance(normalized.right, ConstExpr):
            continue
        value = col_const[1]
        op = normalized.op
        if op is CompareOp.EQ:
            bound.tighten_low(value, True, pred)
            bound.tighten_high(value, True, pred)
        elif op is CompareOp.GE:
            bound.tighten_low(value, True, pred)
        elif op is CompareOp.GT:
            bound.tighten_low(value, False, pred)
        elif op is CompareOp.LE:
            bound.tighten_high(value, True, pred)
        elif op is CompareOp.LT:
            bound.tighten_high(value, False, pred)
    return bound


def access_path_candidates(
    relation: BaseRelation,
    predicates: Sequence[Predicate],
    catalog: Catalog,
) -> list[PlanNode]:
    """All access paths for one relation, with residual filters attached."""
    table = catalog.table(relation.table_name)
    schema = table.schema.qualify(relation.alias)
    candidates: list[PlanNode] = []

    scan: PlanNode = SeqScanNode(relation.table_name, relation.alias, schema)
    if predicates:
        scan = FilterNode(scan, predicates)
    candidates.append(scan)

    for index in catalog.indexes_for(relation.table_name):
        qualified = f"{relation.alias}.{index.column}"
        bound = sargable_bound(predicates, qualified)
        if not bound.usable:
            continue
        used = set(id(p) for p in bound.predicates)
        residual = [p for p in predicates if id(p) not in used]
        node: PlanNode = IndexScanNode(
            table_name=relation.table_name,
            alias=relation.alias,
            schema=schema,
            index_column=index.column,
            low=bound.low,
            high=bound.high,
            low_inclusive=bound.low_inclusive,
            high_inclusive=bound.high_inclusive,
            bound_predicates=bound.predicates,
        )
        if residual:
            node = FilterNode(node, residual)
        candidates.append(node)
    return candidates


def best_access_path(
    relation: BaseRelation,
    predicates: Sequence[Predicate],
    catalog: Catalog,
    annotator: PlanAnnotator,
) -> PlanNode:
    """The cheapest access path for one relation under current statistics."""
    candidates = access_path_candidates(relation, predicates, catalog)
    best: PlanNode | None = None
    for candidate in candidates:
        annotator.annotate(candidate)
        if best is None or candidate.est.total_cost < best.est.total_cost:
            best = candidate
    assert best is not None  # at least the sequential scan always exists
    return best
