"""The cost model.

One set of formulas serves two callers:

* the **optimizer**, which evaluates them on *estimated* cardinalities to
  cost candidate plans and to annotate the chosen plan, and
* the **executor**, which evaluates them on *actual* row counts to charge
  the simulated cost clock.

Because both sides share the formulas, estimated and actual costs diverge
only through cardinality errors — which is exactly the discrepancy the
Dynamic Re-Optimization algorithm detects and corrects.

Costs are returned as an :class:`OperatorCost` (pages of sequential/random
reads and writes plus CPU units); ``total_units`` converts to clock units
with the configured :class:`~repro.config.CostParameters`.

Memory-consuming operators (hybrid hash join, sort, hash aggregation) also
expose ``(min, max)`` page demands: the minimum is the classical
``sqrt(F * B)`` bound below which partitioning degenerates, the maximum is a
one-pass grant.  The hybrid spill fraction for a grant ``M`` against a need
``F * B`` is ``1 - M / (F * B)`` — granting the minimum therefore makes the
join run in (roughly) two passes, reproducing the paper's Figure 3 scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CostParameters, EngineConfig


@dataclass(frozen=True)
class OperatorCost:
    """Resource consumption of one operator invocation."""

    seq_read_pages: float = 0.0
    rand_read_pages: float = 0.0
    write_pages: float = 0.0
    cpu_units: float = 0.0
    stats_cpu_units: float = 0.0

    def total_units(self, params: CostParameters) -> float:
        """Convert to scalar cost units."""
        return (
            self.seq_read_pages * params.seq_page_read
            + self.rand_read_pages * params.rand_page_read
            + self.write_pages * params.page_write
            + self.cpu_units
            + self.stats_cpu_units
        )

    def plus(self, other: "OperatorCost") -> "OperatorCost":
        """Component-wise sum."""
        return OperatorCost(
            seq_read_pages=self.seq_read_pages + other.seq_read_pages,
            rand_read_pages=self.rand_read_pages + other.rand_read_pages,
            write_pages=self.write_pages + other.write_pages,
            cpu_units=self.cpu_units + other.cpu_units,
            stats_cpu_units=self.stats_cpu_units + other.stats_cpu_units,
        )


def pages_for(rows: float, row_bytes: float, page_size: int) -> float:
    """Pages needed for ``rows`` rows of ``row_bytes`` each (>= 1 when rows > 0)."""
    if rows <= 0:
        return 0.0
    per_page = max(1.0, page_size / max(1.0, row_bytes))
    return max(1.0, math.ceil(rows / per_page))


class CostModel:
    """Cost formulas parameterised by the engine configuration."""

    def __init__(self, config: EngineConfig) -> None:
        self.config = config
        self.params = config.cost

    # -- scans ------------------------------------------------------------

    def seq_scan(self, pages: float, rows: float) -> OperatorCost:
        """Full sequential scan."""
        return OperatorCost(
            seq_read_pages=pages,
            cpu_units=rows * self.params.cpu_per_tuple,
        )

    def index_scan(
        self,
        height: int,
        entries_per_leaf: int,
        matches: float,
        clustered: bool,
        rows_per_page: int,
        table_pages: float,
    ) -> OperatorCost:
        """Index traversal + leaf scan + row fetches."""
        leaf_pages = math.ceil(matches / entries_per_leaf) if matches > 0 else 0
        if clustered:
            fetch_seq = math.ceil(matches / max(1, rows_per_page)) if matches > 0 else 0
            fetch_rand = 0.0
        else:
            fetch_seq = 0.0
            fetch_rand = min(matches, table_pages)
        return OperatorCost(
            seq_read_pages=leaf_pages + fetch_seq,
            rand_read_pages=height + fetch_rand,
            cpu_units=matches * self.params.cpu_per_tuple,
        )

    # -- tuple-at-a-time operators -----------------------------------------

    def filter(self, input_rows: float, predicate_count: int) -> OperatorCost:
        """Predicate evaluation over a stream."""
        return OperatorCost(
            cpu_units=input_rows * max(1, predicate_count) * self.params.cpu_per_compare
        )

    def project(self, input_rows: float) -> OperatorCost:
        """Scalar projection."""
        return OperatorCost(cpu_units=input_rows * self.params.cpu_per_tuple)

    def collector(self, input_rows: float, statistic_count: int) -> OperatorCost:
        """Statistics collection overhead (paper section 2.5).

        Cardinality/size/min-max tracking costs ``cpu_stats_per_tuple``; each
        budgeted statistic (histogram reservoir, distinct sketch) adds
        ``cpu_stats_per_statistic`` per tuple.
        """
        per_tuple = (
            self.params.cpu_stats_per_tuple
            + statistic_count * self.params.cpu_stats_per_statistic
        )
        return OperatorCost(stats_cpu_units=input_rows * per_tuple)

    def limit(self, output_rows: float) -> OperatorCost:
        """LIMIT costs a tuple touch per emitted row."""
        return OperatorCost(cpu_units=output_rows * self.params.cpu_per_tuple)

    # -- hash join ----------------------------------------------------------

    def hash_join_memory(self, build_pages: float) -> tuple[int, int]:
        """``(min, max)`` page demands for a hybrid hash join."""
        need = self.config.hash_fudge_factor * max(1.0, build_pages)
        minimum = max(2, math.ceil(math.sqrt(need)) + 1)
        maximum = max(minimum, math.ceil(need) + 1)
        return minimum, maximum

    def hash_join_spill_fraction(self, build_pages: float, memory_pages: float) -> float:
        """Fraction of both inputs spilled given a memory grant."""
        need = self.config.hash_fudge_factor * max(1.0, build_pages)
        if memory_pages >= need:
            return 0.0
        return max(0.0, min(1.0, 1.0 - memory_pages / need))

    def hash_join_build(
        self, build_rows: float, build_pages: float, memory_pages: float
    ) -> OperatorCost:
        """Build phase: hash CPU plus spilling the overflow partitions."""
        spill = self.hash_join_spill_fraction(build_pages, memory_pages)
        return OperatorCost(
            write_pages=spill * build_pages,
            cpu_units=build_rows * self.params.cpu_hash_build,
        )

    def hash_join_probe(
        self,
        build_pages: float,
        probe_rows: float,
        probe_pages: float,
        output_rows: float,
        memory_pages: float,
    ) -> OperatorCost:
        """Probe phase: probe CPU, spill of probe overflow, re-read of both."""
        spill = self.hash_join_spill_fraction(build_pages, memory_pages)
        respill_io = spill * (build_pages + probe_pages)
        return OperatorCost(
            seq_read_pages=respill_io,
            write_pages=spill * probe_pages,
            cpu_units=(
                probe_rows * self.params.cpu_hash_probe
                + output_rows * self.params.cpu_per_tuple
                # Spilled build rows are re-hashed in the second pass.
                + spill * probe_rows * self.params.cpu_hash_probe
            ),
        )

    def hash_join(
        self,
        build_rows: float,
        build_pages: float,
        probe_rows: float,
        probe_pages: float,
        output_rows: float,
        memory_pages: float,
    ) -> OperatorCost:
        """Full hybrid hash join cost (build plus probe)."""
        return self.hash_join_build(build_rows, build_pages, memory_pages).plus(
            self.hash_join_probe(
                build_pages, probe_rows, probe_pages, output_rows, memory_pages
            )
        )

    # -- indexed nested loops join ---------------------------------------------

    def index_nl_join(
        self,
        outer_rows: float,
        height: int,
        entries_per_leaf: int,
        matches_total: float,
        clustered: bool,
        inner_table_pages: float,
        output_rows: float,
    ) -> OperatorCost:
        """One index probe per outer row plus fetches for all matches."""
        probes_rand = outer_rows * height
        leaf_pages = math.ceil(matches_total / entries_per_leaf) if matches_total > 0 else 0
        if clustered:
            fetch_seq = leaf_pages
            fetch_rand = 0.0
        else:
            fetch_seq = 0.0
            fetch_rand = min(matches_total, outer_rows * inner_table_pages)
        return OperatorCost(
            seq_read_pages=leaf_pages + fetch_seq,
            rand_read_pages=probes_rand + fetch_rand,
            cpu_units=output_rows * self.params.cpu_per_tuple
            + outer_rows * self.params.cpu_per_compare,
        )

    # -- block nested loops join ---------------------------------------------

    def block_nl_join_memory(self, outer_pages: float) -> tuple[int, int]:
        """``(min, max)`` page demands for block nested loops."""
        return 3, max(3, math.ceil(outer_pages) + 2)

    def block_nl_join(
        self,
        outer_rows: float,
        outer_pages: float,
        inner_rows: float,
        inner_pages: float,
        memory_pages: float,
    ) -> OperatorCost:
        """Classic block NL: rescan inner once per outer memory block."""
        block = max(1.0, memory_pages - 2)
        blocks = math.ceil(max(1.0, outer_pages) / block)
        return OperatorCost(
            seq_read_pages=blocks * inner_pages,
            cpu_units=outer_rows * inner_rows * self.params.cpu_per_compare,
        )

    # -- sort -------------------------------------------------------------------

    def sort_memory(self, pages: float) -> tuple[int, int]:
        """``(min, max)`` page demands for an external sort."""
        minimum = max(3, math.ceil(math.sqrt(max(1.0, pages))))
        return minimum, max(minimum, math.ceil(pages) + 1)

    def sort(self, rows: float, pages: float, memory_pages: float) -> OperatorCost:
        """In-memory sort when it fits; one merge pass otherwise."""
        cpu = rows * math.log2(max(2.0, rows)) * self.params.cpu_per_compare
        if pages <= memory_pages:
            return OperatorCost(cpu_units=cpu)
        return OperatorCost(
            seq_read_pages=pages,
            write_pages=pages,
            cpu_units=cpu,
        )

    # -- aggregation ---------------------------------------------------------------

    def aggregate_memory(self, group_pages: float) -> tuple[int, int]:
        """``(min, max)`` page demands for hash aggregation."""
        need = self.config.hash_fudge_factor * max(1.0, group_pages)
        minimum = max(2, math.ceil(math.sqrt(need)) + 1)
        return minimum, max(minimum, math.ceil(need) + 1)

    def aggregate(
        self,
        input_rows: float,
        input_pages: float,
        group_pages: float,
        memory_pages: float,
    ) -> OperatorCost:
        """Hash aggregation; spills input partitions when groups overflow."""
        need = self.config.hash_fudge_factor * max(1.0, group_pages)
        cpu = input_rows * self.params.cpu_per_aggregate
        if memory_pages >= need:
            return OperatorCost(cpu_units=cpu)
        spill = max(0.0, min(1.0, 1.0 - memory_pages / need))
        return OperatorCost(
            seq_read_pages=spill * input_pages,
            write_pages=spill * input_pages,
            cpu_units=cpu * (1.0 + spill),
        )

    # -- materialization -------------------------------------------------------------

    def materialize(self, pages: float) -> OperatorCost:
        """Write an intermediate result to a temporary table."""
        return OperatorCost(write_pages=pages)
