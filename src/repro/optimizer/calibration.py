"""Optimizer-time calibration (paper section 2.4).

Re-optimization is only worthwhile when the remaining query time dwarfs the
time the optimizer itself will take.  The paper observes that optimization
time depends on the number of joins, is worst for star-join queries, and is
"usually rather stable for a given optimizer and database system", so it can
be calibrated once and looked up later as ``T_opt,estimated``.

We model optimization time as ``unit * n * 2**n`` cost units for ``n``
relations — the number of subplans a System-R DP enumerator touches — with a
configurable ``unit``.  :func:`calibrate_unit` reproduces the paper's
procedure: time real optimizer runs on star-join queries of increasing size
and fit ``unit`` by least squares (converted through
``cost_units_per_second``).  The deterministic default keeps experiments
reproducible; the calibration path is exercised by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError

#: Default cost units charged per enumerated DP subplan.
DEFAULT_UNIT = 0.5


@dataclass(frozen=True)
class OptimizerCalibration:
    """A calibrated model of optimization time."""

    unit: float = DEFAULT_UNIT

    def __post_init__(self) -> None:
        if self.unit <= 0:
            raise ConfigError(f"calibration unit must be positive, got {self.unit}")

    def subplan_count(self, relation_count: int) -> float:
        """Approximate subplans enumerated for an n-relation (star) query."""
        n = max(1, relation_count)
        return n * (2.0 ** n)

    def estimated_units(self, relation_count: int) -> float:
        """``T_opt,estimated`` in cost units for a query of this size."""
        return self.unit * self.subplan_count(relation_count)


def measure_star_join_times(
    optimize,
    relation_counts: Sequence[int] = (2, 3, 4, 5),
    repetitions: int = 3,
) -> list[tuple[int, float]]:
    """Time ``optimize(n)`` for star-join queries of each size.

    This is the paper's calibration procedure made executable: ``optimize``
    must accept a relation count and run one optimization of a star-join
    query of that size (the worst case for a System-R enumerator).  The
    median of ``repetitions`` wall-clock timings is recorded per size;
    feed the result to :func:`calibrate_unit`.
    """
    import statistics
    import time

    measurements: list[tuple[int, float]] = []
    for n in relation_counts:
        samples = []
        for __ in range(max(1, repetitions)):
            start = time.perf_counter()
            optimize(n)
            samples.append(time.perf_counter() - start)
        measurements.append((n, statistics.median(samples)))
    return measurements


def calibrate_unit(
    measurements: Sequence[tuple[int, float]],
    cost_units_per_second: float,
) -> OptimizerCalibration:
    """Fit the per-subplan unit from ``(relation_count, seconds)`` samples.

    This is the paper's star-join calibration: run the optimizer on star
    queries of each size, measure wall time, and derive a stable estimate.
    A least-squares fit through the origin is used (optimization time is
    proportional to subplans enumerated).
    """
    if not measurements:
        raise ConfigError("calibration requires at least one measurement")
    probe = OptimizerCalibration()
    numerator = 0.0
    denominator = 0.0
    for relation_count, seconds in measurements:
        if relation_count <= 0 or seconds < 0:
            raise ConfigError(
                f"invalid calibration sample ({relation_count}, {seconds})"
            )
        x = probe.subplan_count(relation_count)
        y = seconds * cost_units_per_second
        numerator += x * y
        denominator += x * x
    if denominator <= 0 or numerator <= 0:
        return OptimizerCalibration()
    return OptimizerCalibration(unit=numerator / denominator)
