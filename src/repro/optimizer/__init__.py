"""Query optimizer: cost model, access paths, DP join enumeration, calibration."""

from .annotate import PlanAnnotator, annotate_plan
from .calibration import OptimizerCalibration, calibrate_unit, measure_star_join_times
from .cost_model import CostModel, OperatorCost, pages_for
from .optimizer import Optimizer

__all__ = [
    "CostModel",
    "OperatorCost",
    "Optimizer",
    "OptimizerCalibration",
    "PlanAnnotator",
    "annotate_plan",
    "calibrate_unit",
    "measure_star_join_times",
    "pages_for",
]
