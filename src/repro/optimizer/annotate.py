"""Bottom-up plan annotation: the *annotated query execution plan*.

This pass fills in the :class:`~repro.plans.physical.Estimates` on every
node — cardinalities, sizes, statistical profiles, memory demands, and per
operator / cumulative costs.  The paper requires exactly this: "the plan
produced by the optimizer should include information about the optimizer's
estimates of the sizes of all the intermediate results in the query, and the
execution cost/time for each operator" (section 2, item 1).

The same pass is reused by the improved-estimate machinery: when run-time
statistics replace a node's profile, re-annotating the remainder recomputes
every downstream estimate from the better numbers.

``allocation`` maps node ids to granted memory pages; when a node has no
grant yet, costing assumes its maximum demand (the optimizer's optimistic
assumption — memory is allocated later by the Memory Manager, as in
Paradise).
"""

from __future__ import annotations

from typing import Mapping

from ..errors import OptimizerError
from ..plans.physical import (
    BlockNLJoinNode,
    DistinctNode,
    Estimates,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from ..stats.estimator import Estimator, RelProfile, profile_from_table_stats
from ..storage.catalog import Catalog
from .cost_model import CostModel, OperatorCost, pages_for

#: Operators whose cardinality is their input's (or, for Limit, an exact
#: cap on it): the feedback correction already flowed through the child's
#: profile, so correcting them again would double-apply it.
_FEEDBACK_PASSTHROUGH = (StatsCollectorNode, ProjectNode, SortNode, LimitNode)


class PlanAnnotator:
    """Computes estimate annotations for a physical plan."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: Estimator,
        cost_model: CostModel,
        allocation: Mapping[int, int] | None = None,
        profile_overrides: Mapping[int, RelProfile] | None = None,
    ) -> None:
        self.catalog = catalog
        self.estimator = estimator
        self.cost_model = cost_model
        self.allocation = dict(allocation or {})
        #: node_id -> observed profile replacing the estimated one.
        self.profile_overrides = dict(profile_overrides or {})
        self.page_size = catalog.page_size
        #: Fragment-text memo shared across this annotator's lifetime (the
        #: DP enumerator re-annotates candidates over shared subtrees).
        self._fragment_memo: dict[int, str] = {}

    def annotate(self, plan: PlanNode) -> PlanNode:
        """Annotate the whole tree bottom-up and return it."""
        for child in plan.children:
            self.annotate(child)
        return self.annotate_node(plan)

    def annotate_node(self, plan: PlanNode) -> PlanNode:
        """Annotate one node, assuming its children are already annotated.

        The DP join enumerator uses this to cost a candidate join without
        re-annotating the (shared, already-annotated) input subtrees.
        """
        self._annotate_node(plan)
        override = self.profile_overrides.get(plan.node_id)
        if override is not None:
            plan.est.profile = override
            plan.est.rows = override.rows
            plan.est.row_bytes = override.row_bytes
            plan.est.pages = pages_for(override.rows, override.row_bytes, self.page_size)
            return plan
        self._apply_feedback(plan)
        return plan

    def _apply_feedback(self, node: PlanNode) -> None:
        """Replace the histogram cardinality with a feedback-corrected one.

        Only fires when the estimator carries a feedback repository holding
        an observation for this fragment that disagrees with the estimate
        by at least the repository's Q-error threshold; with feedback
        disabled (or an empty store) annotation is byte-identical to the
        pre-feedback engine.  Mirrors the ``profile_overrides`` contract:
        the node's own op_cost keeps its histogram basis, parents pick up
        the corrected output profile bottom-up, and observed overrides
        (ground truth from a collector) always win over feedback.
        """
        feedback = getattr(self.estimator, "feedback", None)
        if feedback is None or node.est.profile is None:
            return
        if isinstance(node, _FEEDBACK_PASSTHROUGH):
            return
        from ..observe.feedback import fragment_signature, join_edge_key
        from dataclasses import replace as _replace

        signature = fragment_signature(node, self._fragment_memo)
        histogram_rows = node.est.profile.rows
        hit = self.estimator.corrected_rows(
            signature,
            histogram_rows,
            self.catalog.stats_epoch,
            edge_key=join_edge_key(node),
        )
        if hit is None:
            return
        corrected, record = hit
        profile = _replace(node.est.profile, rows=corrected)
        node.est.profile = profile
        node.est.rows = corrected
        node.est.pages = pages_for(corrected, profile.row_bytes, self.page_size)
        # Leaf scans are the one place op_cost derives from catalog state
        # (page counts) rather than child profiles, so a correction must
        # re-cost them: a scan of a table the catalog believes is 10x
        # smaller would otherwise keep its 10x-cheap planned cost, and the
        # runtime drift against it re-triggers mid-query re-optimization
        # forever even with every cardinality corrected.  Every other
        # operator is costed from its (already corrected) children.
        if isinstance(node, SeqScanNode):
            self._finish(node, self.cost_model.seq_scan(node.est.pages, corrected))
        elif isinstance(node, IndexScanNode):
            index = self.catalog.index_on(node.table_name, node.index_column)
            if index is not None:
                table = self.catalog.table(node.table_name)
                stats = self.catalog.stats_for(node.table_name)
                cost = self.cost_model.index_scan(
                    height=index.height,
                    entries_per_leaf=index.entries_per_leaf,
                    matches=corrected,
                    clustered=index.clustered,
                    rows_per_page=table.rows_per_page,
                    table_pages=stats.page_count,
                )
                self._finish(node, cost)
        # Plain attribute, surfaced by EXPLAIN ANALYZE; clone_plan's shallow
        # copies share it, which is fine — it describes the fragment, not
        # the node instance.
        node.feedback_correction = {
            "signature": signature,
            "histogram_rows": histogram_rows,
            "observed_rows": record.observed_rows,
            "corrected_rows": corrected,
            "source": record.source,
            "record_q_error": record.q_error,
        }

    # ------------------------------------------------------------------

    def _memory_for(self, node: PlanNode) -> int:
        granted = self.allocation.get(node.node_id)
        if granted is not None:
            return granted
        return node.est.max_memory_pages

    def _finish(self, node: PlanNode, cost: OperatorCost) -> None:
        est = node.est
        est.op_cost = cost.total_units(self.cost_model.params)
        est.total_cost = est.op_cost + sum(c.est.total_cost for c in node.children)
        if est.profile is not None:
            est.rows = est.profile.rows
            est.row_bytes = est.profile.row_bytes
        est.pages = pages_for(est.rows, est.row_bytes, self.page_size)

    def _annotate_node(self, node: PlanNode) -> None:
        if isinstance(node, SeqScanNode):
            self._annotate_seq_scan(node)
        elif isinstance(node, IndexScanNode):
            self._annotate_index_scan(node)
        elif isinstance(node, FilterNode):
            self._annotate_filter(node)
        elif isinstance(node, StatsCollectorNode):
            self._annotate_collector(node)
        elif isinstance(node, HashJoinNode):
            self._annotate_hash_join(node)
        elif isinstance(node, IndexNLJoinNode):
            self._annotate_index_nl_join(node)
        elif isinstance(node, BlockNLJoinNode):
            self._annotate_block_nl_join(node)
        elif isinstance(node, ProjectNode):
            self._annotate_project(node)
        elif isinstance(node, HashAggregateNode):
            self._annotate_aggregate(node)
        elif isinstance(node, DistinctNode):
            self._annotate_distinct(node)
        elif isinstance(node, SortNode):
            self._annotate_sort(node)
        elif isinstance(node, LimitNode):
            self._annotate_limit(node)
        else:
            raise OptimizerError(f"cannot annotate node type {type(node).__name__}")

    # -- leaves ----------------------------------------------------------

    def _base_profile(self, table_name: str, alias: str) -> RelProfile:
        stats = self.catalog.stats_for(table_name)
        return profile_from_table_stats(stats, alias)

    def _annotate_seq_scan(self, node: SeqScanNode) -> None:
        stats = self.catalog.stats_for(node.table_name)
        profile = self._base_profile(node.table_name, node.alias)
        node.est.profile = profile
        node.est.rows = profile.rows
        node.est.row_bytes = profile.row_bytes
        cost = self.cost_model.seq_scan(stats.page_count, profile.rows)
        self._finish(node, cost)

    def _annotate_index_scan(self, node: IndexScanNode) -> None:
        stats = self.catalog.stats_for(node.table_name)
        base = self._base_profile(node.table_name, node.alias)
        profile, __ = self.estimator.apply_predicates(base, node.bound_predicates)
        node.est.profile = profile
        index = self.catalog.index_on(node.table_name, node.index_column)
        if index is None:
            raise OptimizerError(
                f"no index on {node.table_name}.{node.index_column} for index scan"
            )
        table = self.catalog.table(node.table_name)
        cost = self.cost_model.index_scan(
            height=index.height,
            entries_per_leaf=index.entries_per_leaf,
            matches=profile.rows,
            clustered=index.clustered,
            rows_per_page=table.rows_per_page,
            table_pages=stats.page_count,
        )
        self._finish(node, cost)

    # -- streaming operators -------------------------------------------------

    def _annotate_filter(self, node: FilterNode) -> None:
        child_profile = _require_profile(node.child)
        profile, __ = self.estimator.apply_predicates(child_profile, node.predicates)
        node.est.profile = profile
        cost = self.cost_model.filter(child_profile.rows, len(node.predicates))
        self._finish(node, cost)

    def _annotate_collector(self, node: StatsCollectorNode) -> None:
        profile = _require_profile(node.child)
        node.est.profile = profile
        cost = self.cost_model.collector(profile.rows, node.spec.statistic_count)
        self._finish(node, cost)

    def _annotate_limit(self, node: LimitNode) -> None:
        child = node.child.est
        node.est.profile = child.profile
        node.est.rows = min(float(node.limit), child.rows)
        node.est.row_bytes = child.row_bytes
        cost = self.cost_model.limit(node.est.rows)
        est = node.est
        est.op_cost = cost.total_units(self.cost_model.params)
        est.total_cost = est.op_cost + node.child.est.total_cost
        est.pages = pages_for(est.rows, est.row_bytes, self.page_size)

    def _annotate_project(self, node: ProjectNode) -> None:
        from ..plans.logical import ColumnExpr

        child_profile = _require_profile(node.child)
        columns = {}
        for item in node.output:
            if isinstance(item.expr, ColumnExpr):
                stats = child_profile.column(item.expr.name)
                if stats is not None:
                    columns[item.name] = stats.renamed(item.name)
        profile = RelProfile(
            rows=child_profile.rows,
            row_bytes=float(node.schema.row_bytes),
            columns=columns,
            aliases=child_profile.aliases,
        )
        node.est.profile = profile
        cost = self.cost_model.project(child_profile.rows)
        self._finish(node, cost)

    # -- joins -------------------------------------------------------------

    def _annotate_hash_join(self, node: HashJoinNode) -> None:
        build_profile = _require_profile(node.build)
        probe_profile = _require_profile(node.probe)
        profile, __ = self.estimator.join(
            build_profile, probe_profile, node.key_pairs, node.residual
        )
        node.est.profile = profile
        build_pages = pages_for(
            build_profile.rows, build_profile.row_bytes, self.page_size
        )
        probe_pages = pages_for(
            probe_profile.rows, probe_profile.row_bytes, self.page_size
        )
        minimum, maximum = self.cost_model.hash_join_memory(build_pages)
        node.est.min_memory_pages = minimum
        node.est.max_memory_pages = maximum
        memory = self._memory_for(node)
        cost = self.cost_model.hash_join(
            build_rows=build_profile.rows,
            build_pages=build_pages,
            probe_rows=probe_profile.rows,
            probe_pages=probe_pages,
            output_rows=profile.rows,
            memory_pages=memory,
        )
        self._finish(node, cost)

    def _annotate_index_nl_join(self, node: IndexNLJoinNode) -> None:
        outer_profile = _require_profile(node.outer)
        inner_base = self._base_profile(node.inner_table, node.inner_alias)
        matched, matches_total = self.estimator.join(
            outer_profile,
            inner_base,
            [(node.outer_column, f"{node.inner_alias}.{node.inner_column}")],
        )
        if node.residual:
            profile, __ = self.estimator.apply_predicates(matched, node.residual)
        else:
            profile = matched
        node.est.profile = profile
        index = self.catalog.index_on(node.inner_table, node.inner_column)
        if index is None:
            raise OptimizerError(
                f"no index on {node.inner_table}.{node.inner_column} for index NL join"
            )
        inner_stats = self.catalog.stats_for(node.inner_table)
        cost = self.cost_model.index_nl_join(
            outer_rows=outer_profile.rows,
            height=index.height,
            entries_per_leaf=index.entries_per_leaf,
            matches_total=matches_total,
            clustered=index.clustered,
            inner_table_pages=inner_stats.page_count,
            output_rows=profile.rows,
        )
        self._finish(node, cost)

    def _annotate_block_nl_join(self, node: BlockNLJoinNode) -> None:
        outer_profile = _require_profile(node.outer)
        inner_profile = _require_profile(node.inner)
        profile, __ = self.estimator.join(
            outer_profile, inner_profile, [], node.predicates
        )
        node.est.profile = profile
        outer_pages = pages_for(
            outer_profile.rows, outer_profile.row_bytes, self.page_size
        )
        inner_pages = pages_for(
            inner_profile.rows, inner_profile.row_bytes, self.page_size
        )
        minimum, maximum = self.cost_model.block_nl_join_memory(outer_pages)
        node.est.min_memory_pages = minimum
        node.est.max_memory_pages = maximum
        memory = self._memory_for(node)
        cost = self.cost_model.block_nl_join(
            outer_rows=outer_profile.rows,
            outer_pages=outer_pages,
            inner_rows=inner_profile.rows,
            inner_pages=inner_pages,
            memory_pages=memory,
        )
        self._finish(node, cost)

    # -- aggregation & sort ----------------------------------------------------

    def _annotate_aggregate(self, node: HashAggregateNode) -> None:
        child_profile = _require_profile(node.child)
        groups = self.estimator.group_count(child_profile, node.group_by)
        row_bytes = float(node.schema.row_bytes)
        columns = {}
        for item in node.output:
            from ..plans.logical import ColumnExpr

            if isinstance(item.expr, ColumnExpr):
                stats = child_profile.column(item.expr.name)
                if stats is not None:
                    columns[item.name] = stats.renamed(item.name)
        profile = RelProfile(
            rows=groups,
            row_bytes=row_bytes,
            columns=columns,
            aliases=child_profile.aliases,
        )
        node.est.profile = profile
        group_pages = pages_for(groups, row_bytes, self.page_size)
        minimum, maximum = self.cost_model.aggregate_memory(group_pages)
        node.est.min_memory_pages = minimum
        node.est.max_memory_pages = maximum
        memory = self._memory_for(node)
        child_pages = pages_for(child_profile.rows, child_profile.row_bytes, self.page_size)
        cost = self.cost_model.aggregate(
            input_rows=child_profile.rows,
            input_pages=child_pages,
            group_pages=group_pages,
            memory_pages=memory,
        )
        self._finish(node, cost)

    def _annotate_distinct(self, node: DistinctNode) -> None:
        child_profile = _require_profile(node.child)
        known = [name for name in node.schema.names if child_profile.column(name)]
        if known:
            rows = self.estimator.group_count(child_profile, known)
        else:
            rows = child_profile.rows
        profile = RelProfile(
            rows=rows,
            row_bytes=child_profile.row_bytes,
            columns=dict(child_profile.columns),
            aliases=child_profile.aliases,
        )
        node.est.profile = profile
        out_pages = pages_for(rows, child_profile.row_bytes, self.page_size)
        minimum, maximum = self.cost_model.aggregate_memory(out_pages)
        node.est.min_memory_pages = minimum
        node.est.max_memory_pages = maximum
        memory = self._memory_for(node)
        child_pages = pages_for(
            child_profile.rows, child_profile.row_bytes, self.page_size
        )
        cost = self.cost_model.aggregate(
            input_rows=child_profile.rows,
            input_pages=child_pages,
            group_pages=out_pages,
            memory_pages=memory,
        )
        self._finish(node, cost)

    def _annotate_sort(self, node: SortNode) -> None:
        child = node.child.est
        node.est.profile = child.profile
        node.est.rows = child.rows
        node.est.row_bytes = child.row_bytes
        pages = pages_for(child.rows, child.row_bytes, self.page_size)
        minimum, maximum = self.cost_model.sort_memory(pages)
        node.est.min_memory_pages = minimum
        node.est.max_memory_pages = maximum
        memory = self._memory_for(node)
        cost = self.cost_model.sort(child.rows, pages, memory)
        est = node.est
        est.op_cost = cost.total_units(self.cost_model.params)
        est.total_cost = est.op_cost + node.child.est.total_cost
        est.pages = pages


def _require_profile(node: PlanNode) -> RelProfile:
    profile = node.est.profile
    if profile is None:
        raise OptimizerError(
            f"child node {node.label} (id={node.node_id}) has no profile; "
            "annotate children first"
        )
    return profile


def annotate_plan(
    plan: PlanNode,
    catalog: Catalog,
    estimator: Estimator,
    cost_model: CostModel,
    allocation: Mapping[int, int] | None = None,
    profile_overrides: Mapping[int, RelProfile] | None = None,
) -> PlanNode:
    """Convenience wrapper around :class:`PlanAnnotator`."""
    annotator = PlanAnnotator(
        catalog, estimator, cost_model,
        allocation=allocation, profile_overrides=profile_overrides,
    )
    return annotator.annotate(plan)


def estimate_snapshot(plan: PlanNode) -> dict[int, dict[str, float]]:
    """Freeze a plan's per-node estimates as plain numbers.

    The improved-estimate machinery overwrites ``node.est`` *in place* when
    run-time statistics arrive, so anything that wants to compare the
    optimizer's original numbers against reality (EXPLAIN ANALYZE, the
    tracer's switch-decision events) must snapshot them when the plan is
    adopted — node ids are globally unique, so snapshots from successive
    plans of one query never collide.
    """
    snapshot: dict[int, dict[str, float]] = {}
    for node in plan.walk():
        est = node.est
        snapshot[node.node_id] = {
            "rows": est.rows,
            "row_bytes": est.row_bytes,
            "bytes": est.rows * est.row_bytes,
            "pages": est.pages,
            "op_cost": est.op_cost,
            "total_cost": est.total_cost,
        }
    return snapshot
