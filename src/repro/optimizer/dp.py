"""System-R style dynamic-programming join enumeration.

Left-deep join trees over the query's relations, with hash join (either
input as the build side), indexed nested-loops join (when the inner relation
has an index on its join column), and block nested-loops (for non-equi or
cartesian steps) as the physical alternatives.  Cartesian products are
deferred until no connected extension exists — the classic System-R rule.

Paradise's optimizer was "built using the OPT++ architecture and uses a
conventional dynamic programming algorithm based on the System-R optimizer";
this module is our equivalent.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import OptimizerError
from ..plans.logical import Comparison, LogicalQuery, Predicate, qualifier_of
from ..plans.physical import (
    BlockNLJoinNode,
    FilterNode,
    HashJoinNode,
    IndexNLJoinNode,
    PlanNode,
)
from ..storage.catalog import Catalog
from .access_paths import best_access_path
from .annotate import PlanAnnotator


class JoinEnumerator:
    """Enumerates join orders for one bound query."""

    def __init__(
        self,
        query: LogicalQuery,
        catalog: Catalog,
        annotator: PlanAnnotator,
    ) -> None:
        self.query = query
        self.catalog = catalog
        self.annotator = annotator
        self.aliases = [rel.alias for rel in query.relations]
        #: Memoized best access path per alias.  ``_join_candidates`` needs
        #: the leaf for the newly added relation at every one of the
        #: O(n * 2^n) DP extension steps; the leaf only depends on the
        #: relation and its selection predicates, so it is computed once.
        self._leaf_cache: dict[str, PlanNode] = {}
        #: Memoized per-alias selection predicates (scanned from the full
        #: predicate list otherwise — quadratic in practice).
        self._selection_cache: dict[str, list[Predicate]] = {}

    # ------------------------------------------------------------------

    def _selection_predicates(self, alias: str) -> list[Predicate]:
        """Cached ``query.selection_predicates(alias)``."""
        preds = self._selection_cache.get(alias)
        if preds is None:
            preds = self._selection_cache[alias] = list(
                self.query.selection_predicates(alias)
            )
        return preds

    def _leaf(self, alias: str) -> PlanNode:
        """Cached best access path for one relation.

        Sharing the node object across candidate joins mirrors how DP
        already shares best sub-plans: enumeration never mutates children,
        and each alias appears at most once in the final left-deep tree, so
        the winning plan contains each shared leaf exactly once.
        """
        leaf = self._leaf_cache.get(alias)
        if leaf is None:
            relation = self.query.relation_for_alias(alias)
            leaf = self._leaf_cache[alias] = best_access_path(
                relation,
                self._selection_predicates(alias),
                self.catalog,
                self.annotator,
            )
        return leaf

    def best_join_plan(self) -> PlanNode:
        """The cheapest left-deep join plan covering every relation."""
        if not self.aliases:
            raise OptimizerError("query has no relations")
        best: dict[frozenset[str], PlanNode] = {}
        for relation in self.query.relations:
            best[frozenset({relation.alias})] = self._leaf(relation.alias)
        if len(self.aliases) == 1:
            return best[frozenset(self.aliases)]

        all_aliases = frozenset(self.aliases)
        for size in range(2, len(self.aliases) + 1):
            for subset in _subsets(self.aliases, size):
                # Dominated candidates are pruned as they are produced
                # (strict < keeps the first-minimal tie-breaking of the
                # previous list-then-min formulation) instead of being
                # accumulated and scanned again.
                best_connected: PlanNode | None = None
                best_any: PlanNode | None = None
                for alias in subset:
                    rest = subset - {alias}
                    left = best.get(rest)
                    if left is None:
                        continue
                    joins = self._join_candidates(left, rest, alias, subset)
                    for plan, is_connected in joins:
                        # Children (the best sub-plan and the leaf access
                        # path) are already annotated; only the new join
                        # node needs costing.
                        self.annotator.annotate_node(plan)
                        cost = plan.est.total_cost
                        if is_connected and (
                            best_connected is None
                            or cost < best_connected.est.total_cost
                        ):
                            best_connected = plan
                        if best_any is None or cost < best_any.est.total_cost:
                            best_any = plan
                winner = best_connected if best_connected is not None else best_any
                if winner is not None:
                    best[subset] = winner
        plan = best.get(all_aliases)
        if plan is None:
            raise OptimizerError("join enumeration failed to cover all relations")
        return plan

    # ------------------------------------------------------------------

    def _join_candidates(
        self,
        left: PlanNode,
        left_aliases: frozenset[str],
        new_alias: str,
        subset: frozenset[str],
    ) -> list[tuple[PlanNode, bool]]:
        """Physical join alternatives adding ``new_alias`` to ``left``."""
        relation = self.query.relation_for_alias(new_alias)
        key_pairs, residual = self._classify_predicates(left_aliases, new_alias, subset)
        is_connected = bool(key_pairs) or any(
            len(p.qualifiers()) >= 2 for p in residual
        )
        candidates: list[tuple[PlanNode, bool]] = []

        right = self._leaf(new_alias)

        if key_pairs:
            left_keys = [pair[0] for pair in key_pairs]
            right_keys = [pair[1] for pair in key_pairs]
            # Hash join, existing tree as build side.
            candidates.append(
                (HashJoinNode(left, right, key_pairs, residual), True)
            )
            # Hash join, new relation as build side.
            swapped = [(r, l) for l, r in key_pairs]
            candidates.append(
                (HashJoinNode(right, left, swapped, residual), True)
            )
            # Indexed nested loops, probing the new relation's index.
            table = self.catalog.table(relation.table_name)
            for outer_col, inner_col in zip(left_keys, right_keys):
                inner_base = inner_col.rsplit(".", 1)[-1]
                index = self.catalog.index_on(relation.table_name, inner_base)
                if index is None:
                    continue
                inl_residual = list(residual)
                inl_residual.extend(self._selection_predicates(new_alias))
                other_pairs = [
                    pair for pair in key_pairs if pair != (outer_col, inner_col)
                ]
                for lcol, rcol in other_pairs:
                    inl_residual.append(_equality(lcol, rcol))
                candidates.append(
                    (
                        IndexNLJoinNode(
                            outer=left,
                            inner_table=relation.table_name,
                            inner_alias=new_alias,
                            inner_schema=table.schema.qualify(new_alias),
                            outer_column=outer_col,
                            inner_column=inner_base,
                            residual=inl_residual,
                        ),
                        True,
                    )
                )
        else:
            candidates.append(
                (BlockNLJoinNode(left, right, residual), is_connected)
            )
        return candidates

    def _classify_predicates(
        self,
        left_aliases: frozenset[str],
        new_alias: str,
        subset: frozenset[str],
    ) -> tuple[list[tuple[str, str]], list[Predicate]]:
        """Split predicates into equi-join key pairs and residual conjuncts.

        A predicate becomes applicable at this join when its qualifiers fit
        inside ``subset`` but not inside ``left_aliases`` alone (those were
        applied below) and not inside ``{new_alias}`` alone (applied at the
        leaf).
        """
        key_pairs: list[tuple[str, str]] = []
        residual: list[Predicate] = []
        for pred in self.query.predicates:
            quals = pred.qualifiers()
            if not quals or not quals <= subset:
                continue
            if quals <= left_aliases or quals <= frozenset({new_alias}):
                continue
            if isinstance(pred, Comparison) and pred.is_equi_join:
                left_col, right_col = pred.left.name, pred.right.name  # type: ignore[union-attr]
                if qualifier_of(left_col) == new_alias:
                    left_col, right_col = right_col, left_col
                if (
                    qualifier_of(left_col) in left_aliases
                    and qualifier_of(right_col) == new_alias
                ):
                    key_pairs.append((left_col, right_col))
                    continue
            residual.append(pred)
        return key_pairs, residual


def _equality(left_col: str, right_col: str) -> Predicate:
    """Build an ``a = b`` residual predicate between two columns."""
    from ..plans.logical import ColumnExpr, CompareOp

    return Comparison(CompareOp.EQ, ColumnExpr(left_col), ColumnExpr(right_col))


def _subsets(items: Sequence[str], size: int):
    """All frozenset subsets of ``items`` with the given size."""
    from itertools import combinations

    for combo in combinations(items, size):
        yield frozenset(combo)
