"""Workloads: the paper's running example and the TPC-D-style benchmark."""

from .synthetic import RUNNING_EXAMPLE_SQL, SyntheticConfig, build_running_example

__all__ = ["RUNNING_EXAMPLE_SQL", "SyntheticConfig", "build_running_example"]
