"""Workloads: the paper's running example, the TPC-D-style benchmark, and
the concurrent-session workload driver."""

from .driver import (
    ClientScript,
    WorkloadReport,
    assert_parity,
    build_tpcd_scripts,
    percentile,
    run_concurrent,
    run_serial,
)
from .synthetic import RUNNING_EXAMPLE_SQL, SyntheticConfig, build_running_example

__all__ = [
    "ClientScript",
    "RUNNING_EXAMPLE_SQL",
    "SyntheticConfig",
    "WorkloadReport",
    "assert_parity",
    "build_running_example",
    "build_tpcd_scripts",
    "percentile",
    "run_concurrent",
    "run_serial",
]
