"""Concurrent workload driver for the query server.

Hammers a :class:`~repro.engine.server.QueryServer` with many interleaved
sessions — each simulated client gets its own :class:`Session` and its own
thread — and reports throughput and latency percentiles alongside the
admission/broker telemetry the run produced.

The driver's central contract is **parity**: the exact statement list each
client runs concurrently is also run serially, back to back, on the same
database, and :func:`assert_parity` demands byte-identical rows statement
by statement.  Admission waits, broker reclaims, mid-query re-grants and
the memory re-allocations they trigger may all reorder *when* work happens,
but never what it computes.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from .tpcd import ALL_QUERIES, TpcdQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.database import Database
    from ..engine.server import QueryServer

__all__ = [
    "ClientScript",
    "WorkloadReport",
    "assert_parity",
    "build_tpcd_scripts",
    "percentile",
    "run_concurrent",
    "run_serial",
]


@dataclass(frozen=True)
class ClientScript:
    """One simulated client: a named session and its statement list."""

    name: str
    statements: tuple[str, ...]


@dataclass
class WorkloadReport:
    """What one concurrent run did and how fast."""

    sessions: int
    statements: int
    elapsed_s: float
    #: Per-statement end-to-end latencies (seconds), in completion order.
    latencies_s: list[float] = field(default_factory=list)
    #: Rows per statement, per client, in each client's submission order.
    rows: list[list[list[tuple]]] = field(default_factory=list)
    #: Statement profiles mirroring :attr:`rows` (telemetry assertions).
    profiles: list[list] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Completed statements per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.statements / self.elapsed_s

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank), seconds."""
        return percentile(self.latencies_s, q)

    def summary(self) -> dict:
        """Plain-dict summary for benchmark JSON documents."""
        return {
            "sessions": self.sessions,
            "statements": self.statements,
            "elapsed_s": round(self.elapsed_s, 4),
            "throughput_qps": round(self.throughput_qps, 2),
            "latency_p50_ms": round(self.latency_percentile(50) * 1e3, 2),
            "latency_p90_ms": round(self.latency_percentile(90) * 1e3, 2),
            "latency_p99_ms": round(self.latency_percentile(99) * 1e3, 2),
            "errors": len(self.errors),
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def build_tpcd_scripts(
    sessions: int,
    statements_per_session: int,
    queries: Sequence[TpcdQuery] = ALL_QUERIES,
    seed: int = 1998,
) -> list[ClientScript]:
    """Deterministic interleaved TPC-D scripts, one per simulated client.

    Each client draws its statement sequence from its own seeded RNG, so
    the mix differs across clients but is reproducible run to run (and
    identical between the serial baseline and the concurrent run).
    """
    scripts = []
    for i in range(sessions):
        rng = random.Random(f"{seed}:{i}")
        statements = tuple(
            rng.choice(queries).sql for _ in range(statements_per_session)
        )
        scripts.append(ClientScript(name=f"client-{i}", statements=statements))
    return scripts


def run_serial(database: "Database", scripts: Sequence[ClientScript]):
    """The baseline: every script's statements, back to back, one at a time.

    Bypasses the server entirely (direct inline execution) — this is the
    single-query-at-a-time engine the server is measured against.  Returns
    ``(rows, elapsed_s)`` with ``rows[client][statement]``.
    """
    rows: list[list[list[tuple]]] = []
    t0 = perf_counter()
    for script in scripts:
        client_rows = []
        for sql in script.statements:
            prepared = database._prepare(sql)
            result = database._run(prepared, sql, mode=_full_mode())
            client_rows.append(result.rows)
        rows.append(client_rows)
    return rows, perf_counter() - t0


def run_concurrent(
    server: "QueryServer", scripts: Sequence[ClientScript]
) -> WorkloadReport:
    """Run every script on its own session/thread through the server."""
    report = WorkloadReport(
        sessions=len(scripts),
        statements=sum(len(s.statements) for s in scripts),
        elapsed_s=0.0,
        rows=[[] for _ in scripts],
        profiles=[[] for _ in scripts],
    )
    lock = threading.Lock()

    def client(index: int, script: ClientScript) -> None:
        session = server.session(script.name)
        try:
            for sql in script.statements:
                t0 = perf_counter()
                result = session.execute(sql)
                latency = perf_counter() - t0
                with lock:
                    report.rows[index].append(result.rows)
                    report.profiles[index].append(result.profile)
                    report.latencies_s.append(latency)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            with lock:
                report.errors.append(f"{script.name}: {exc!r}")
        finally:
            session.close()

    threads = [
        threading.Thread(target=client, args=(i, script), daemon=True)
        for i, script in enumerate(scripts)
    ]
    t0 = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = perf_counter() - t0
    return report


def assert_parity(
    serial_rows: list[list[list[tuple]]], report: WorkloadReport
) -> None:
    """Require byte-identical rows, statement by statement, client by client."""
    if report.errors:
        raise AssertionError(f"concurrent run had errors: {report.errors}")
    for client_index, (expected_client, actual_client) in enumerate(
        zip(serial_rows, report.rows)
    ):
        if len(expected_client) != len(actual_client):
            raise AssertionError(
                f"client {client_index}: {len(actual_client)} statements "
                f"completed, expected {len(expected_client)}"
            )
        for stmt_index, (expected, actual) in enumerate(
            zip(expected_client, actual_client)
        ):
            if expected != actual:
                raise AssertionError(
                    f"client {client_index} statement {stmt_index}: "
                    f"rows diverged from serial baseline "
                    f"({len(actual)} vs {len(expected)} rows)"
                )


def _full_mode():
    from ..core.modes import DynamicMode

    return DynamicMode.FULL
