"""The paper's running example workload (Figures 1-7).

Three relations and the three-way join-plus-aggregate query the paper uses
throughout section 2::

    SELECT avg(Rel1.selectattr1), avg(Rel1.selectattr2), Rel1.groupattr
    FROM   Rel1, Rel2, Rel3
    WHERE  Rel1.selectattr1 < :value1 AND Rel1.selectattr2 < :value2
       AND Rel1.joinattr2 = Rel2.joinattr2
       AND Rel1.joinattr3 = Rel3.joinattr3
    GROUP BY Rel1.groupattr

The generator's ``correlation`` knob controls how strongly ``selectattr2``
follows ``selectattr1``: at 0 the attributes are independent (the
optimizer's independence assumption holds); at 1 they are identical, so the
conjunction of the two range predicates is maximally under-estimated — the
exact error source behind the paper's Figure 4 scenario (footnote 2 lists
correlated attributes that histograms do not capture).

``rel1_stale_factor`` additionally lets experiments hand the optimizer an
out-of-date cardinality for Rel1 (the catalog believes the table is smaller
than it is), reproducing the 15000-estimated vs 7500-observed flavour of
mismatch from the Figure 3 memory-allocation walk-through.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.database import Database
from ..storage.schema import DataType

#: The running-example query (paper Figure 1), with host-variable parameters.
RUNNING_EXAMPLE_SQL = (
    "SELECT avg(rel1.selectattr1), avg(rel1.selectattr2), rel1.groupattr "
    "FROM rel1, rel2, rel3 "
    "WHERE rel1.selectattr1 < :value1 AND rel1.selectattr2 < :value2 "
    "AND rel1.joinattr2 = rel2.joinattr2 "
    "AND rel1.joinattr3 = rel3.joinattr3 "
    "GROUP BY rel1.groupattr"
)


@dataclass(frozen=True)
class SyntheticConfig:
    """Sizing and skew knobs for the running-example dataset."""

    rel1_rows: int = 40_000
    rel2_rows: int = 4_000
    rel3_rows: int = 120_000
    select_domain: int = 100
    group_domain: int = 25
    #: 0.0 = independent selection attributes; 1.0 = identical (the optimizer
    #: then *under*-estimates conjunctive range selections); -1.0 = perfectly
    #: anti-correlated, ``s2 = domain + 1 - s1`` (the optimizer then
    #: *over*-estimates them — the direction that lets dynamic memory
    #: re-allocation upgrade later operators, Figure 3).
    correlation: float = 1.0
    #: Factor applied to Rel1's catalog row count (1.0 = accurate stats).
    rel1_stale_factor: float = 1.0
    seed: int = 42
    #: Build an index on Rel3's join attribute (enables indexed NL joins,
    #: as in the paper's Figure 1 plan).
    index_rel3: bool = True


def build_running_example(
    db: Database, config: SyntheticConfig | None = None
) -> SyntheticConfig:
    """Create and load Rel1/Rel2/Rel3 into ``db`` and ANALYZE them."""
    cfg = config or SyntheticConfig()
    rng = random.Random(cfg.seed)

    db.create_table(
        "rel1",
        [
            ("id", DataType.INTEGER),
            ("selectattr1", DataType.INTEGER),
            ("selectattr2", DataType.INTEGER),
            ("joinattr2", DataType.INTEGER),
            ("joinattr3", DataType.INTEGER),
            ("groupattr", DataType.INTEGER),
            ("payload", DataType.STRING),
        ],
        key=["id"],
    )
    rows = []
    for i in range(cfg.rel1_rows):
        s1 = rng.randrange(1, cfg.select_domain + 1)
        if rng.random() < abs(cfg.correlation):
            s2 = s1 if cfg.correlation >= 0 else cfg.select_domain + 1 - s1
        else:
            s2 = rng.randrange(1, cfg.select_domain + 1)
        rows.append(
            (
                i,
                s1,
                s2,
                rng.randrange(cfg.rel2_rows),
                rng.randrange(cfg.rel3_rows),
                rng.randrange(cfg.group_domain),
                f"payload-{i % 97}",
            )
        )
    db.load_rows("rel1", rows)

    db.create_table(
        "rel2",
        [
            ("joinattr2", DataType.INTEGER),
            ("attr2a", DataType.INTEGER),
            ("attr2b", DataType.STRING),
        ],
        key=["joinattr2"],
    )
    db.load_rows(
        "rel2",
        [
            (i, rng.randrange(1000), f"r2-{i % 53}")
            for i in range(cfg.rel2_rows)
        ],
    )

    db.create_table(
        "rel3",
        [
            ("joinattr3", DataType.INTEGER),
            ("attr3a", DataType.INTEGER),
            ("attr3b", DataType.STRING),
            ("attr3c", DataType.FLOAT),
        ],
        key=["joinattr3"],
    )
    db.load_rows(
        "rel3",
        [
            (i, rng.randrange(5000), f"r3-{i % 31}", rng.random() * 100.0)
            for i in range(cfg.rel3_rows)
        ],
    )

    db.analyze()
    if cfg.index_rel3:
        db.create_index("idx_rel3_joinattr3", "rel3", "joinattr3", clustered=True)
    if cfg.rel1_stale_factor != 1.0:
        stats = db.catalog.stats_for("rel1").scaled_rows(cfg.rel1_stale_factor)
        db.catalog.set_stats("rel1", stats)
    return cfg
