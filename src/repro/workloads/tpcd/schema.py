"""TPC-D schema (the columns the paper's query set touches).

Table ratios follow the TPC-D specification [21]: per scale factor (SF) 1 —
150 000 customers, 1 500 000 orders, ~6 000 000 lineitems, 10 000 suppliers,
200 000 parts, 800 000 partsupps, 25 nations, 5 regions.  The paper ran at
SF 3; this reproduction defaults to small SFs (0.01–0.05) with the same
ratios, which preserves join selectivities and therefore plan behaviour.

Dates are stored as integer ordinals (see
:func:`repro.storage.schema.date_to_int`); the generator draws order dates
from 1992-01-01 to 1998-08-02 and ship dates 1–121 days after the order
date, exactly like dbgen — which is what makes order-date/ship-date
predicates *correlated across tables*, a natural estimation-error source.
"""

from __future__ import annotations

from ...storage.schema import Column, DataType, Schema, date_to_int

#: Rows per table at scale factor 1.0.
ROWS_AT_SF1 = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,  # approximate: 1-7 lineitems per order
}

START_DATE = date_to_int("1992-01-01")
END_DATE = date_to_int("1998-08-02")

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]
PART_TYPES = [
    "ECONOMY ANODIZED STEEL", "ECONOMY BRUSHED COPPER", "LARGE BURNISHED BRASS",
    "MEDIUM POLISHED NICKEL", "PROMO PLATED TIN", "SMALL PLATED COPPER",
    "STANDARD POLISHED BRASS",
]


def _schema(columns: list[tuple[str, DataType]]) -> Schema:
    return Schema(Column(name, dtype) for name, dtype in columns)


TPCD_SCHEMAS: dict[str, Schema] = {
    "region": _schema(
        [
            ("r_regionkey", DataType.INTEGER),
            ("r_name", DataType.STRING),
        ]
    ),
    "nation": _schema(
        [
            ("n_nationkey", DataType.INTEGER),
            ("n_name", DataType.STRING),
            ("n_regionkey", DataType.INTEGER),
        ]
    ),
    "supplier": _schema(
        [
            ("s_suppkey", DataType.INTEGER),
            ("s_name", DataType.STRING),
            ("s_nationkey", DataType.INTEGER),
            ("s_acctbal", DataType.FLOAT),
        ]
    ),
    "customer": _schema(
        [
            ("c_custkey", DataType.INTEGER),
            ("c_name", DataType.STRING),
            ("c_nationkey", DataType.INTEGER),
            ("c_acctbal", DataType.FLOAT),
            ("c_mktsegment", DataType.STRING),
        ]
    ),
    "part": _schema(
        [
            ("p_partkey", DataType.INTEGER),
            ("p_name", DataType.STRING),
            ("p_type", DataType.STRING),
            ("p_size", DataType.INTEGER),
            ("p_retailprice", DataType.FLOAT),
        ]
    ),
    "partsupp": _schema(
        [
            ("ps_partkey", DataType.INTEGER),
            ("ps_suppkey", DataType.INTEGER),
            ("ps_availqty", DataType.INTEGER),
            ("ps_supplycost", DataType.FLOAT),
        ]
    ),
    "orders": _schema(
        [
            ("o_orderkey", DataType.INTEGER),
            ("o_custkey", DataType.INTEGER),
            ("o_orderstatus", DataType.STRING),
            ("o_totalprice", DataType.FLOAT),
            ("o_orderdate", DataType.DATE),
            ("o_orderpriority", DataType.STRING),
            ("o_shippriority", DataType.INTEGER),
        ]
    ),
    "lineitem": _schema(
        [
            ("l_orderkey", DataType.INTEGER),
            ("l_partkey", DataType.INTEGER),
            ("l_suppkey", DataType.INTEGER),
            ("l_linenumber", DataType.INTEGER),
            ("l_quantity", DataType.FLOAT),
            ("l_extendedprice", DataType.FLOAT),
            ("l_discount", DataType.FLOAT),
            ("l_tax", DataType.FLOAT),
            ("l_returnflag", DataType.STRING),
            ("l_linestatus", DataType.STRING),
            ("l_shipdate", DataType.DATE),
            ("l_commitdate", DataType.DATE),
            ("l_receiptdate", DataType.DATE),
            ("l_shipmode", DataType.STRING),
        ]
    ),
}

#: Primary-key columns per table (used by the inaccuracy-potential rules).
TPCD_KEYS: dict[str, tuple[str, ...]] = {
    "region": ("r_regionkey",),
    "nation": ("n_nationkey",),
    "supplier": ("s_suppkey",),
    "customer": ("c_custkey",),
    "part": ("p_partkey",),
    "partsupp": (),
    "orders": ("o_orderkey",),
    "lineitem": (),
}

#: Indexes built by default: primary keys plus the foreign keys the paper's
#: query plans probe with indexed nested-loops joins.
TPCD_INDEXES: list[tuple[str, str, str, bool]] = [
    ("idx_region_pk", "region", "r_regionkey", True),
    ("idx_nation_pk", "nation", "n_nationkey", True),
    ("idx_supplier_pk", "supplier", "s_suppkey", True),
    ("idx_customer_pk", "customer", "c_custkey", True),
    ("idx_part_pk", "part", "p_partkey", True),
    ("idx_orders_pk", "orders", "o_orderkey", True),
    ("idx_lineitem_orderkey", "lineitem", "l_orderkey", True),
]


def rows_for(table: str, scale_factor: float) -> int:
    """Row count for a table at the given scale factor (min 1)."""
    return max(1, round(ROWS_AT_SF1[table] * scale_factor))
