"""The paper's TPC-D query set: Q1, Q3, Q5, Q6, Q7, Q8, Q10.

The paper modified the queries exactly as noted in its section 3.2: all
aggregates over expressions (e.g. ``SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT))``)
are replaced with simple aggregates (``SUM(L_EXTENDEDPRICE)``), and features
Paradise did not support (nested subqueries, EXTRACT, CASE) are flattened to
plain join/group-by forms.  We apply the same simplifications.

The paper's classification (section 3.2): Q1 and Q6 are *simple* (zero or
one join, never re-optimized), Q3 and Q10 are *medium* (two or three joins,
benefit mainly from memory re-allocation), and Q5, Q7, Q8 are *complex*
(four or more joins, the primary targets of plan modification).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TpcdQuery:
    """One benchmark query with the paper's complexity classification."""

    name: str
    category: str  # "simple" | "medium" | "complex"
    sql: str
    join_count: int

    @property
    def description(self) -> str:
        """One-line label used in experiment tables."""
        return f"{self.name} ({self.category}, {self.join_count} joins)"


Q1 = TpcdQuery(
    name="Q1",
    category="simple",
    join_count=0,
    sql=(
        "SELECT l_returnflag, l_linestatus, "
        "sum(l_quantity) AS sum_qty, "
        "sum(l_extendedprice) AS sum_base_price, "
        "avg(l_quantity) AS avg_qty, "
        "avg(l_extendedprice) AS avg_price, "
        "avg(l_discount) AS avg_disc, "
        "count(*) AS count_order "
        "FROM lineitem "
        "WHERE l_shipdate <= DATE '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    ),
)

Q3 = TpcdQuery(
    name="Q3",
    category="medium",
    join_count=2,
    sql=(
        "SELECT l_orderkey, sum(l_extendedprice) AS revenue, "
        "o_orderdate, o_shippriority "
        "FROM customer, orders, lineitem "
        "WHERE c_mktsegment = 'BUILDING' "
        "AND c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        "AND o_orderdate < DATE '1995-03-15' "
        "AND l_shipdate > DATE '1995-03-15' "
        "GROUP BY l_orderkey, o_orderdate, o_shippriority "
        "ORDER BY revenue DESC, o_orderdate "
        "LIMIT 10"
    ),
)

Q5 = TpcdQuery(
    name="Q5",
    category="complex",
    join_count=5,
    sql=(
        "SELECT n_name, sum(l_extendedprice) AS revenue "
        "FROM customer, orders, lineitem, supplier, nation, region "
        "WHERE c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        "AND l_suppkey = s_suppkey "
        "AND c_nationkey = s_nationkey "
        "AND s_nationkey = n_nationkey "
        "AND n_regionkey = r_regionkey "
        "AND r_name = 'ASIA' "
        "AND o_orderdate >= DATE '1994-01-01' "
        "AND o_orderdate < DATE '1995-01-01' "
        "GROUP BY n_name "
        "ORDER BY revenue DESC"
    ),
)

Q6 = TpcdQuery(
    name="Q6",
    category="simple",
    join_count=0,
    sql=(
        "SELECT sum(l_extendedprice) AS revenue "
        "FROM lineitem "
        "WHERE l_shipdate >= DATE '1994-01-01' "
        "AND l_shipdate < DATE '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 "
        "AND l_quantity < 24"
    ),
)

Q7 = TpcdQuery(
    name="Q7",
    category="complex",
    join_count=5,
    sql=(
        "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
        "sum(l_extendedprice) AS revenue "
        "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
        "WHERE s_suppkey = l_suppkey "
        "AND o_orderkey = l_orderkey "
        "AND c_custkey = o_custkey "
        "AND s_nationkey = n1.n_nationkey "
        "AND c_nationkey = n2.n_nationkey "
        "AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') "
        "OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) "
        "AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
        "GROUP BY n1.n_name, n2.n_name "
        "ORDER BY supp_nation, cust_nation"
    ),
)

Q8 = TpcdQuery(
    name="Q8",
    category="complex",
    join_count=7,
    sql=(
        "SELECT n2.n_name AS nation, avg(l_extendedprice) AS avg_volume "
        "FROM part, supplier, lineitem, orders, customer, "
        "nation n1, nation n2, region "
        "WHERE p_partkey = l_partkey "
        "AND s_suppkey = l_suppkey "
        "AND l_orderkey = o_orderkey "
        "AND o_custkey = c_custkey "
        "AND c_nationkey = n1.n_nationkey "
        "AND n1.n_regionkey = r_regionkey "
        "AND r_name = 'AMERICA' "
        "AND s_nationkey = n2.n_nationkey "
        "AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
        "AND p_type = 'ECONOMY ANODIZED STEEL' "
        "GROUP BY n2.n_name "
        "ORDER BY nation"
    ),
)

Q10 = TpcdQuery(
    name="Q10",
    category="medium",
    join_count=3,
    sql=(
        "SELECT c_custkey, c_name, sum(l_extendedprice) AS revenue, "
        "c_acctbal, n_name "
        "FROM customer, orders, lineitem, nation "
        "WHERE c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey "
        "AND o_orderdate >= DATE '1993-10-01' "
        "AND o_orderdate < DATE '1994-01-01' "
        "AND l_returnflag = 'R' "
        "AND c_nationkey = n_nationkey "
        "GROUP BY c_custkey, c_name, c_acctbal, n_name "
        "ORDER BY revenue DESC "
        "LIMIT 20"
    ),
)

#: The paper's full query set, in its reporting order.
ALL_QUERIES: tuple[TpcdQuery, ...] = (Q1, Q3, Q5, Q6, Q7, Q8, Q10)

SIMPLE_QUERIES = tuple(q for q in ALL_QUERIES if q.category == "simple")
MEDIUM_QUERIES = tuple(q for q in ALL_QUERIES if q.category == "medium")
COMPLEX_QUERIES = tuple(q for q in ALL_QUERIES if q.category == "complex")


def query_by_name(name: str) -> TpcdQuery:
    """Look up a query by its name (e.g. ``"Q5"``)."""
    for query in ALL_QUERIES:
        if query.name.lower() == name.lower():
            return query
    raise KeyError(f"unknown TPC-D query {name!r}")
