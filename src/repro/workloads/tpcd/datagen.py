"""TPC-D data generation.

A dbgen work-alike at configurable scale factor.  Two fidelity points matter
for the paper's experiments:

* **Skew** (Figure 12): with ``zipf_z > 0`` all non-key attributes are drawn
  from a generalized Zipfian distribution (Zipf [27] via [18]) instead of
  uniformly — foreign keys included, which is what moves join sizes away
  from the optimizer's uniform estimates.
* **Cross-table correlation**: ``l_shipdate`` is ``o_orderdate`` plus 1-121
  days, exactly like dbgen, so date predicates on orders and lineitem are
  correlated — an estimation-error source no single-table histogram
  captures.

``CatalogProfile`` controls what the optimizer knows: ``FRESH`` gives
MaxDiff histograms on everything (the serial-class histograms Paradise
used); ``COARSE`` gives few-bucket equi-width histograms (medium inaccuracy
potential); ``STALE`` additionally scales the fact tables' row counts and
sets the update-activity flag, modelling catalogs that were never
re-analysed after the data changed.  The
paper's misestimates at SF 3 arose naturally; at our small scale the knob
recreates comparable error magnitudes (see DESIGN.md section 3).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

import numpy as np

from ...engine.database import Database
from ...stats.histogram import HistogramKind
from ...stats.zipf import ZipfGenerator
from .schema import (
    END_DATE,
    LINE_STATUSES,
    MARKET_SEGMENTS,
    NATIONS,
    ORDER_PRIORITIES,
    PART_TYPES,
    REGIONS,
    RETURN_FLAGS,
    SHIP_MODES,
    START_DATE,
    TPCD_INDEXES,
    TPCD_KEYS,
    TPCD_SCHEMAS,
    rows_for,
)


class CatalogProfile(enum.Enum):
    """How good the optimizer's catalog statistics are."""

    FRESH = "fresh"      # MaxDiff histograms, accurate counts
    COARSE = "coarse"    # 8-bucket equi-width histograms
    STALE = "stale"      # coarse + scaled row counts + missing histograms


@dataclass(frozen=True)
class TpcdConfig:
    """Generation parameters."""

    scale_factor: float = 0.01
    #: Zipfian skew for non-key attributes; 0.0 = uniform (paper Figure 12
    #: uses 0.3 and 0.6).
    zipf_z: float = 0.0
    seed: int = 7
    catalog: CatalogProfile = CatalogProfile.COARSE
    #: Row-count error factor applied under the STALE profile.  The fact
    #: tables (lineitem, orders) are scaled by this factor; customer is
    #: scaled by its reciprocal — modelling a warehouse whose fact tables
    #: grew while a dimension shrank since the last ANALYZE, which yields
    #: both under- and over-estimates in one catalog.
    stale_row_factor: float = 0.5
    build_indexes: bool = True

    def stale_factor_for(self, table: str) -> float:
        """Per-table staleness multiplier under the STALE profile."""
        if table in ("lineitem", "orders"):
            return self.stale_row_factor
        if table == "customer":
            return 1.0 / self.stale_row_factor
        return 1.0


class _Skewed:
    """Draws skewed or uniform values over integer domains."""

    def __init__(self, z: float, seed: int) -> None:
        self.z = z
        self._rng = random.Random(seed)
        self._generators: dict[tuple[int, int], ZipfGenerator] = {}
        self._counter = 0

    def ints(self, n: int, domain: int, stream: int) -> np.ndarray:
        """``n`` integers in ``[0, domain)`` (Zipfian when z > 0)."""
        if self.z <= 0:
            rng = np.random.default_rng(self._rng.randrange(2**63) ^ stream)
            return rng.integers(0, domain, size=n)
        key = (domain, stream)
        gen = self._generators.get(key)
        if gen is None:
            gen = ZipfGenerator(domain, self.z, seed=stream * 977 + 13, permute=True)
            self._generators[key] = gen
        return gen.sample(n) - 1

    def choice(self, n: int, options: list[str], stream: int) -> list[str]:
        """``n`` categorical values (frequency-skewed when z > 0)."""
        indices = self.ints(n, len(options), stream)
        return [options[i] for i in indices]


def generate_tpcd(db: Database, config: TpcdConfig | None = None) -> TpcdConfig:
    """Generate, load, index and ANALYZE the TPC-D tables into ``db``."""
    cfg = config or TpcdConfig()
    rng = random.Random(cfg.seed)
    skew = _Skewed(cfg.zipf_z, cfg.seed + 1)

    for name, schema in TPCD_SCHEMAS.items():
        db.create_table(name, schema, key=TPCD_KEYS[name])

    # -- tiny dimension tables -------------------------------------------
    db.load_rows("region", [(i, name) for i, name in enumerate(REGIONS)])
    db.load_rows(
        "nation", [(i, name, region) for i, (name, region) in enumerate(NATIONS)]
    )

    n_supplier = rows_for("supplier", cfg.scale_factor)
    n_customer = rows_for("customer", cfg.scale_factor)
    n_part = rows_for("part", cfg.scale_factor)
    n_partsupp = rows_for("partsupp", cfg.scale_factor)
    n_orders = rows_for("orders", cfg.scale_factor)

    # -- supplier -----------------------------------------------------------
    s_nations = skew.ints(n_supplier, len(NATIONS), stream=11)
    db.load_rows(
        "supplier",
        [
            (i, f"Supplier#{i:09d}", int(s_nations[i]), round(rng.uniform(-999, 9999), 2))
            for i in range(n_supplier)
        ],
    )

    # -- customer -----------------------------------------------------------
    c_nations = skew.ints(n_customer, len(NATIONS), stream=12)
    c_segments = skew.choice(n_customer, MARKET_SEGMENTS, stream=13)
    db.load_rows(
        "customer",
        [
            (
                i,
                f"Customer#{i:09d}",
                int(c_nations[i]),
                round(rng.uniform(-999, 9999), 2),
                c_segments[i],
            )
            for i in range(n_customer)
        ],
    )

    # -- part / partsupp ---------------------------------------------------
    p_types = skew.choice(n_part, PART_TYPES, stream=14)
    p_sizes = skew.ints(n_part, 50, stream=15) + 1
    db.load_rows(
        "part",
        [
            (
                i,
                f"Part#{i:09d}",
                p_types[i],
                int(p_sizes[i]),
                round(900 + (i % 200) + (i % 1000) / 10.0, 2),
            )
            for i in range(n_part)
        ],
    )
    ps_parts = skew.ints(n_partsupp, n_part, stream=16)
    ps_supps = skew.ints(n_partsupp, n_supplier, stream=17)
    db.load_rows(
        "partsupp",
        [
            (
                int(ps_parts[i]),
                int(ps_supps[i]),
                rng.randrange(1, 10000),
                round(rng.uniform(1, 1000), 2),
            )
            for i in range(n_partsupp)
        ],
    )

    # -- orders & lineitem --------------------------------------------------
    o_custs = skew.ints(n_orders, n_customer, stream=18)
    date_span = END_DATE - START_DATE
    o_dates = skew.ints(n_orders, date_span, stream=19) + START_DATE
    o_prios = skew.choice(n_orders, ORDER_PRIORITIES, stream=20)
    order_rows = []
    lineitem_rows = []
    quantities = skew.ints(n_orders * 7, 50, stream=21) + 1
    discounts = skew.ints(n_orders * 7, 11, stream=22)  # 0.00 - 0.10
    l_parts = skew.ints(n_orders * 7, n_part, stream=23)
    l_supps = skew.ints(n_orders * 7, n_supplier, stream=24)
    flags = skew.choice(n_orders * 7, RETURN_FLAGS, stream=25)
    modes = skew.choice(n_orders * 7, SHIP_MODES, stream=26)
    li = 0
    for o in range(n_orders):
        order_date = int(o_dates[o])
        line_count = rng.randrange(1, 8)
        total = 0.0
        for line_no in range(1, line_count + 1):
            quantity = float(quantities[li])
            price = round(quantity * (900 + int(l_parts[li]) % 1000 / 10.0), 2)
            discount = discounts[li] / 100.0
            ship_date = min(order_date + rng.randrange(1, 122), END_DATE)
            commit_date = min(order_date + rng.randrange(30, 91), END_DATE)
            receipt_date = min(ship_date + rng.randrange(1, 31), END_DATE)
            status = "F" if ship_date < END_DATE - 400 else "O"
            lineitem_rows.append(
                (
                    o,
                    int(l_parts[li]),
                    int(l_supps[li]),
                    line_no,
                    quantity,
                    price,
                    discount,
                    round(rng.uniform(0.0, 0.08), 2),
                    flags[li],
                    status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    modes[li],
                )
            )
            total += price
            li += 1
        order_rows.append(
            (
                o,
                int(o_custs[o]),
                rng.choice(["F", "O", "P"]),
                round(total, 2),
                order_date,
                o_prios[o],
                rng.randrange(0, 2),
            )
        )
    db.load_rows("orders", order_rows)
    db.load_rows("lineitem", lineitem_rows)

    if cfg.build_indexes:
        for index_name, table, column, clustered in TPCD_INDEXES:
            db.create_index(index_name, table, column, clustered=clustered)

    _apply_catalog_profile(db, cfg)
    return cfg


def _apply_catalog_profile(db: Database, cfg: TpcdConfig) -> None:
    """ANALYZE under the requested statistics-quality profile."""
    if cfg.catalog is CatalogProfile.FRESH:
        db.analyze(histogram_kind=HistogramKind.MAXDIFF, num_buckets=32)
        return
    db.analyze(histogram_kind=HistogramKind.EQUI_WIDTH, num_buckets=8)
    if cfg.catalog is CatalogProfile.STALE:
        # The fact tables grew since the last ANALYZE: counts are off by
        # ``stale_row_factor`` and the update-activity flag is set (which
        # bumps every inaccuracy potential one level).  Histograms stay —
        # they are merely out of date, not absent.
        for table in ("lineitem", "orders", "customer"):
            stats = db.catalog.stats_for(table)
            stats = stats.scaled_rows(cfg.stale_factor_for(table))
            stats = stats.mark_updated()
            db.catalog.set_stats(table, stats)
