"""TPC-D-style workload: schema, data generator, and the paper's queries."""

from .datagen import CatalogProfile, TpcdConfig, generate_tpcd
from .queries import (
    ALL_QUERIES,
    COMPLEX_QUERIES,
    MEDIUM_QUERIES,
    SIMPLE_QUERIES,
    TpcdQuery,
    query_by_name,
)
from .schema import TPCD_KEYS, TPCD_SCHEMAS, rows_for

__all__ = [
    "ALL_QUERIES",
    "COMPLEX_QUERIES",
    "CatalogProfile",
    "MEDIUM_QUERIES",
    "SIMPLE_QUERIES",
    "TPCD_KEYS",
    "TPCD_SCHEMAS",
    "TpcdConfig",
    "TpcdQuery",
    "generate_tpcd",
    "query_by_name",
    "rows_for",
]
