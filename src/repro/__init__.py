"""repro: a reproduction of Kabra & DeWitt's Dynamic Re-Optimization
("Efficient Mid-Query Re-Optimization of Sub-Optimal Query Execution
Plans", SIGMOD 1998).

The package implements, from scratch, a small disk-based relational engine
(storage, statistics, SQL front end, System-R optimizer, memory manager,
iterator executor) and, on top of it, the paper's Dynamic Re-Optimization
algorithm: run-time statistics collectors placed by the SCIA, dynamic
memory re-allocation, and mid-query plan modification via temp-table
materialisation.

Quickstart::

    from repro import Database, DynamicMode, DataType

    db = Database()
    db.create_table("r", [("id", DataType.INTEGER), ("a", DataType.INTEGER)], key=["id"])
    db.load_rows("r", [(i, i % 10) for i in range(1000)])
    db.analyze()
    result = db.execute("SELECT a, count(*) FROM r GROUP BY a", mode=DynamicMode.FULL)
"""

from .config import CostParameters, EngineConfig, ReoptimizationParameters
from .core.modes import DynamicMode
from .engine.database import Database
from .engine.plan_cache import PlanCache, PlanCacheStats
from .engine.prepared import PreparedStatement
from .engine.profile import ExecutionProfile, PhaseBreakdown
from .engine.results import QueryResult
from .engine.server import QueryServer
from .engine.session import Session
from .errors import AdmissionError, ReproError, SessionError
from .observe.analyze import ExplainAnalyzeReport
from .observe.metrics import MetricsRegistry, default_registry
from .observe.trace import QueryTracer
from .stats.histogram import HistogramKind
from .storage.schema import Column, DataType, Schema, date_to_int, int_to_date

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "Column",
    "CostParameters",
    "DataType",
    "Database",
    "DynamicMode",
    "EngineConfig",
    "ExecutionProfile",
    "ExplainAnalyzeReport",
    "HistogramKind",
    "MetricsRegistry",
    "PhaseBreakdown",
    "PlanCache",
    "PlanCacheStats",
    "PreparedStatement",
    "QueryResult",
    "QueryServer",
    "QueryTracer",
    "ReoptimizationParameters",
    "ReproError",
    "Schema",
    "Session",
    "SessionError",
    "date_to_int",
    "default_registry",
    "int_to_date",
    "__version__",
]
