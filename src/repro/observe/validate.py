"""Chrome trace-event schema validation.

Used by CI (and the test suite) to prove an exported trace is loadable:
``python -m repro.observe.validate trace.json`` exits non-zero and prints
every violation if the file is malformed.

Checks:

* top level is an object with a ``traceEvents`` list;
* every event has ``name``/``ph``/``ts``/``pid``/``tid`` and a known phase;
* timestamps are monotonically non-decreasing in file order;
* ``B``/``E`` events balance as a LIFO stack per ``(pid, tid)`` with
  matching names, and every stack is empty at end of file;
* ``X`` events carry a non-negative ``dur``.
"""

from __future__ import annotations

import json
import sys
from typing import Any

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
KNOWN_PHASES = {"B", "E", "X", "i", "I", "M", "C"}


def validate_trace(document: Any) -> list[str]:
    """Return a list of schema violations (empty when the trace is valid)."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    if not events:
        errors.append("'traceEvents' is empty")

    last_ts: float | None = None
    stacks: dict[tuple[Any, Any], list[str]] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in REQUIRED_KEYS if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        phase = event["ph"]
        ts = event["ts"]
        if phase not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: non-numeric ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts - 1e-9:
            errors.append(
                f"{where}: timestamp {ts} goes backwards (previous {last_ts})"
            )
        last_ts = max(ts, last_ts) if last_ts is not None else ts

        key = (event["pid"], event["tid"])
        if phase == "B":
            stacks.setdefault(key, []).append(event["name"])
        elif phase == "E":
            stack = stacks.get(key, [])
            if not stack:
                errors.append(f"{where}: 'E' for {event['name']!r} with no open 'B'")
            else:
                opened = stack.pop()
                if opened != event["name"]:
                    errors.append(
                        f"{where}: 'E' for {event['name']!r} closes "
                        f"open span {opened!r} (interleaved, not nested)"
                    )
        elif phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"{where}: 'X' event needs a non-negative dur, got {duration!r}")

    for key, stack in stacks.items():
        if stack:
            errors.append(f"unbalanced spans on pid/tid {key}: still open {stack}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.observe.validate TRACE.json", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable trace: {exc}", file=sys.stderr)
        return 2
    errors = validate_trace(document)
    if errors:
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        return 1
    count = len(document["traceEvents"])
    print(f"{path}: valid Chrome trace ({count} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
