"""Prometheus-style text exposition of a metrics snapshot.

Renders the plain-dict output of
:meth:`~repro.observe.metrics.MetricsRegistry.snapshot` (counters, gauges,
fixed-bucket histograms) in the Prometheus text exposition format, with two
translations the registry's internal shape needs:

* dotted metric names (``plan_cache.hits``) become legal Prometheus names
  under a common prefix (``repro_plan_cache_hits``), with every illegal
  character replaced by ``_``;
* histogram buckets are stored *non-cumulative* (each key counts only its
  own interval) and are cumulated here, ending in the mandatory
  ``le="+Inf"`` bucket that equals ``_count``.

The module is deliberately stdlib-only and imports nothing from the engine:
``python -m repro.observe.export <snapshot.json>`` turns a snapshot file an
engine dumped earlier (``json.dump(db.metrics_snapshot(), fh)``) into a
scrape-ready page without loading — or even having — the engine itself.
"""

from __future__ import annotations

import json
import re
import sys
from typing import Mapping

__all__ = ["prometheus_name", "render_prometheus", "main"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_BAD = re.compile(r"^[^a-zA-Z_:]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """A legal Prometheus metric name for one registry entry."""
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_OK.sub("_", full)
    return _LEADING_BAD.sub("_", full)


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _bucket_bound(key: str) -> float:
    """Upper bound of a snapshot bucket key (``le_0.1`` / ``le_inf``)."""
    text = key[3:] if key.startswith("le_") else key
    if text == "inf":
        return float("inf")
    return float(text)


def _render_histogram(lines: list[str], name: str, data: Mapping) -> None:
    buckets = data.get("buckets", {})
    bounds = sorted(
        ((_bucket_bound(key), key) for key in buckets), key=lambda b: b[0]
    )
    cumulative = 0
    for bound, key in bounds:
        cumulative += int(buckets[key])
        label = "+Inf" if bound == float("inf") else f"{bound:g}"
        lines.append(f'{name}_bucket{{le="{label}"}} {cumulative}')
    if not bounds or bounds[-1][0] != float("inf"):
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {_format_value(data.get('sum', 0.0))}")
    lines.append(f"{name}_count {_format_value(data.get('count', 0))}")


def render_prometheus(snapshot: Mapping[str, Mapping], prefix: str = "repro") -> str:
    """The Prometheus text-format page for one metrics snapshot."""
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        data = snapshot[raw_name]
        if not isinstance(data, Mapping):
            continue
        kind = data.get("type")
        name = prometheus_name(raw_name, prefix)
        if kind == "counter":
            lines.append(f"# HELP {name} Counter {raw_name!r}.")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(data.get('value', 0.0))}")
        elif kind == "gauge":
            lines.append(f"# HELP {name} Gauge {raw_name!r}.")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(data.get('value', 0.0))}")
        elif kind == "histogram":
            lines.append(f"# HELP {name} Histogram {raw_name!r}.")
            lines.append(f"# TYPE {name} histogram")
            _render_histogram(lines, name, data)
    return "\n".join(lines) + ("\n" if lines else "")


def main(argv: list[str] | None = None) -> int:
    """CLI: render a snapshot JSON file (``-`` for stdin) for scraping."""
    argv = list(sys.argv[1:] if argv is None else argv)
    prefix = "repro"
    if "--prefix" in argv:
        at = argv.index("--prefix")
        try:
            prefix = argv[at + 1]
        except IndexError:
            print("--prefix needs a value", file=sys.stderr)
            return 2
        del argv[at : at + 2]
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print(
            "usage: python -m repro.observe.export [--prefix NAME] "
            "<snapshot.json | ->",
            file=sys.stderr,
        )
        return 2
    try:
        if argv[0] == "-":
            snapshot = json.load(sys.stdin)
        else:
            with open(argv[0], "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read snapshot: {exc}", file=sys.stderr)
        return 2
    if not isinstance(snapshot, dict):
        print("snapshot must be a JSON object", file=sys.stderr)
        return 2
    sys.stdout.write(render_prometheus(snapshot, prefix))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
