"""EXPLAIN ANALYZE: estimated vs. actual, per plan node.

The paper's premise is that optimizer estimates go visibly wrong at run
time; this module renders that gap.  After executing a query,
:func:`analyze_execution` walks every plan the dispatcher ran (the initial
plan plus any adopted by mid-query switches) and reports, per node:

* estimated rows/size/cost as the optimizer saw them **when the plan was
  adopted** (snapshotted by the tracer before improved estimates overwrite
  ``node.est`` in place),
* actual rows and derived actual size, plus the node's simulated-clock
  window (the cost-clock interval between the node's first start and last
  completion — an *attribution* of simulated time, approximate because
  consumer charges interleave in the pull model),
* the Q-error of the cardinality estimate,
* for statistics-collector nodes: which statistics fired (cardinality,
  histograms, distinct sketches), the SCIA inaccuracy-potential ranking of
  the estimate being checked, and a verdict on whether that ranking
  predicted where estimates actually went bad.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..plans.physical import PlanNode, StatsCollectorNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.profile import ExecutionProfile
    from ..engine.results import QueryResult
    from ..executor.dispatcher import DispatchResult
    from ..executor.runtime import RuntimeContext
    from .trace import QueryTracer

#: A cardinality estimate with Q-error at or above this is "wrong" for the
#: purposes of the SCIA-verdict bookkeeping (a factor of two either way).
Q_ERROR_BAD = 2.0


def q_error(estimated: float, actual: float) -> float:
    """Symmetric relative error ``max(est/act, act/est)``, floored at one
    row on both sides so empty results stay finite."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def _fmt_bytes(value: float | None) -> str:
    if value is None:
        return "?"
    if value >= 1024 * 1024:
        return f"{value / (1024 * 1024):.1f}MB"
    if value >= 1024:
        return f"{value / 1024:.1f}KB"
    return f"{value:.0f}B"


@dataclass
class CollectorInsight:
    """What one statistics collector observed, and how SCIA ranked it."""

    fired: bool
    observed_rows: int | None
    statistics: tuple[str, ...]
    potential: str | None
    kept: int
    dropped: int
    verdict: str

    def format(self) -> str:
        if not self.fired:
            return "collector: did not complete"
        stats = ", ".join(self.statistics) if self.statistics else "cardinality"
        parts = [f"collector: observed rows={self.observed_rows} [{stats}]"]
        if self.potential is not None:
            parts.append(f"potential={self.potential}")
        if self.verdict:
            parts.append(f"verdict={self.verdict}")
        if self.kept or self.dropped:
            parts.append(f"(scia kept {self.kept}, dropped {self.dropped})")
        return " ".join(parts)


@dataclass
class NodeAnalysis:
    """Estimated vs. actual for one plan node."""

    node_id: int
    depth: int
    label: str
    detail: str
    est_rows: float
    est_bytes: float
    est_cost: float
    actual_rows: int | None
    actual_bytes: float | None
    sim_window: tuple[float, float] | None
    rows_q_error: float | None
    collector: CollectorInsight | None = None
    #: For sequential scans executed on the columnar path: page groups
    #: skipped via zone maps vs. read (``{"groups_read", "groups_skipped",
    #: "pages_skipped", "rows_skipped", "table"}``), None otherwise.
    #: Skipped rows are exact free observations — already included in
    #: ``actual_rows``, so Q-error never counts them as missing.
    zone_map: dict | None = None
    #: For nodes served by a vectorized kernel: the per-node counters
    #: (``{"kind": "aggregate"|"preagg-run"|"probe", ...}`` with
    #: ``rows_folded``/``groups`` for aggregates and
    #: ``rows_probed``/``matches`` for probes), None otherwise.
    vectorized: dict | None = None
    #: For nodes whose estimate was corrected by the cross-query feedback
    #: repository at annotation time: the correction stamp
    #: (``{"signature", "histogram_rows", "observed_rows",
    #: "corrected_rows", "source", "record_q_error"}``), None otherwise.
    feedback: dict | None = None
    #: Shown when the node never completed: a mid-query switch abandoned
    #: the plan, or a consumer (e.g. LIMIT) stopped pulling early.
    not_run_note: str = "not executed"

    @property
    def executed(self) -> bool:
        return self.actual_rows is not None

    @property
    def sim_cost(self) -> float | None:
        """The node's simulated-clock window (attributed actual cost)."""
        if self.sim_window is None:
            return None
        return self.sim_window[1] - self.sim_window[0]

    def format_lines(self) -> list[str]:
        indent = "  " * self.depth
        head = f"{indent}{self.label}"
        if self.detail:
            head += f" [{self.detail}]"
        est = (
            f"{indent}    est:  rows={self.est_rows:.0f}"
            f" size={_fmt_bytes(self.est_bytes)} cost={self.est_cost:.1f}"
        )
        if self.executed:
            sim = ""
            if self.sim_cost is not None:
                sim = f" sim_cost={self.sim_cost:.1f}"
            act = (
                f"{indent}    act:  rows={self.actual_rows}"
                f" size={_fmt_bytes(self.actual_bytes)}{sim}"
                f" q_error={self.rows_q_error:.2f}"
            )
        else:
            act = f"{indent}    act:  ({self.not_run_note})"
        lines = [head, est, act]
        if self.zone_map is not None:
            read = self.zone_map.get("groups_read", 0)
            skipped = self.zone_map.get("groups_skipped", 0)
            total = read + skipped
            rate = (skipped / total) if total else 0.0
            lines.append(
                f"{indent}    zone maps: skipped {skipped}/{total} page groups "
                f"({rate:.0%}, {self.zone_map.get('pages_skipped', 0)} pages, "
                f"{self.zone_map.get('rows_skipped', 0)} rows)"
            )
        if self.vectorized is not None:
            kind = self.vectorized.get("kind", "?")
            if kind == "probe":
                lines.append(
                    f"{indent}    vectorized probe: "
                    f"{self.vectorized.get('rows_probed', 0)} rows probed, "
                    f"{self.vectorized.get('matches', 0)} matches"
                )
            else:
                lines.append(
                    f"{indent}    vectorized {kind}: "
                    f"{self.vectorized.get('rows_folded', 0)} rows folded into "
                    f"{self.vectorized.get('groups', 0)} groups"
                )
        if self.feedback is not None:
            lines.append(
                f"{indent}    feedback: corrected rows "
                f"{self.feedback.get('histogram_rows', 0):.0f} -> "
                f"{self.feedback.get('corrected_rows', 0):.0f} "
                f"(observed {self.feedback.get('observed_rows', 0):.0f} "
                f"via {self.feedback.get('source', '?')}, "
                f"recorded q_error="
                f"{self.feedback.get('record_q_error', 0):.2f})"
            )
        if self.collector is not None:
            lines.append(f"{indent}    {self.collector.format()}")
        return lines


@dataclass
class PlanAnalysis:
    """All node analyses for one plan the dispatcher ran."""

    index: int
    total: int
    outcome: str  # "completed" | "switched"
    materialized_rows: int | None
    nodes: list[NodeAnalysis] = field(default_factory=list)

    def header(self) -> str:
        title = f"plan {self.index + 1} of {self.total}"
        if self.outcome == "switched":
            title += (
                f" — abandoned by mid-query switch after materializing "
                f"{self.materialized_rows} rows"
            )
        elif self.total > 1:
            title += " — final"
        return title


@dataclass
class ExplainAnalyzeReport:
    """The full EXPLAIN ANALYZE output for one executed query."""

    sql: str
    result: "QueryResult"
    plans: list[PlanAnalysis]
    profile: "ExecutionProfile"

    def node(self, node_id: int) -> NodeAnalysis:
        for plan in self.plans:
            for analysis in plan.nodes:
                if analysis.node_id == node_id:
                    return analysis
        raise KeyError(node_id)

    @property
    def worst_q_error(self) -> float:
        errors = [
            analysis.rows_q_error
            for plan in self.plans
            for analysis in plan.nodes
            if analysis.rows_q_error is not None
        ]
        return max(errors, default=1.0)

    def render(self) -> str:
        lines = [f"EXPLAIN ANALYZE {self.sql}"]
        for plan in self.plans:
            lines.append("")
            lines.append(plan.header())
            for analysis in plan.nodes:
                lines.extend(analysis.format_lines())
        lines.append("")
        lines.append(self.profile.summary())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _potential_name(value: Any) -> str | None:
    if value is None:
        return None
    name = getattr(value, "name", None)
    return name.lower() if isinstance(name, str) else str(value)


def _verdict(potential: str | None, rows_q_error: float | None) -> str:
    """Did SCIA's inaccuracy-potential ranking predict this estimate going
    bad?  ``predicted``/``missed`` when ranking and reality agree/disagree
    on a bad estimate, ``ok``/``false-alarm`` otherwise."""
    if potential is None or rows_q_error is None:
        return ""
    went_bad = rows_q_error >= Q_ERROR_BAD
    ranked_risky = potential in ("medium", "high")
    if went_bad:
        return "predicted" if ranked_risky else "missed"
    return "false-alarm" if ranked_risky else "ok"


def _collector_insight(
    node: StatsCollectorNode,
    ctx: "RuntimeContext",
    rows_q_error: float | None,
) -> CollectorInsight:
    observed = ctx.observed.get(node.node_id)
    statistics: list[str] = []
    if observed is not None:
        statistics.extend(f"hist({name})" for name in sorted(observed.histograms))
        statistics.extend(
            f"distinct({', '.join(cols)})" for cols in sorted(observed.distincts)
        )
    else:
        spec = node.spec
        statistics.extend(f"hist({name})" for name in spec.histogram_columns)
        statistics.extend(
            f"distinct({', '.join(cols)})" for cols in spec.distinct_column_sets
        )
    potential = _potential_name(getattr(node, "scia_potential", None))
    return CollectorInsight(
        fired=observed is not None,
        observed_rows=observed.row_count if observed is not None else None,
        statistics=tuple(statistics),
        potential=potential,
        kept=len(getattr(node, "scia_kept", ())),
        dropped=len(getattr(node, "scia_dropped", ())),
        verdict=_verdict(potential, rows_q_error) if observed is not None else "",
    )


def analyze_execution(
    sql: str,
    outcome: "DispatchResult",
    ctx: "RuntimeContext",
    tracer: "QueryTracer",
    result: "QueryResult",
    profile: "ExecutionProfile",
) -> ExplainAnalyzeReport:
    """Build the EXPLAIN ANALYZE report from one finished execution."""
    plans: list[PlanAnalysis] = []
    total = len(outcome.plan_history)
    for index, plan in enumerate(outcome.plan_history):
        switched = index < total - 1
        analysis = PlanAnalysis(
            index=index,
            total=total,
            outcome="switched" if switched else "completed",
            materialized_rows=(
                outcome.switch_events[index].materialized_rows if switched else None
            ),
        )

        def visit(node: PlanNode, depth: int) -> None:
            estimates = tracer.estimates.get(node.node_id, {})
            est_rows = estimates.get("rows", node.est.rows)
            est_bytes = estimates.get(
                "bytes", node.est.rows * node.est.row_bytes
            )
            est_cost = estimates.get("total_cost", node.est.total_cost)
            actual_rows = ctx.actual_rows.get(node.node_id)
            window = tracer.node_windows.get(node.node_id)
            sim_window = None
            if window is not None and window[0] is not None and window[1] is not None:
                sim_window = (window[0], window[1])
            rows_q_error = (
                q_error(est_rows, actual_rows) if actual_rows is not None else None
            )
            node_analysis = NodeAnalysis(
                node_id=node.node_id,
                depth=depth,
                label=node.label,
                detail=node.detail(),
                est_rows=est_rows,
                est_bytes=est_bytes,
                est_cost=est_cost,
                actual_rows=actual_rows,
                actual_bytes=(
                    float(actual_rows * node.schema.row_bytes)
                    if actual_rows is not None
                    else None
                ),
                sim_window=sim_window,
                rows_q_error=rows_q_error,
                not_run_note=(
                    "not executed — plan abandoned first"
                    if switched
                    else "did not complete — consumer stopped pulling early"
                ),
            )
            per_scan = ctx.columnar.by_scan.get(node.node_id)
            if per_scan is not None:
                node_analysis.zone_map = dict(per_scan)
            per_vector = ctx.vector.by_node.get(node.node_id)
            if per_vector is not None:
                node_analysis.vectorized = dict(per_vector)
            correction = getattr(node, "feedback_correction", None)
            if correction is not None:
                node_analysis.feedback = dict(correction)
            if isinstance(node, StatsCollectorNode):
                node_analysis.collector = _collector_insight(node, ctx, rows_q_error)
            analysis.nodes.append(node_analysis)
            for child in node.children:
                visit(child, depth + 1)

        visit(plan, 0)
        plans.append(analysis)
    return ExplainAnalyzeReport(sql=sql, result=result, plans=plans, profile=profile)
