"""Process-wide metrics registry.

Named counters, gauges, and histograms that accumulate *across* queries —
the cross-query complement to the per-query :class:`~repro.observe.trace.QueryTracer`.
The engine feeds it plan-cache hit/miss/eviction counts, reoptimizer
switch/reallocation counts, parallel rows shipped vs. pre-aggregated, and
buffer-pool hit rates; benchmarks dump :meth:`MetricsRegistry.snapshot`
into their ``BENCH_*.json`` documents so the perf trajectory records the
*why* alongside the timings.

Everything here is simulated-clock-free and purely additive: recording a
metric never touches the cost clock, so metrics (like tracing) cannot
perturb parity.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..concurrency import fork_safe_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]

#: Default histogram bucket upper bounds (wide enough for both wall-clock
#: seconds and simulated cost units).
DEFAULT_BUCKETS = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """Monotonically increasing named value.

    ``inc`` holds a per-metric lock: Python's ``+=`` on an attribute is a
    read-modify-write, and concurrent server sessions incrementing the same
    counter must not lose updates.
    """

    __slots__ = ("name", "value", "_lock", "__weakref__")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        fork_safe_lock(self, "_lock", reentrant=False)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value", "_lock", "__weakref__")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        fork_safe_lock(self, "_lock", reentrant=False)

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> float:
        """Atomic read-modify-write adjust (queue depths, active sessions)."""
        with self._lock:
            self.value += float(delta)
            return self.value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``observe`` updates five fields; the per-metric lock keeps them mutually
    consistent under concurrent sessions (count must equal the bucket sum).
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "minimum", "maximum", "_lock", "__weakref__")

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(float(bound) for bound in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        fork_safe_lock(self, "_lock", reentrant=False)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.minimum = value if self.minimum is None else min(self.minimum, value)
            self.maximum = value if self.maximum is None else max(self.maximum, value)
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {
                f"le_{bound:g}": count
                for bound, count in zip(self.bounds, self.bucket_counts)
            }
            buckets["le_inf"] = self.bucket_counts[-1]
            return {
                "type": "histogram",
                "count": self.count,
                "sum": round(self.total, 9),
                "min": self.minimum,
                "max": self.maximum,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Thread-safe registry of named metrics.

    Names are dotted (``plan_cache.hits``); the first accessor to use a
    name fixes its type, and re-registering under a different type raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict snapshot of every metric, sorted by name — safe to
        embed directly in JSON benchmark documents."""
        with self._lock:
            return {
                name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
            }

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry engines record into unless given their own."""
    return _DEFAULT_REGISTRY
