"""The slow-query log: one structured JSON line per slow statement.

Enabled by :attr:`~repro.config.EngineConfig.slow_query_s` (or the
``REPRO_SLOW_QUERY`` environment variable): any statement whose end-to-end
wall-clock time — compile phases plus execution — reaches the threshold
emits one line to :attr:`~repro.config.EngineConfig.slow_query_path`
(appended; ``stderr`` when no path is configured).  The line carries the
profile summary a person debugging the query would ask for first, plus the
feedback repository's verdict on the execution (how many fragments were
misestimated and how badly), so "slow because the optimizer was wrong" is
distinguishable from "slow because the query is big" without re-running
anything.

Emission happens after the simulated cost clock stopped and only reads the
finished profile — it can never perturb costs, statistics or results.
"""

from __future__ import annotations

import json
import sys
import time
from typing import TYPE_CHECKING, TextIO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.profile import ExecutionProfile
    from .metrics import MetricsRegistry

__all__ = ["build_slow_query_record", "emit_slow_query"]


def build_slow_query_record(
    profile: "ExecutionProfile", threshold_s: float
) -> dict:
    """The JSON document logged for one slow statement."""
    phases = profile.phases
    record = {
        "event": "slow_query",
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "sql": profile.sql,
        "session": profile.session,
        "executed_via": profile.executed_via,
        "mode": profile.mode,
        "threshold_s": threshold_s,
        "total_wall_s": round(phases.total_s, 6),
        "compile_wall_s": round(phases.compile_s, 6),
        "execute_wall_s": round(phases.execute_s, 6),
        "admission_wait_s": round(profile.admission_wait_s, 6),
        "simulated_cost": round(profile.total_cost, 6),
        "rows": profile.row_count,
        "plan_cache_hit": profile.plan_cache_hit,
        "plan_switches": profile.plan_switches,
        "memory_reallocations": profile.memory_reallocations,
        "collectors_inserted": profile.collectors_inserted,
        "memory_granted_pages": profile.memory_granted_pages,
    }
    if profile.feedback_records or profile.feedback_corrections:
        record["feedback"] = {
            "corrections": profile.feedback_corrections,
            "records": profile.feedback_records,
            "worst_q_error": round(profile.feedback_worst_q_error, 3),
            "worst_fragment": profile.feedback_worst_fragment,
        }
    return record


def emit_slow_query(
    profile: "ExecutionProfile",
    threshold_s: float,
    path: str = "",
    metrics: "MetricsRegistry | None" = None,
    stream: TextIO | None = None,
) -> dict:
    """Append one slow-query line; returns the record that was written.

    ``path`` wins over ``stream``; with neither, the line goes to stderr.
    A log line is never worth failing the query over, so write errors are
    swallowed (counted in ``slow_query.log_errors`` when metrics are
    attached).
    """
    record = build_slow_query_record(profile, threshold_s)
    line = json.dumps(record, separators=(",", ":"), sort_keys=True)
    try:
        if path:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        else:
            print(line, file=stream if stream is not None else sys.stderr)
    except OSError:
        if metrics is not None:
            metrics.counter("slow_query.log_errors").inc()
    if metrics is not None:
        metrics.counter("slow_query.count").inc()
    return record
