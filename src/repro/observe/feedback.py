"""Persistent estimate-feedback repository: cross-query learning from Q-error.

The paper's loop — collect statistics, detect estimate inaccuracy,
re-optimize — is *within* one query; PR 5's ``explain_analyze`` computes
per-node Q-error and throws it away when the query ends.  This module keeps
it.  At query end the engine absorbs one :class:`FeedbackRecord` per
distinct plan fragment that completed (estimate snapshot taken at plan
adoption vs. the collector-observed actual cardinality), keyed by a
*normalized fragment signature* so the knowledge transfers across plan
shapes, executions, and processes:

* **signature scheme** — a fragment's canonical text is structural, never
  node-id based: ``scan(table)``, ``filter(scan(t), [sorted predicate
  SQL])``, commutative ``join({sorted inputs}, [sorted keys], [residual])``,
  ``agg(input, [group cols])`` and so on.  Aliases are rewritten to their
  base-table names, adjacent filters are flattened, index-scan bounds
  render as ordinary filter predicates, and nested joins flatten into one
  ``join`` over the whole logical relation set — so a seq-scan-plus-filter
  and an index scan of the same predicate share one record, as do build
  and probe orientations and *every join order* of one logical result
  (cardinality is a property of the logical expression, not the physical
  shape; per-shape records would make the optimizer serially "explore"
  untried orders whose estimates stay optimistic).  Bound constants render
  as literals, which makes records deliberately per-parameter-value.
  After a mid-query plan switch the remainder plan scans a ``__temp_N``
  materialization; absorption resolves those temps back to the subtree
  they materialized (via the outcome's switch events) and renders the
  fragment as if the switch never cut the plan — the fragments *above* a
  switch point are precisely the ones the optimizer misjudged, and
  skipping them would re-trigger the same switch every execution.
  Join fragments with no exact record fall back to :class:`EdgeRecord`
  per-predicate selectivity ratios (LEO-style), whose product
  extrapolates — clamped — to join orders never executed.
* **consumers** — the estimator applies a bounded, recency-decayed
  correction to fragments whose histogram estimate disagrees with the
  recorded observation by at least the Q-error threshold; the plan cache
  invalidates entries whose fragments earned a bad record *after* the entry
  was stored; SCIA and the re-optimization triggers treat
  historically-misestimated fragments as high risk.
* **zero perturbation** — recording happens after the simulated cost clock
  stops and only *reads* runtime state, so the first execution with an
  empty store is byte-identical to running with feedback disabled.  Only
  *subsequent* optimizations see the records — changing future plans is the
  feature, not a leak.

The store is JSON-on-disk (atomic tmp-file + rename), epoch-versioned (the
repository epoch advances once per absorbed query; the catalog's statistics
epoch stamps each record for confidence decay), and thread/fork-safe via
:func:`repro.concurrency.fork_safe_lock`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
import tempfile
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from ..concurrency import fork_safe_lock
from ..plans.physical import (
    BlockNLJoinNode,
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexNLJoinNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from .analyze import q_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..executor.dispatcher import DispatchResult
    from ..executor.runtime import RuntimeContext
    from .metrics import MetricsRegistry

__all__ = [
    "EdgeRecord",
    "FeedbackRecord",
    "FeedbackRepository",
    "fragment_signature",
    "fragment_text",
    "plan_signatures",
]

#: On-disk document version (bumped on incompatible schema changes; loads
#: of unknown versions are ignored rather than crashing the engine).
STORE_VERSION = 1

#: When one query yields several observations of the same fragment (a
#: collector wrapping a join, the join itself, a zone-mapped scan under
#: both), the most trustworthy source wins.
_SOURCE_PRIORITY = {"collector": 3, "zone-map": 2, "execution": 1, "re-opt": 0}

#: Operators that pass their input's cardinality through unchanged; they
#: share the child's fragment identity instead of minting their own.
_TRANSPARENT = (StatsCollectorNode, ProjectNode, SortNode)


# ----------------------------------------------------------------------
# Fragment signatures
# ----------------------------------------------------------------------


#: ``temp.alias__col`` references in remainder plans de-mangle back to the
#: ``alias.col`` the cut subtree used (see ``core.remainder.temp_column_name``),
#: so predicates over a switch's temp table normalize identically to the
#: unswitched rendering.
_TEMP_COLUMN = re.compile(r"\b__temp_\d+\.([A-Za-z0-9_]+?)__")


def _alias_rewrites(
    node: PlanNode,
    temp_sources: Mapping[str, PlanNode] | None = None,
    _seen: set[str] | None = None,
) -> list[tuple[str, str]]:
    """(alias, table) pairs for every base relation under ``node`` whose
    alias differs from the table name.  Scans of a resolvable temp table
    contribute the aliases of the subtree the temp materialized."""
    rewrites: dict[str, str] = {}
    seen = _seen if _seen is not None else set()

    def merge_temp(name: str) -> None:
        if temp_sources and name in temp_sources and name not in seen:
            seen.add(name)
            rewrites.update(
                _alias_rewrites(temp_sources[name], temp_sources, seen)
            )

    for sub in node.walk():
        if isinstance(sub, (SeqScanNode, IndexScanNode)):
            if sub.alias != sub.table_name:
                rewrites[sub.alias] = sub.table_name
            merge_temp(sub.table_name)
        elif isinstance(sub, IndexNLJoinNode):
            if sub.inner_alias != sub.inner_table:
                rewrites[sub.inner_alias] = sub.inner_table
            merge_temp(sub.inner_table)
    return sorted(rewrites.items())


def _normalizer(
    node: PlanNode, temp_sources: Mapping[str, PlanNode] | None = None
):
    """A function rewriting ``alias.column`` to ``table.column`` for every
    alias in this subtree (de-mangling temp-table column names first).
    Self-joins alias one table twice; both collapse to the same name, so
    their fragments share records — a deliberate coarsening (the fragments
    are statistically interchangeable)."""
    rewrites = _alias_rewrites(node, temp_sources)
    patterns = [
        (re.compile(rf"\b{re.escape(alias)}\."), f"{table}.")
        for alias, table in rewrites
    ]

    def normalize(text: str) -> str:
        text = _TEMP_COLUMN.sub(r"\1.", text)
        for pattern, replacement in patterns:
            text = pattern.sub(replacement, text)
        return text

    return normalize


def _filter_parts(text: str) -> tuple[str, list[str]]:
    """Split our own ``filter(base, [p; q])`` rendering back into (base,
    predicates) so stacked filters flatten into one canonical conjunction."""
    if text.startswith("filter(") and text.endswith("])"):
        base, __, preds = text[len("filter(") : -2].rpartition(", [")
        if base:
            return base, [p for p in preds.split("; ") if p]
    return text, []


def _filter_text(base: str, predicates: Iterable[str]) -> str:
    inner_base, existing = _filter_parts(base)
    merged = sorted(set(existing) | set(predicates))
    if not merged:
        return inner_base
    return f"filter({inner_base}, [{'; '.join(merged)}])"


def _join_key_text(left: str, right: str) -> str:
    a, b = sorted((left, right))
    return f"{a} = {b}"


_JOIN_TYPES = (HashJoinNode, IndexNLJoinNode, BlockNLJoinNode)


def _unwrap_transparent(node: PlanNode) -> PlanNode:
    while isinstance(node, _TRANSPARENT):
        node = node.children[0]
    return node


def _join_components(
    node: PlanNode,
    memo: dict[int, str],
    temp_sources: Mapping[str, PlanNode] | None = None,
) -> tuple[list[str], list[str], list[str]]:
    """(input texts, join-key texts, residual texts) of the *flattened*
    join tree rooted at ``node``.

    Nested joins contribute their own inputs and predicates instead of
    appearing as opaque inputs, so every join order over one logical set
    of relations renders identically — the observed cardinality of
    ``(A ⋈ B) ⋈ C`` is the cardinality of ``(A ⋈ C) ⋈ B``, and keying
    records by the logical result (rather than one physical shape) is what
    lets a correction reach *every* candidate order the optimizer weighs.
    Without it the optimizer serially "explores": corrected fragments look
    expensive while any untried order keeps its optimistic estimate.
    """
    normalize = _normalizer(node, temp_sources)
    inputs: list[str] = []
    keys: list[str] = []
    residual: list[str] = []

    def absorb_input(child: PlanNode) -> None:
        unwrapped = _unwrap_transparent(child)
        if isinstance(unwrapped, SeqScanNode) and temp_sources:
            source = temp_sources.get(unwrapped.table_name)
            if source is not None:
                # The temp holds a materialized subtree; flatten through it
                # as if the switch never cut the plan.
                absorb_input(source)
                return
        if isinstance(unwrapped, _JOIN_TYPES):
            sub = _join_components(unwrapped, memo, temp_sources)
            inputs.extend(sub[0])
            keys.extend(sub[1])
            residual.extend(sub[2])
        else:
            inputs.append(fragment_text(child, memo, temp_sources))

    if isinstance(node, HashJoinNode):
        absorb_input(node.build)
        absorb_input(node.probe)
        keys.extend(
            _join_key_text(normalize(b), normalize(p)) for b, p in node.key_pairs
        )
        residual.extend(normalize(p.sql()) for p in node.residual)
    elif isinstance(node, IndexNLJoinNode):
        absorb_input(node.outer)
        inputs.append(f"scan({node.inner_table})")
        keys.append(
            _join_key_text(
                normalize(node.outer_column),
                f"{node.inner_table}.{node.inner_column}",
            )
        )
        residual.extend(normalize(p.sql()) for p in node.residual)
    else:  # BlockNLJoinNode
        for child in node.children:
            absorb_input(child)
        residual.extend(normalize(p.sql()) for p in node.predicates)
    return inputs, keys, residual


def fragment_text(
    node: PlanNode,
    memo: dict[int, str] | None = None,
    temp_sources: Mapping[str, PlanNode] | None = None,
) -> str:
    """Canonical, structural text of the plan fragment rooted at ``node``.

    Independent of node ids, join orientation, filter stacking, access path
    (index vs. scan-plus-filter) and table aliases — two fragments with the
    same text compute the same relation, so observed cardinality transfers
    between them.  ``temp_sources`` (``temp name -> materialized subtree``)
    lets a post-switch remainder plan render as if the switch never
    happened: a scan of the temp is the fragment it materialized.
    """
    if memo is None:
        memo = {}
    cached = memo.get(node.node_id)
    if cached is not None:
        return cached
    normalize = _normalizer(node, temp_sources)
    if isinstance(node, SeqScanNode):
        source = temp_sources.get(node.table_name) if temp_sources else None
        if source is not None:
            text = fragment_text(source, memo, temp_sources)
        else:
            text = f"scan({node.table_name})"
    elif isinstance(node, IndexScanNode):
        preds = sorted(normalize(p.sql()) for p in node.bound_predicates)
        text = _filter_text(f"scan({node.table_name})", preds)
    elif isinstance(node, FilterNode):
        preds = [normalize(p.sql()) for p in node.predicates]
        text = _filter_text(fragment_text(node.child, memo, temp_sources), preds)
    elif isinstance(node, _TRANSPARENT):
        text = fragment_text(node.children[0], memo, temp_sources)
    elif isinstance(node, _JOIN_TYPES):
        inputs, keys, residual = _join_components(node, memo, temp_sources)
        # Inputs are a multiset (a self-join repeats one text); predicates
        # dedupe (one conjunct, however many times plans restate it).
        text = (
            f"join({{{' & '.join(sorted(inputs))}}}, "
            f"[{'; '.join(sorted(set(keys)))}], "
            f"[{'; '.join(sorted(set(residual)))}])"
        )
    elif isinstance(node, HashAggregateNode):
        groups = sorted(normalize(col) for col in node.group_by)
        text = (
            f"agg({fragment_text(node.child, memo, temp_sources)}, "
            f"[{', '.join(groups)}])"
        )
    elif isinstance(node, DistinctNode):
        text = f"distinct({fragment_text(node.child, memo, temp_sources)})"
    elif isinstance(node, LimitNode):
        text = f"limit({fragment_text(node.child, memo, temp_sources)}, {node.limit})"
    else:  # pragma: no cover - future operators degrade gracefully
        inputs = " & ".join(fragment_text(c, memo, temp_sources) for c in node.children)
        text = f"{node.label.lower()}({inputs})"
    memo[node.node_id] = text
    return text


def join_edge_key(
    node: PlanNode, temp_sources: Mapping[str, PlanNode] | None = None
) -> str | None:
    """Join-order-independent key for the predicate set one join node
    applies (its equi-join keys plus residuals, normalized and sorted).
    ``None`` for operators edge feedback cannot attribute — an index
    nested-loop folds the inner access into the operator, so its
    selectivity is not separable from the lookup."""
    if not isinstance(node, (HashJoinNode, BlockNLJoinNode)):
        return None
    normalize = _normalizer(node, temp_sources)
    if isinstance(node, HashJoinNode):
        parts = sorted(
            _join_key_text(normalize(b), normalize(p)) for b, p in node.key_pairs
        )
        parts += sorted(normalize(p.sql()) for p in node.residual)
    else:
        parts = sorted(normalize(p.sql()) for p in node.predicates)
    return "; ".join(parts) if parts else None


def _temp_tainted(
    plan: PlanNode, resolved: Iterable[str] = ()
) -> frozenset[int]:
    """Node ids whose fragment reads an *unresolvable* ``__temp_*`` table.
    Temp names are recycled query to query (each query's manager counts
    from zero), so a record keyed on one would silently describe another
    query's data — absorption skips them.  Temps in ``resolved`` map back
    to the subtree they materialized (this query's own plan switches) and
    are clean."""
    tainted: set[int] = set()
    known = frozenset(resolved)

    def unresolvable(name: str) -> bool:
        return name.startswith("__temp_") and name not in known

    def visit(node: PlanNode) -> bool:
        hit = False
        for child in node.children:
            if visit(child):
                hit = True
        if isinstance(node, (SeqScanNode, IndexScanNode)):
            hit = hit or unresolvable(node.table_name)
        elif isinstance(node, IndexNLJoinNode):
            hit = hit or unresolvable(node.inner_table)
        if hit:
            tainted.add(node.node_id)
        return hit

    visit(plan)
    return frozenset(tainted)


def fragment_signature(
    node: PlanNode,
    memo: dict[int, str] | None = None,
    temp_sources: Mapping[str, PlanNode] | None = None,
) -> str:
    """Stable short digest of :func:`fragment_text`."""
    text = fragment_text(node, memo, temp_sources)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def plan_signatures(plan: PlanNode) -> dict[int, str]:
    """``node_id -> fragment signature`` for every node of ``plan``."""
    memo: dict[int, str] = {}
    return {node.node_id: fragment_signature(node, memo) for node in plan.walk()}


# ----------------------------------------------------------------------
# Records and the repository
# ----------------------------------------------------------------------


@dataclass
class FeedbackRecord:
    """One fragment's latest estimate-vs-actual observation.

    ``est_rows``/``q_error`` describe the estimate *as planned* at the last
    execution (corrections included, so a learning optimizer's records show
    its Q-error falling); ``observed_rows`` is the ground truth corrections
    are computed from.  ``epoch`` is the repository epoch of the last
    update (drives plan-cache invalidation), ``stats_epoch`` the catalog
    statistics epoch (drives confidence decay).
    """

    signature: str
    fragment: str
    est_rows: float
    observed_rows: float
    q_error: float
    source: str
    count: int = 1
    epoch: int = 0
    stats_epoch: int = 0
    hits: int = 0
    corrections: int = 0


@dataclass
class EdgeRecord:
    """Observed-vs-estimated *selectivity* adjustment for one join edge.

    Fragment records are exact but only cover logical subsets the engine
    has executed; any untried join order keeps its optimistic histogram
    estimate, so a purely per-fragment store makes the optimizer serially
    "explore" unknown orders (each pass picks a fresh untried shape whose
    estimate nobody has falsified yet — the classic cardinality-feedback
    oscillation).  Edge records close that gap the way LEO does: at absorb
    time the join's selectivity error is isolated from its inputs' errors
    (``(obs_join / obs_l·obs_r) / (est_join / est_l·est_r)``) and keyed by
    the normalized join-predicate set, which is join-order independent.
    Annotation applies the factor to any join fragment *without* an exact
    record, so every candidate order the optimizer weighs sees the learned
    selectivity and the known-best plan wins immediately.
    """

    key: str
    factor: float
    epoch: int = 0
    stats_epoch: int = 0
    count: int = 1


class FeedbackRepository:
    """Thread/fork-safe, optionally JSON-backed store of feedback records."""

    def __init__(
        self,
        path: str = "",
        *,
        q_error_threshold: float = 2.0,
        decay: float = 0.9,
        max_correction: float = 100.0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.path = path
        self.q_error_threshold = float(q_error_threshold)
        self.decay = float(decay)
        self.max_correction = float(max_correction)
        self._metrics = metrics
        self._records: dict[str, FeedbackRecord] = {}
        self._edges: dict[str, EdgeRecord] = {}
        #: Repository epoch: advances once per absorbed query.  Plan-cache
        #: entries remember the epoch they were stored at; only records
        #: updated *later* can invalidate them.
        self.epoch = 0
        self.queries_absorbed = 0
        fork_safe_lock(self, "_lock")
        if path and os.path.exists(path):
            self.load()

    # -- metrics ---------------------------------------------------------

    def _bump(self, name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"feedback.{name}").inc(amount)

    # -- core accessors --------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def lookup(self, signature: str) -> FeedbackRecord | None:
        with self._lock:
            return self._records.get(signature)

    def confidence(self, record: FeedbackRecord, stats_epoch: int) -> float:
        """Trust in a record: full when observed at the current statistics
        epoch, decaying by :attr:`decay` per epoch the catalog has churned
        since.  Repetition does not add trust — an observed cardinality is
        exact for its fragment, only staleness erodes it."""
        age = max(0, int(stats_epoch) - record.stats_epoch)
        return self.decay**age

    def corrected_rows(
        self,
        signature: str,
        est_rows: float,
        stats_epoch: int,
        edge_key: str | None = None,
    ) -> tuple[float, FeedbackRecord] | None:
        """Bounded feedback correction for one fragment's estimate.

        Returns ``(corrected_rows, record)`` when a record disagrees with
        the incoming histogram estimate by at least the Q-error threshold,
        else None (close-enough estimates are left untouched so feedback
        never perturbs already-good plans).  The correction interpolates
        geometrically from the estimate toward the observation by the
        record's confidence: ``est * (observed/est) ** confidence``.  The
        observation itself is the bound — an exact record never moves an
        estimate *past* what was actually measured, so ``max_correction``
        only clamps the :class:`EdgeRecord` fallback below, which
        extrapolates to fragments that were never directly observed.

        ``edge_key`` (join fragments only) enables the :class:`EdgeRecord`
        fallback: fragments with no exact record but a learned selectivity
        adjustment for their predicate set get the multiplicative factor
        instead, so untried join orders cannot hide behind optimistic
        histograms.
        """
        with self._lock:
            record = self._records.get(signature)
            self._bump("lookups")
            if record is None:
                if edge_key is None:
                    return None
                return self._edge_corrected(edge_key, est_rows, stats_epoch)
            record.hits += 1
            self._bump("hits")
            self._bump(f"fragment.{signature}.hits")
            est = max(float(est_rows), 1.0)
            observed = max(float(record.observed_rows), 1.0)
            if q_error(est, observed) < self.q_error_threshold:
                return None
            factor = observed / est
            weight = self.confidence(record, stats_epoch)
            corrected = est * factor**weight
            if abs(corrected - est) < 1e-9:
                return None
            record.corrections += 1
            self._bump("corrections")
            self._bump(f"fragment.{signature}.corrections")
            return corrected, record

    def _edge_corrected(
        self, edge_key: str, est_rows: float, stats_epoch: int
    ) -> tuple[float, FeedbackRecord] | None:
        """Selectivity-adjustment fallback (caller holds the lock)."""
        edge = self._edges.get(edge_key)
        if edge is None or edge.factor <= 0:
            return None
        spread = max(edge.factor, 1.0 / edge.factor)
        if spread < self.q_error_threshold:
            return None
        factor = min(
            max(edge.factor, 1.0 / self.max_correction), self.max_correction
        )
        age = max(0, int(stats_epoch) - edge.stats_epoch)
        corrected = max(float(est_rows), 1.0) * factor ** (self.decay**age)
        if abs(corrected - max(float(est_rows), 1.0)) < 1e-9:
            return None
        edge.count += 1
        self._bump("edge_corrections")
        # A synthetic record so consumers (EXPLAIN ANALYZE annotation)
        # render the provenance; it never enters ``_records``.
        return corrected, FeedbackRecord(
            signature=f"edge:{edge_key}",
            fragment=f"edge[{edge_key}]",
            est_rows=float(est_rows),
            observed_rows=corrected,
            q_error=spread,
            source="edge",
            epoch=edge.epoch,
            stats_epoch=edge.stats_epoch,
        )

    def risky(self, signature: str) -> bool:
        """Whether the fragment's last observation was a bad estimate."""
        record = self.lookup(signature)
        return record is not None and record.q_error >= self.q_error_threshold

    def count_collectors_armed(self, amount: int) -> None:
        """Metrics hook: SCIA promoted ``amount`` candidate statistics to
        HIGH potential because their collection point was historically
        misestimated."""
        self._bump("collectors_armed", amount)

    def risk_score(self, signature: str, stats_epoch: int) -> float:
        """0..1 misestimation risk for a fragment: 0 with no bad record,
        approaching 1 as the recorded Q-error reaches the correction bound,
        scaled by the record's decayed confidence."""
        record = self.lookup(signature)
        if record is None or record.q_error < self.q_error_threshold:
            return 0.0
        severity = min(
            1.0, math.log(record.q_error) / math.log(self.max_correction)
        )
        return severity * self.confidence(record, stats_epoch)

    def poisoned_since(self, epoch: int) -> frozenset[str]:
        """Signatures whose record turned bad (Q-error at or above the
        threshold) after repository epoch ``epoch`` — the plan cache evicts
        entries whose fragments appear here."""
        with self._lock:
            return frozenset(
                sig
                for sig, record in self._records.items()
                if record.epoch > epoch
                and record.q_error >= self.q_error_threshold
            )

    # -- population ------------------------------------------------------

    def absorb_execution(
        self,
        outcome: "DispatchResult",
        ctx: "RuntimeContext",
        stats_epoch: int,
    ) -> dict:
        """Record estimate-vs-actual for every fragment that completed.

        Runs after the simulated cost clock has stopped and only reads
        runtime state (``actual_rows`` is set exclusively for fully drained
        nodes, so LIMIT-truncated inputs are never recorded with partial
        counts).  Returns a summary dict used by the slow-query log.
        """
        observations: dict[str, tuple[int, float, float, str, str]] = {}
        edge_observations: dict[str, tuple[int, float]] = {}
        estimates = ctx.estimate_snapshots or {}

        def snapshot_rows(target: PlanNode) -> float:
            snapshot = estimates.get(target.node_id)
            if snapshot:
                return float(snapshot.get("rows", target.est.rows))
            return float(target.est.rows)

        # Each plan switch materialized one subtree into a temp table; map
        # the temp back to that subtree so post-switch remainder plans
        # render (and learn) as if the plan had never been cut.  Node ids
        # are process-global, so one memo serves every plan in the history.
        temp_sources: dict[str, PlanNode] = {}
        for event, plan in zip(outcome.switch_events, outcome.plan_history):
            cut = plan.find(event.directive.cut_node_id)
            if cut is not None:
                temp_sources[event.directive.temp_table.name] = cut
        memo: dict[int, str] = {}
        total = len(outcome.plan_history)
        for index, plan in enumerate(outcome.plan_history):
            abandoned = index < total - 1
            tainted = _temp_tainted(plan, resolved=temp_sources)
            for node in plan.walk():
                if node.node_id in tainted:
                    continue
                actual = ctx.actual_rows.get(node.node_id)
                if actual is None:
                    continue
                snapshot = estimates.get(node.node_id)
                est = (
                    snapshot.get("rows", node.est.rows)
                    if snapshot
                    else node.est.rows
                )
                if isinstance(node, StatsCollectorNode) and node.node_id in ctx.observed:
                    source = "collector"
                elif node.node_id in ctx.columnar.by_scan:
                    source = "zone-map"
                elif abandoned:
                    source = "re-opt"
                else:
                    source = "execution"
                signature = fragment_signature(node, memo, temp_sources)
                priority = _SOURCE_PRIORITY[source]
                current = observations.get(signature)
                if current is not None and current[0] >= priority:
                    continue
                observations[signature] = (
                    priority,
                    float(est),
                    float(actual),
                    source,
                    memo[node.node_id],
                )
                # Isolate this join's *selectivity* error from its inputs'
                # cardinality errors: both sides' observed and as-planned
                # rows are known, so the ratio of observed to estimated
                # selectivity is attributable to the predicate set alone.
                edge_key = join_edge_key(node, temp_sources)
                if edge_key is None:
                    continue
                left = _unwrap_transparent(node.children[0])
                right = _unwrap_transparent(node.children[1])
                obs_l = ctx.actual_rows.get(left.node_id)
                obs_r = ctx.actual_rows.get(right.node_id)
                if obs_l is None or obs_r is None:
                    continue
                sel_obs = max(float(actual), 1.0) / max(
                    float(obs_l) * float(obs_r), 1.0
                )
                sel_est = max(float(est), 1.0) / max(
                    snapshot_rows(left) * snapshot_rows(right), 1.0
                )
                if sel_est <= 0:
                    continue
                edge_current = edge_observations.get(edge_key)
                if edge_current is not None and edge_current[0] >= priority:
                    continue
                edge_observations[edge_key] = (priority, sel_obs / sel_est)
        if not observations:
            return {
                "records": 0,
                "edges": 0,
                "worst_q_error": 1.0,
                "worst_fragment": "",
            }

        worst_q = 1.0
        worst_fragment = ""
        with self._lock:
            self.epoch += 1
            self.queries_absorbed += 1
            for signature, (__, est, actual, source, text) in observations.items():
                error = q_error(est, actual)
                if error > worst_q:
                    worst_q = error
                    worst_fragment = text
                record = self._records.get(signature)
                if record is None:
                    self._records[signature] = FeedbackRecord(
                        signature=signature,
                        fragment=text,
                        est_rows=est,
                        observed_rows=actual,
                        q_error=error,
                        source=source,
                        count=1,
                        epoch=self.epoch,
                        stats_epoch=int(stats_epoch),
                    )
                else:
                    record.est_rows = est
                    record.observed_rows = actual
                    record.q_error = error
                    record.source = source
                    record.count += 1
                    record.epoch = self.epoch
                    record.stats_epoch = int(stats_epoch)
            for edge_key, (__, factor) in edge_observations.items():
                edge = self._edges.get(edge_key)
                if edge is None:
                    self._edges[edge_key] = EdgeRecord(
                        key=edge_key,
                        factor=factor,
                        epoch=self.epoch,
                        stats_epoch=int(stats_epoch),
                    )
                else:
                    edge.factor = factor
                    edge.epoch = self.epoch
                    edge.stats_epoch = int(stats_epoch)
                    edge.count += 1
            self._bump("records", len(observations))
            self._bump("edges", len(edge_observations))
            self._bump("queries")
        if self.path:
            self.save()
        return {
            "records": len(observations),
            "edges": len(edge_observations),
            "worst_q_error": worst_q,
            "worst_fragment": worst_fragment,
        }

    # -- reporting -------------------------------------------------------

    def report(self) -> dict:
        """Plain-dict view of the repository, worst fragments first."""
        with self._lock:
            records = sorted(
                (asdict(record) for record in self._records.values()),
                key=lambda r: (-r["q_error"], r["fragment"]),
            )
            bad = sum(
                1 for r in records if r["q_error"] >= self.q_error_threshold
            )
            return {
                "enabled": True,
                "path": self.path,
                "epoch": self.epoch,
                "queries_absorbed": self.queries_absorbed,
                "record_count": len(records),
                "bad_record_count": bad,
                "edge_count": len(self._edges),
                "q_error_threshold": self.q_error_threshold,
                "records": records,
                "edges": sorted(
                    (asdict(edge) for edge in self._edges.values()),
                    key=lambda e: e["key"],
                ),
            }

    # -- persistence -----------------------------------------------------

    def save(self) -> None:
        """Atomically persist the repository, merging with the file's
        current contents: records this process never touched are kept, and
        for touched signatures the freshest writer wins.  (Under the
        server's fork worker mode each statement's child process saves its
        own absorption; the merge makes those writes additive.)"""
        if not self.path:
            return
        with self._lock:
            on_disk = self._read_store(self.path)
            merged: dict[str, FeedbackRecord] = dict(on_disk.get("records", {}))
            merged.update(self._records)
            merged_edges: dict[str, EdgeRecord] = dict(on_disk.get("edges", {}))
            merged_edges.update(self._edges)
            epoch = max(self.epoch, int(on_disk.get("epoch", 0)))
            document = {
                "version": STORE_VERSION,
                "epoch": epoch,
                "queries_absorbed": max(
                    self.queries_absorbed, int(on_disk.get("queries_absorbed", 0))
                ),
                "records": [asdict(record) for record in merged.values()],
                "edges": [asdict(edge) for edge in merged_edges.values()],
            }
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".feedback-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=1)
                    handle.write("\n")
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:  # pragma: no cover - best effort
                    pass
                raise

    def load(self) -> int:
        """Replace in-memory state with the store file; returns the number
        of records loaded (0 when the file is missing or unreadable)."""
        with self._lock:
            document = self._read_store(self.path)
            self._records = dict(document.get("records", {}))
            self._edges = dict(document.get("edges", {}))
            self.epoch = int(document.get("epoch", 0))
            self.queries_absorbed = int(document.get("queries_absorbed", 0))
            return len(self._records)

    @staticmethod
    def _read_store(path: str) -> dict:
        if not path or not os.path.exists(path):
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return {}
        if not isinstance(document, dict) or document.get("version") != STORE_VERSION:
            return {}
        records: dict[str, FeedbackRecord] = {}
        for raw in document.get("records", ()):
            if not isinstance(raw, Mapping):
                continue
            try:
                record = FeedbackRecord(**dict(raw))
            except TypeError:
                continue
            records[record.signature] = record
        edges: dict[str, EdgeRecord] = {}
        for raw in document.get("edges", ()):
            if not isinstance(raw, Mapping):
                continue
            try:
                edge = EdgeRecord(**dict(raw))
            except TypeError:
                continue
            edges[edge.key] = edge
        return {
            "epoch": document.get("epoch", 0),
            "queries_absorbed": document.get("queries_absorbed", 0),
            "records": records,
            "edges": edges,
        }
