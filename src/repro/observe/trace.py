"""Span-based query tracing.

A :class:`QueryTracer` records what a single query execution *did* —
hierarchical spans (compile phase -> plan -> pipeline -> operator) plus
point events (collector observations, memory grants, re-optimization
decisions) — with both wall-clock and simulated-cost-clock timestamps.
Traces export as Chrome trace-event JSON (loadable in ``chrome://tracing``
or https://ui.perfetto.dev) and as a rendered text timeline.

Two invariants the rest of the engine relies on:

* **Zero perturbation.**  The tracer only ever *reads* ``clock.now``; it
  never charges the simulated :class:`~repro.storage.disk.CostClock`, never
  touches the buffer pool, and never observes a row.  Every simulated
  quantity (costs, buffer stats, observed statistics, switch decisions) is
  therefore byte-identical with tracing on or off — the trace-parity suite
  (``tests/test_trace_parity.py``) proves it.
* **Zero cost when disabled.**  All call sites guard with
  ``if ctx.tracer is not None`` at span/event granularity (never per row),
  so a disabled tracer costs one attribute check per operator.

Span-closure discipline: operator and pipeline spans on the parallel path
complete FIFO (``_execute_morsels`` marks the scan complete before the
stages above it), and mid-query plan switches abandon generators whose
natural end never runs.  Chrome's ``B``/``E`` events require strict LIFO
nesting per thread, so only the strictly-sequential top-level spans
(compile phases, ``execute``, per-plan spans) export as ``B``/``E`` pairs;
operator/pipeline/morsel spans export as ``X`` *complete* events, which
carry an explicit duration and have no nesting requirement.  Spans still
open at export time are auto-closed (LIFO) at the export timestamp.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..plans.physical import PlanNode
    from ..storage.disk import CostClock

#: Span categories exported as Chrome ``B``/``E`` pairs.  These are the
#: strictly sequential top-level spans; everything else becomes an ``X``
#: complete event (see module docstring).
PAIRED_CATEGORIES = frozenset({"phase", "plan"})

#: Compile phases, in the order they run (mirrors ``PhaseBreakdown``).
COMPILE_PHASES = ("parse", "bind", "optimize", "scia")


@dataclass
class Span:
    """One traced interval.  ``wall_*`` in microseconds since tracer epoch."""

    span_id: int
    name: str
    category: str
    seq: int
    wall_start_us: float
    sim_start: float | None
    tid: int
    args: dict[str, Any]
    wall_end_us: float | None = None
    sim_end: float | None = None
    end_seq: int | None = None

    @property
    def closed(self) -> bool:
        return self.wall_end_us is not None

    @property
    def sim_cost(self) -> float | None:
        """Simulated-clock window covered by this span, if known."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start


@dataclass
class InstantEvent:
    """A point event (collector observation, memory grant, reopt decision)."""

    name: str
    category: str
    seq: int
    wall_us: float
    sim_time: float | None
    args: dict[str, Any]


class QueryTracer:
    """Collects spans and instant events for one query execution.

    Purely observational: reads ``clock.now`` but never charges it.
    """

    def __init__(self, clock: "CostClock | None" = None, label: str = "query"):
        self.clock = clock
        self.label = label
        self.pid = os.getpid()
        self._epoch = perf_counter()
        self._seq = 0
        self._next_span_id = 0
        self.spans: list[Span] = []
        self.events: list[InstantEvent] = []
        self._open: list[Span] = []
        #: node_id -> stack of open operator spans (a node can re-execute,
        #: e.g. the inner side of a block nested-loop join).
        self._node_open: dict[int, list[Span]] = {}
        #: node_id -> [sim_start, sim_end, rows] over the node's *first*
        #: start and *last* completion — the node's simulated-clock window.
        self.node_windows: dict[int, list[Any]] = {}
        #: node_id -> optimizer estimates captured when each plan was
        #: adopted, *before* improved estimates overwrite ``node.est``.
        self.estimates: dict[int, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # clock helpers
    # ------------------------------------------------------------------

    def _now_us(self) -> float:
        return (perf_counter() - self._epoch) * 1e6

    def _sim_now(self) -> float | None:
        return self.clock.now if self.clock is not None else None

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # span / event recording
    # ------------------------------------------------------------------

    def begin(self, name: str, category: str = "exec", *, tid: int = 1,
              **args: Any) -> Span:
        span = Span(
            span_id=self._next_span_id,
            name=name,
            category=category,
            seq=self._next_seq(),
            wall_start_us=self._now_us(),
            sim_start=self._sim_now(),
            tid=tid,
            args=dict(args),
        )
        self._next_span_id += 1
        self.spans.append(span)
        self._open.append(span)
        return span

    def end(self, span: Span | None, **args: Any) -> None:
        if span is None or span.closed:
            return
        span.wall_end_us = self._now_us()
        span.sim_end = self._sim_now()
        span.end_seq = self._next_seq()
        if args:
            span.args.update(args)
        if span in self._open:
            self._open.remove(span)

    def completed_span(self, name: str, category: str, *, wall_start_us: float,
                       wall_end_us: float, tid: int = 1,
                       sim_start: float | None = None,
                       sim_end: float | None = None, **args: Any) -> Span:
        """Record a span retroactively (e.g. a worker-side morsel whose
        duration is only known when its result merges in the parent)."""
        span = Span(
            span_id=self._next_span_id,
            name=name,
            category=category,
            seq=self._next_seq(),
            wall_start_us=wall_start_us,
            sim_start=sim_start,
            tid=tid,
            args=dict(args),
            wall_end_us=wall_end_us,
            sim_end=sim_end,
            end_seq=self._next_seq(),
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def instant(self, name: str, category: str = "event", **args: Any) -> None:
        self.events.append(
            InstantEvent(
                name=name,
                category=category,
                seq=self._next_seq(),
                wall_us=self._now_us(),
                sim_time=self._sim_now(),
                args=dict(args),
            )
        )

    def close_open_spans(self, categories: frozenset[str] | set[str],
                         **args: Any) -> None:
        """LIFO-close open spans in ``categories`` (e.g. when a mid-query
        plan switch abandons the generators that would have closed them)."""
        for span in reversed([s for s in self._open if s.category in categories]):
            self.end(span, **args)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def record_compile_phases(self, phase_seconds: dict[str, float]) -> None:
        """Backdate the epoch and lay down spans for the compile phases
        (which ran before the tracer existed).  Must be called before any
        other span or event so all timestamps stay monotonic."""
        if self._seq:
            return
        durations = [
            (name, max(0.0, float(phase_seconds.get(name, 0.0))))
            for name in COMPILE_PHASES
        ]
        total = sum(seconds for _, seconds in durations)
        self._epoch -= total
        cursor = 0.0
        for name, seconds in durations:
            span = self.begin(name, "phase", seconds=round(seconds, 6))
            span.wall_start_us = cursor
            cursor += seconds * 1e6
            self.end(span)
            span.wall_end_us = cursor
            span.sim_start = span.sim_end = None

    def record_estimates(self, snapshot: dict[int, dict[str, float]]) -> None:
        """Merge a per-plan estimate snapshot (node ids are globally unique,
        so snapshots from successive plans never collide)."""
        self.estimates.update(snapshot)

    def estimated_rows(self, node_id: int, default: float) -> float:
        return self.estimates.get(node_id, {}).get("rows", default)

    def node_started(self, node: "PlanNode") -> None:
        stack = self._node_open.setdefault(node.node_id, [])
        stack.append(
            self.begin(
                node.label,
                "operator",
                node_id=node.node_id,
                detail=node.detail(),
            )
        )
        window = self.node_windows.get(node.node_id)
        if window is None:
            self.node_windows[node.node_id] = [self._sim_now(), None, None]

    def morsel_merged(self, pipeline_id: int, index: int, pid: int,
                      elapsed_s: float, rows_shipped: int) -> None:
        """Record a worker morsel retroactively as its result merges in the
        parent.  The worker never touches the tracer; its measured wall time
        is back-dated from the merge instant, on the worker's own tid lane."""
        end_us = self._now_us()
        start_us = max(0.0, end_us - max(0.0, elapsed_s) * 1e6)
        self.completed_span(
            f"morsel-{index}",
            "morsel",
            wall_start_us=start_us,
            wall_end_us=end_us,
            tid=pid,
            pipeline=pipeline_id,
            rows_shipped=rows_shipped,
        )

    def node_completed(self, node: "PlanNode", rows: int) -> None:
        stack = self._node_open.get(node.node_id)
        if stack:
            self.end(stack.pop(), rows=rows)
        window = self.node_windows.get(node.node_id)
        if window is not None:
            window[1] = self._sim_now()
            window[2] = rows

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_chrome(self) -> dict[str, Any]:
        """Render as a Chrome trace-event document (``{"traceEvents": []}``).

        Events are sorted by ``(ts, seq)``; open spans are auto-closed LIFO
        at the export timestamp so ``B``/``E`` pairs always balance.
        """
        export_us = self._now_us()
        export_sim = self._sim_now()
        synthetic_base = 2 * (self._seq + 1)
        records: list[tuple[float, int, dict[str, Any]]] = []

        def common(span: Span) -> dict[str, Any]:
            return {
                "name": span.name,
                "cat": span.category,
                "pid": self.pid,
                "tid": span.tid,
            }

        for span in self.spans:
            end_us = span.wall_end_us if span.closed else export_us
            end_seq = (
                span.end_seq
                if span.end_seq is not None
                else synthetic_base + (self._seq + 1 - span.seq)
            )
            args = dict(span.args)
            if span.sim_start is not None:
                args["sim_start"] = round(span.sim_start, 6)
            sim_end = span.sim_end if span.closed else export_sim
            if sim_end is not None and span.sim_start is not None:
                args["sim_end"] = round(sim_end, 6)
                args["sim_cost"] = round(sim_end - span.sim_start, 6)
            if not span.closed:
                args["auto_closed"] = True
            if span.category in PAIRED_CATEGORIES:
                begin = dict(common(span))
                begin.update(ph="B", ts=span.wall_start_us, args=args)
                records.append((span.wall_start_us, span.seq, begin))
                close = dict(common(span))
                close.update(ph="E", ts=end_us, args={})
                records.append((end_us, end_seq, close))
            else:
                complete = dict(common(span))
                complete.update(
                    ph="X",
                    ts=span.wall_start_us,
                    dur=max(0.0, end_us - span.wall_start_us),
                    args=args,
                )
                records.append((span.wall_start_us, span.seq, complete))

        for event in self.events:
            args = dict(event.args)
            if event.sim_time is not None:
                args["sim_time"] = round(event.sim_time, 6)
            record = {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.wall_us,
                "pid": self.pid,
                "tid": 1,
                "args": args,
            }
            records.append((event.wall_us, event.seq, record))

        records.sort(key=lambda item: (item[0], item[1]))
        return {
            "traceEvents": [record for _, _, record in records],
            "displayTimeUnit": "ms",
            "otherData": {"label": self.label},
        }

    def export_chrome(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
        return path

    # ------------------------------------------------------------------
    # text timeline
    # ------------------------------------------------------------------

    def timeline(self) -> str:
        """Render a human-readable timeline, indented by span nesting."""
        export_us = self._now_us()
        entries: list[tuple[float, int, int, str]] = []

        depth_stack: list[tuple[float, float]] = []  # (start, end) intervals
        for span in sorted(self.spans, key=lambda s: (s.wall_start_us, s.seq)):
            end_us = span.wall_end_us if span.closed else export_us
            while depth_stack and span.wall_start_us >= depth_stack[-1][1] - 1e-9:
                depth_stack.pop()
            depth = len(depth_stack)
            depth_stack.append((span.wall_start_us, end_us))
            sim = ""
            if span.sim_cost is not None:
                sim = f" sim+{span.sim_cost:.3f}"
            extra = ""
            if "rows" in span.args:
                extra = f" rows={span.args['rows']}"
            elif "detail" in span.args and span.args["detail"]:
                extra = f" [{span.args['detail']}]"
            line = (
                f"[{span.wall_start_us / 1e3:10.3f}ms "
                f"+{(end_us - span.wall_start_us) / 1e3:9.3f}ms]"
                f" {'  ' * depth}{span.category}:{span.name}{sim}{extra}"
            )
            entries.append((span.wall_start_us, span.seq, depth, line))

        for event in self.events:
            sim = f" sim={event.sim_time:.3f}" if event.sim_time is not None else ""
            detail = ", ".join(
                f"{key}={value}" for key, value in sorted(event.args.items())
            )
            line = (
                f"[{event.wall_us / 1e3:10.3f}ms {'':>11}]"
                f"   * {event.category}:{event.name}{sim}"
                + (f" {{{detail}}}" if detail else "")
            )
            entries.append((event.wall_us, event.seq, 0, line))

        entries.sort(key=lambda item: (item[0], item[1]))
        header = f"trace: {self.label} (pid {self.pid}, {len(self.spans)} spans, {len(self.events)} events)"
        return "\n".join([header] + [line for _, _, _, line in entries])
