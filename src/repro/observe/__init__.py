"""Observability: query tracing, metrics, EXPLAIN ANALYZE, trace validation.

The three public pieces:

* :class:`QueryTracer` (:mod:`repro.observe.trace`) — per-query spans and
  point events with wall-clock *and* simulated-clock timestamps; exports
  Chrome trace-event JSON and a text timeline.  Enabled per engine with
  ``EngineConfig(tracing=True)`` or globally with ``REPRO_TRACE=1``; the
  trace rides on ``result.profile.trace``.
* :class:`MetricsRegistry` (:mod:`repro.observe.metrics`) — process-wide
  named counters/gauges/histograms accumulated across queries
  (``Database.metrics_snapshot()``).
* :class:`ExplainAnalyzeReport` (:mod:`repro.observe.analyze`) — the
  result of ``Database.explain_analyze(sql)``: per-node estimated vs.
  actual rows/size/cost, Q-error, and SCIA collector attribution.
* :class:`FeedbackRepository` (:mod:`repro.observe.feedback`) — the
  persistent Q-error feedback store (``EngineConfig(feedback_enabled=True)``
  or ``REPRO_FEEDBACK=1``): normalized plan-fragment signatures mapped to
  observed cardinalities, consumed by the estimator, the plan cache, SCIA
  and the re-optimization triggers.
* :func:`render_prometheus` (:mod:`repro.observe.export`) — Prometheus
  text exposition of a metrics snapshot (also
  ``python -m repro.observe.export snapshot.json``), and the slow-query
  log (:mod:`repro.observe.slowlog`, ``EngineConfig.slow_query_s`` /
  ``REPRO_SLOW_QUERY``).

Everything here only *reads* engine state — no call into this package
charges the simulated cost clock, so results are byte-identical with
observability on or off (proved by ``tests/test_trace_parity.py``).  The
feedback repository is the deliberate exception: recording still never
touches the clock (first runs stay byte-identical), but the records it
keeps change how *future* statements are planned.
"""

from .analyze import ExplainAnalyzeReport, NodeAnalysis, PlanAnalysis, q_error
from .export import render_prometheus
from .feedback import (
    FeedbackRecord,
    FeedbackRepository,
    fragment_signature,
    fragment_text,
    plan_signatures,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, default_registry
from .slowlog import build_slow_query_record, emit_slow_query
from .trace import InstantEvent, QueryTracer, Span
from .validate import validate_trace

__all__ = [
    "Counter",
    "ExplainAnalyzeReport",
    "FeedbackRecord",
    "FeedbackRepository",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "NodeAnalysis",
    "PlanAnalysis",
    "QueryTracer",
    "Span",
    "build_slow_query_record",
    "default_registry",
    "emit_slow_query",
    "fragment_signature",
    "fragment_text",
    "plan_signatures",
    "q_error",
    "render_prometheus",
    "validate_trace",
]
