"""Observability: query tracing, metrics, EXPLAIN ANALYZE, trace validation.

The three public pieces:

* :class:`QueryTracer` (:mod:`repro.observe.trace`) — per-query spans and
  point events with wall-clock *and* simulated-clock timestamps; exports
  Chrome trace-event JSON and a text timeline.  Enabled per engine with
  ``EngineConfig(tracing=True)`` or globally with ``REPRO_TRACE=1``; the
  trace rides on ``result.profile.trace``.
* :class:`MetricsRegistry` (:mod:`repro.observe.metrics`) — process-wide
  named counters/gauges/histograms accumulated across queries
  (``Database.metrics_snapshot()``).
* :class:`ExplainAnalyzeReport` (:mod:`repro.observe.analyze`) — the
  result of ``Database.explain_analyze(sql)``: per-node estimated vs.
  actual rows/size/cost, Q-error, and SCIA collector attribution.

Everything here only *reads* engine state — no call into this package
charges the simulated cost clock, so results are byte-identical with
observability on or off (proved by ``tests/test_trace_parity.py``).
"""

from .analyze import ExplainAnalyzeReport, NodeAnalysis, PlanAnalysis, q_error
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, default_registry
from .trace import InstantEvent, QueryTracer, Span
from .validate import validate_trace

__all__ = [
    "Counter",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "NodeAnalysis",
    "PlanAnalysis",
    "QueryTracer",
    "Span",
    "default_registry",
    "q_error",
    "validate_trace",
]
