"""Fork-safe lock bookkeeping for the engine's shared mutable state.

The concurrent query server (:mod:`repro.engine.server`) runs sessions on
threads, so the process-wide structures those threads share — the plan
cache, the catalog, metric counters, the compiled-predicate code cache,
lazily synced column stores — each carry a lock.  Two execution paths
``fork()`` this process while those threads run: the morsel-parallel
executor's pipeline workers and the server's ``fork`` worker mode.  A child
forked while another thread holds one of those locks would inherit it in
the *held* state and deadlock on first acquire.

:func:`fork_safe_lock` hands out ordinary ``threading`` locks but records
the owner/attribute pair in a weak registry; an ``os.register_at_fork``
hook replaces every registered lock with a fresh, unheld one in the child.
The child is single-threaded at that instant, so the data a stale lock was
guarding cannot be mid-mutation *by the child*; structures the parent was
mutating may be torn, which is why forked workers only ever read the
structures they were handed and never the shared caches.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any

__all__ = ["fork_safe_lock", "reinit_locks_after_fork"]

_RLOCK_TYPE = type(threading.RLock())

#: owner object -> tuple of attribute names holding registered locks.
_REGISTRY: "weakref.WeakKeyDictionary[Any, tuple[str, ...]]" = (
    weakref.WeakKeyDictionary()
)
_REGISTRY_LOCK = threading.Lock()


def fork_safe_lock(owner: Any, attr: str, reentrant: bool = True):
    """Create a lock, store it as ``owner.attr``, and register it for
    re-initialization in fork children.  Returns the lock."""
    lock = threading.RLock() if reentrant else threading.Lock()
    setattr(owner, attr, lock)
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(owner, ())
        if attr not in existing:
            _REGISTRY[owner] = existing + (attr,)
    return lock


def reinit_locks_after_fork() -> int:
    """Replace every registered lock with a fresh one; returns the count.

    Runs automatically in fork children via ``os.register_at_fork``; exposed
    so tests (and exotic spawn paths) can invoke it directly.
    """
    count = 0
    with _REGISTRY_LOCK:
        owners = list(_REGISTRY.items())
    for owner, attrs in owners:
        for attr in attrs:
            old = getattr(owner, attr, None)
            fresh = (
                threading.RLock()
                if old is None or isinstance(old, _RLOCK_TYPE)
                else threading.Lock()
            )
            setattr(owner, attr, fresh)
            count += 1
    return count


def _after_fork_in_child() -> None:  # pragma: no cover - runs in fork children
    # The registry lock itself may have been held by another parent thread
    # at fork time; replace it before touching the registry.
    global _REGISTRY_LOCK
    _REGISTRY_LOCK = threading.Lock()
    reinit_locks_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix only
    os.register_at_fork(after_in_child=_after_fork_in_child)
