"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single type at the API boundary.  The sub-classes mirror the major
subsystems (SQL front end, catalog, optimizer, executor), which keeps error
handling in tests and applications precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlError(ReproError):
    """Base class for errors in the SQL front end."""


class LexerError(SqlError):
    """Raised when the lexer encounters an invalid character or literal."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""


class BindError(SqlError):
    """Raised when name resolution against the catalog fails."""


class CatalogError(ReproError):
    """Raised for catalog inconsistencies (unknown/duplicate tables, columns)."""


class StorageError(ReproError):
    """Raised by the storage substrate (tables, indexes, temp space)."""


class OptimizerError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(ReproError):
    """Raised when query execution fails."""


class MemoryGrantError(ExecutionError):
    """Raised when the memory manager cannot satisfy minimum operator demands."""


class AdmissionError(ExecutionError):
    """Raised when the query server cannot admit a statement: the bounded
    admission queue is full, the wait timed out, or the memory broker can
    never satisfy the request."""


class SessionError(ReproError):
    """Raised for session misuse (closed sessions, concurrent statements on
    one session, duplicate session-local table names)."""


class StatisticsError(ReproError):
    """Raised by the statistics substrate (histograms, sketches, estimators)."""


class ConfigError(ReproError):
    """Raised when engine or algorithm parameters are out of range."""
