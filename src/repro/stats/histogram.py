"""Histograms and histogram-based estimation.

Paradise stored MaxDiff histograms in its catalogs [19]; the paper's
inaccuracy-potential rules additionally distinguish *serial* histograms
(low inaccuracy — MaxDiff and end-biased belong to the serial class),
equi-width / equi-depth (medium), and no histogram at all (high).  This
module implements all four builders over numeric values plus the estimation
operations the optimizer and the improved-estimate machinery need:

* equality and range selectivities (uniform spread within a bucket),
* join-size estimation by bucket overlap (containment-free, uses
  ``n1 * n2 / max(d1, d2)`` within each overlap region),
* slicing a histogram to a range and scaling it by a selectivity, both used
  when propagating statistics through plan operators.

Builders accept full value sets or reservoir samples; ``from_sample`` scales
sample frequencies back to population frequencies, mirroring the paper's
run-time histogram construction from a one-page reservoir.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..errors import StatisticsError


class HistogramKind(enum.Enum):
    """Histogram families distinguished by the inaccuracy-potential rules."""

    EQUI_WIDTH = "equi-width"
    EQUI_DEPTH = "equi-depth"
    MAXDIFF = "maxdiff"
    END_BIASED = "end-biased"

    @property
    def is_serial_class(self) -> bool:
        """Whether this kind is in the *serial* family (low inaccuracy)."""
        return self in (HistogramKind.MAXDIFF, HistogramKind.END_BIASED)


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket over the closed interval ``[low, high]``."""

    low: float
    high: float
    count: float
    distinct: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise StatisticsError(f"bucket bounds inverted: [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Width of the bucket's value range."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside this bucket."""
        return self.low <= value <= self.high

    def overlap_fraction(self, low: float, high: float) -> float:
        """Fraction of this bucket's range overlapping ``[low, high]``.

        Zero-width (singleton) buckets overlap fully or not at all.
        """
        if high < self.low or low > self.high:
            return 0.0
        if self.width == 0:
            return 1.0
        lo = max(low, self.low)
        hi = min(high, self.high)
        return max(0.0, hi - lo) / self.width


class Histogram:
    """An immutable bucketised summary of one numeric attribute."""

    def __init__(self, kind: HistogramKind, buckets: Sequence[Bucket]) -> None:
        self.kind = kind
        self.buckets: tuple[Bucket, ...] = tuple(buckets)
        for prev, nxt in zip(self.buckets, self.buckets[1:]):
            if nxt.low < prev.high:
                raise StatisticsError("histogram buckets must be sorted and disjoint")
        self.total_count = sum(b.count for b in self.buckets)
        self.total_distinct = sum(b.distinct for b in self.buckets)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.kind.value}, buckets={len(self.buckets)}, "
            f"count={self.total_count:.0f}, distinct={self.total_distinct:.0f})"
        )

    @property
    def is_empty(self) -> bool:
        """Whether the histogram summarises zero rows."""
        return self.total_count <= 0 or not self.buckets

    @property
    def min_value(self) -> float | None:
        """Smallest value covered, or None when empty."""
        return self.buckets[0].low if self.buckets else None

    @property
    def max_value(self) -> float | None:
        """Largest value covered, or None when empty."""
        return self.buckets[-1].high if self.buckets else None

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------

    def selectivity_eq(self, value: float) -> float:
        """Estimated selectivity of ``attr = value``."""
        if self.is_empty:
            return 0.0
        for bucket in self.buckets:
            if bucket.contains(value):
                if bucket.distinct <= 0:
                    return 0.0
                return (bucket.count / bucket.distinct) / self.total_count
        return 0.0

    def selectivity_range(self, low: float | None, high: float | None) -> float:
        """Estimated selectivity of ``low <= attr <= high`` (open ends allowed)."""
        if self.is_empty:
            return 0.0
        lo = self.buckets[0].low if low is None else low
        hi = self.buckets[-1].high if high is None else high
        if hi < lo:
            return 0.0
        matched = sum(b.count * b.overlap_fraction(lo, hi) for b in self.buckets)
        return min(1.0, matched / self.total_count)

    def count_in_range(self, low: float | None, high: float | None) -> float:
        """Estimated number of rows with values in the range."""
        return self.selectivity_range(low, high) * self.total_count

    def distinct_in_range(self, low: float | None, high: float | None) -> float:
        """Estimated number of distinct values in the range."""
        if self.is_empty:
            return 0.0
        lo = self.buckets[0].low if low is None else low
        hi = self.buckets[-1].high if high is None else high
        return sum(b.distinct * b.overlap_fraction(lo, hi) for b in self.buckets)

    # ------------------------------------------------------------------
    # Propagation operations
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "Histogram":
        """Scale all bucket counts by ``factor`` (distincts follow Yao-style).

        Used when a predicate on a *different* attribute removes rows: value
        frequencies shrink proportionally; per-bucket distinct counts shrink
        by the probability that at least one row with each value survives.
        """
        if factor < 0:
            raise StatisticsError(f"scale factor must be non-negative, got {factor}")
        if factor >= 1.0:
            return self
        buckets = []
        for b in self.buckets:
            new_count = b.count * factor
            per_value = b.count / b.distinct if b.distinct > 0 else 0.0
            if per_value > 0:
                survive = 1.0 - (1.0 - factor) ** per_value
            else:
                survive = factor
            new_distinct = min(b.distinct * survive, new_count) if new_count > 0 else 0.0
            buckets.append(Bucket(b.low, b.high, new_count, new_distinct))
        return Histogram(self.kind, buckets)

    def restricted(self, low: float | None, high: float | None) -> "Histogram":
        """Slice the histogram to ``[low, high]`` (for predicates on this attr)."""
        if self.is_empty:
            return self
        lo = self.buckets[0].low if low is None else low
        hi = self.buckets[-1].high if high is None else high
        buckets = []
        for b in self.buckets:
            frac = b.overlap_fraction(lo, hi)
            if frac <= 0:
                continue
            new_low = max(b.low, lo)
            new_high = min(b.high, hi)
            buckets.append(
                Bucket(
                    low=new_low,
                    high=new_high,
                    count=b.count * frac,
                    distinct=max(1.0, b.distinct * frac) if b.count * frac > 0 else 0.0,
                )
            )
        return Histogram(self.kind, buckets)

    def scaled_counts(self, factor: float) -> "Histogram":
        """Scale counts keeping distincts: sample-to-population extrapolation.

        Unlike :meth:`scaled` (which models removing rows), this models the
        same value distribution observed through a uniform sample, so the
        distinct counts stay (capped at the new counts).
        """
        if factor < 0:
            raise StatisticsError(f"scale factor must be non-negative, got {factor}")
        buckets = [
            Bucket(b.low, b.high, b.count * factor, min(b.distinct, b.count * factor))
            for b in self.buckets
        ]
        return Histogram(self.kind, buckets)

    def join_cardinality(self, other: "Histogram") -> float:
        """Estimated equi-join output size against ``other``.

        Classic bucket-overlap estimation: within each overlap region assume
        uniform spread and compute ``n1 * n2 / max(d1, d2)``.
        """
        if self.is_empty or other.is_empty:
            return 0.0
        total = 0.0
        for b1 in self.buckets:
            for b2 in other.buckets:
                lo = max(b1.low, b2.low)
                hi = min(b1.high, b2.high)
                if hi < lo:
                    continue
                f1 = b1.overlap_fraction(lo, hi)
                f2 = b2.overlap_fraction(lo, hi)
                n1 = b1.count * f1
                n2 = b2.count * f2
                d1 = max(b1.distinct * f1, 1e-9)
                d2 = max(b2.distinct * f2, 1e-9)
                if n1 > 0 and n2 > 0:
                    total += n1 * n2 / max(d1, d2)
        return total


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _frequency_pairs(values: Iterable[float]) -> list[tuple[float, int]]:
    """Sorted ``(value, frequency)`` pairs for the input values."""
    freq = Counter(values)
    return sorted(freq.items())


def _bucket_from_pairs(pairs: Sequence[tuple[float, int]]) -> Bucket:
    return Bucket(
        low=float(pairs[0][0]),
        high=float(pairs[-1][0]),
        count=float(sum(f for _, f in pairs)),
        distinct=float(len(pairs)),
    )


def build_equi_width(values: Iterable[float], num_buckets: int) -> Histogram:
    """Equal-value-range buckets."""
    pairs = _frequency_pairs(values)
    if not pairs:
        return Histogram(HistogramKind.EQUI_WIDTH, [])
    lo, hi = pairs[0][0], pairs[-1][0]
    if lo == hi or num_buckets <= 1:
        return Histogram(HistogramKind.EQUI_WIDTH, [_bucket_from_pairs(pairs)])
    width = (hi - lo) / num_buckets
    buckets: list[Bucket] = []
    group: list[tuple[float, int]] = []
    boundary = lo + width
    for value, freq in pairs:
        while value > boundary and boundary < hi:
            if group:
                buckets.append(_bucket_from_pairs(group))
                group = []
            boundary += width
        group.append((value, freq))
    if group:
        buckets.append(_bucket_from_pairs(group))
    return Histogram(HistogramKind.EQUI_WIDTH, buckets)


def build_equi_depth(values: Iterable[float], num_buckets: int) -> Histogram:
    """Equal-row-count buckets."""
    pairs = _frequency_pairs(values)
    if not pairs:
        return Histogram(HistogramKind.EQUI_DEPTH, [])
    total = sum(f for _, f in pairs)
    target = total / max(1, num_buckets)
    buckets: list[Bucket] = []
    group: list[tuple[float, int]] = []
    acc = 0
    for value, freq in pairs:
        group.append((value, freq))
        acc += freq
        if acc >= target and len(buckets) < num_buckets - 1:
            buckets.append(_bucket_from_pairs(group))
            group = []
            acc = 0
    if group:
        buckets.append(_bucket_from_pairs(group))
    return Histogram(HistogramKind.EQUI_DEPTH, buckets)


def build_maxdiff(values: Iterable[float], num_buckets: int) -> Histogram:
    """MaxDiff(V, A) histogram [19]: boundaries at the largest area jumps."""
    pairs = _frequency_pairs(values)
    if not pairs:
        return Histogram(HistogramKind.MAXDIFF, [])
    if len(pairs) <= num_buckets:
        # One singleton bucket per distinct value: exact.
        buckets = [_bucket_from_pairs([p]) for p in pairs]
        return Histogram(HistogramKind.MAXDIFF, buckets)
    # Area of value i = frequency * spread to the next distinct value.
    areas = []
    for i, (value, freq) in enumerate(pairs):
        if i + 1 < len(pairs):
            spread = pairs[i + 1][0] - value
        else:
            spread = 1.0
        areas.append(freq * max(spread, 1e-12))
    diffs = [abs(areas[i + 1] - areas[i]) for i in range(len(areas) - 1)]
    # Boundaries go after positions with the num_buckets-1 largest diffs.
    cut_after = sorted(
        sorted(range(len(diffs)), key=lambda i: diffs[i], reverse=True)[: num_buckets - 1]
    )
    buckets: list[Bucket] = []
    start = 0
    for cut in cut_after:
        buckets.append(_bucket_from_pairs(pairs[start : cut + 1]))
        start = cut + 1
    buckets.append(_bucket_from_pairs(pairs[start:]))
    return Histogram(HistogramKind.MAXDIFF, buckets)


def build_end_biased(values: Iterable[float], num_buckets: int) -> Histogram:
    """End-biased (serial-class) histogram: exact top frequencies, rest uniform."""
    pairs = _frequency_pairs(values)
    if not pairs:
        return Histogram(HistogramKind.END_BIASED, [])
    if len(pairs) <= num_buckets:
        buckets = [_bucket_from_pairs([p]) for p in pairs]
        return Histogram(HistogramKind.END_BIASED, buckets)
    top = set(
        v for v, _ in sorted(pairs, key=lambda p: p[1], reverse=True)[: num_buckets - 1]
    )
    buckets: list[Bucket] = []
    rest: list[tuple[float, int]] = []
    for value, freq in pairs:
        if value in top:
            buckets.append(_bucket_from_pairs([(value, freq)]))
        else:
            rest.append((value, freq))
    if rest:
        # The "rest" bucket may interleave with singletons; merge order-safe by
        # splitting it around each singleton boundary.
        buckets.extend(_split_around(rest, sorted(top)))
    buckets.sort(key=lambda b: b.low)
    return Histogram(HistogramKind.END_BIASED, buckets)


def _split_around(
    rest: list[tuple[float, int]], boundaries: list[float]
) -> list[Bucket]:
    """Split the residual value list so buckets never straddle a singleton."""
    buckets: list[Bucket] = []
    group: list[tuple[float, int]] = []
    b_iter = iter(boundaries)
    boundary = next(b_iter, None)
    for value, freq in rest:
        while boundary is not None and value > boundary:
            if group:
                buckets.append(_bucket_from_pairs(group))
                group = []
            boundary = next(b_iter, None)
        group.append((value, freq))
    if group:
        buckets.append(_bucket_from_pairs(group))
    return buckets


_BUILDERS = {
    HistogramKind.EQUI_WIDTH: build_equi_width,
    HistogramKind.EQUI_DEPTH: build_equi_depth,
    HistogramKind.MAXDIFF: build_maxdiff,
    HistogramKind.END_BIASED: build_end_biased,
}


def build_histogram(
    values: Iterable[float], kind: HistogramKind = HistogramKind.MAXDIFF,
    num_buckets: int = 32,
) -> Histogram:
    """Build a histogram of the requested kind."""
    if num_buckets <= 0:
        raise StatisticsError(f"num_buckets must be positive, got {num_buckets}")
    return _BUILDERS[kind](values, num_buckets)


def from_sample(
    sample: Sequence[float],
    population_count: int,
    kind: HistogramKind = HistogramKind.MAXDIFF,
    num_buckets: int = 32,
) -> Histogram:
    """Build a histogram from a reservoir sample, scaled to the population.

    This is the run-time path: a statistics collector keeps a one-page
    reservoir and an exact row count; the histogram built from the sample is
    scaled so its total equals the observed cardinality.
    """
    hist = build_histogram(sample, kind=kind, num_buckets=num_buckets)
    if hist.is_empty or population_count <= 0:
        return hist
    return hist.scaled_counts(population_count / hist.total_count)
