"""Generalized Zipfian value generation.

The paper's skew experiments (Figure 12) modified the TPC-D generator so all
non-key attributes follow a generalized Zipfian distribution (Zipf [27] as
described in Poosala's technical report [18]), with skew parameter ``z`` set
to 0.3 and 0.6.  :class:`ZipfGenerator` reproduces that: value ``i`` of ``n``
has probability proportional to ``1 / i**z``; ``z = 0`` degenerates to the
uniform distribution.

Frequencies are optionally decoupled from value order by a seeded permutation
(`permute=True`), matching dbgen-style generators where the most frequent
value is not necessarily the smallest.
"""

from __future__ import annotations

import numpy as np

from ..errors import StatisticsError


class ZipfGenerator:
    """Sample integers ``1..n`` under a generalized Zipfian distribution."""

    def __init__(self, n: int, z: float, seed: int = 0, permute: bool = False) -> None:
        if n <= 0:
            raise StatisticsError(f"Zipf domain size must be positive, got {n}")
        if z < 0:
            raise StatisticsError(f"Zipf skew must be non-negative, got {z}")
        self.n = n
        self.z = z
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-z) if z > 0 else np.ones(n)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if permute:
            self._values = self._rng.permutation(np.arange(1, n + 1))
        else:
            self._values = np.arange(1, n + 1)

    def probabilities(self) -> np.ndarray:
        """Per-rank probabilities (rank 1 is the most frequent)."""
        probs = np.diff(self._cdf, prepend=0.0)
        return probs

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` values as a numpy integer array."""
        if count < 0:
            raise StatisticsError(f"sample count must be non-negative, got {count}")
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._values[ranks]

    def sample_list(self, count: int) -> list[int]:
        """Draw ``count`` values as plain Python ints."""
        return [int(v) for v in self.sample(count)]
