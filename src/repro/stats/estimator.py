"""Cardinality and selectivity estimation.

The estimator implements what a System-R style optimizer believes about the
data: histogram-backed selectivities where histograms exist, textbook magic
numbers (1/10 for equality, 1/3 for ranges) where they do not, the
independence assumption for conjunctions, and ``|R| * |S| / max(d_R, d_S)``
for equi-joins (bucket-overlap histogram joins when both sides have
histograms).

Estimates flow through :class:`RelProfile` objects — statistics describing a
base or intermediate relation.  The same propagation code serves two
masters:

* the optimizer, which starts from catalog statistics (possibly stale), and
* the improved-estimate machinery of Dynamic Re-Optimization, which starts
  from *observed* run-time statistics at a collector point and re-derives
  the remainder's cardinalities (paper section 2.2).

Parameter-based comparisons and predicates containing UDF calls always use
the magic defaults — the paper's motivating error sources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..plans.logical import (
    AndPredicate,
    ColumnExpr,
    CompareOp,
    Comparison,
    InPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
)
from ..storage.schema import DataType
from .table_stats import ColumnStats, TableStats

#: System-R magic selectivities used when no statistics apply.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_NE_SELECTIVITY = 0.9
#: Assumed distinct count when a column has no statistics at all.
DEFAULT_DISTINCT_FRACTION = 0.1
#: Floor for row estimates: plans should never assume a truly empty input.
MIN_ROWS = 1.0


@dataclass(frozen=True)
class RelProfile:
    """Statistics describing one (base or intermediate) relation.

    ``columns`` maps *qualified* column names (``alias.column``) to their
    statistics; the per-column ``count`` fields track ``rows``.
    """

    rows: float
    row_bytes: float
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)
    aliases: frozenset[str] = frozenset()

    def column(self, qualified: str) -> ColumnStats | None:
        """Stats for a qualified column (None when unknown)."""
        return self.columns.get(qualified)

    def pages(self, page_size: int) -> float:
        """Estimated page count of this relation."""
        if self.rows <= 0:
            return 0.0
        per_page = max(1.0, page_size / max(1.0, self.row_bytes))
        return max(1.0, math.ceil(self.rows / per_page))

    def distinct_of(self, qualified: str) -> float:
        """Distinct count for a column, with a sane default when unknown."""
        stats = self.columns.get(qualified)
        if stats is not None and stats.distinct > 0:
            return min(stats.distinct, max(self.rows, 1.0))
        return max(1.0, self.rows * DEFAULT_DISTINCT_FRACTION)


def profile_from_table_stats(stats: TableStats, alias: str) -> RelProfile:
    """Build a profile for a base table scanned under ``alias``."""
    columns = {
        f"{alias}.{name}": cs.renamed(f"{alias}.{name}")
        for name, cs in stats.columns.items()
    }
    return RelProfile(
        rows=max(MIN_ROWS, stats.row_count),
        row_bytes=stats.avg_row_bytes,
        columns=columns,
        aliases=frozenset({alias}),
    )


class Estimator:
    """Selectivity/cardinality estimation over :class:`RelProfile` objects."""

    def __init__(
        self,
        default_eq: float = DEFAULT_EQ_SELECTIVITY,
        default_range: float = DEFAULT_RANGE_SELECTIVITY,
        parameter_selectivity: float | None = None,
        use_parameter_values: bool = False,
    ) -> None:
        self.default_eq = default_eq
        self.default_range = default_range
        #: When set, every host-variable comparison is assumed to have this
        #: selectivity — how parametric optimization explores scenarios
        #: (Graefe/Cole dynamic plans; see repro.core.parametric).
        self.parameter_selectivity = parameter_selectivity
        #: When True, host-variable comparisons are estimated from their
        #: (now known) values — used when *choosing* among parametric plans
        #: at execution start.
        self.use_parameter_values = use_parameter_values
        #: Cross-query feedback repository
        #: (:class:`repro.observe.feedback.FeedbackRepository`), attached by
        #: the engine when ``EngineConfig.feedback_enabled``.  When present,
        #: the plan annotator consults recorded fragment observations before
        #: trusting the histogram-derived cardinality.
        self.feedback = None

    def corrected_rows(
        self,
        signature: str,
        est_rows: float,
        stats_epoch: int,
        edge_key: str | None = None,
    ):
        """Feedback correction for one plan fragment's row estimate.

        Returns ``(corrected_rows, record)`` when the attached feedback
        repository holds an observation that disagrees with ``est_rows`` by
        at least its Q-error threshold, else None (no repository, no
        record, or the histogram estimate is already close enough).
        ``edge_key`` lets join fragments without an exact record fall back
        to the repository's learned per-predicate selectivity adjustment.
        """
        if self.feedback is None:
            return None
        return self.feedback.corrected_rows(
            signature, est_rows, stats_epoch, edge_key=edge_key
        )

    # ------------------------------------------------------------------
    # Selectivity of single predicates
    # ------------------------------------------------------------------

    def selectivity(self, predicate: Predicate, profile: RelProfile) -> float:
        """Estimated selectivity of one predicate against a relation profile."""
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate, profile)
        if isinstance(predicate, InPredicate):
            return self._in_selectivity(predicate, profile)
        if isinstance(predicate, OrPredicate):
            miss = 1.0
            for child in predicate.children:
                miss *= 1.0 - self.selectivity(child, profile)
            return _clamp(1.0 - miss)
        if isinstance(predicate, AndPredicate):
            sel = 1.0
            for child in predicate.children:
                sel *= self.selectivity(child, profile)
            return _clamp(sel)
        if isinstance(predicate, NotPredicate):
            return _clamp(1.0 - self.selectivity(predicate.child, profile))
        return self.default_range

    def _default_for(self, op: CompareOp) -> float:
        if op is CompareOp.EQ:
            return self.default_eq
        if op is CompareOp.NE:
            return DEFAULT_NE_SELECTIVITY
        return self.default_range

    def _comparison_selectivity(self, pred: Comparison, profile: RelProfile) -> float:
        if pred.contains_function():
            # UDF comparisons are always opaque to the optimizer.
            return self._default_for(pred.op)
        if pred.is_parameter_based and not self.use_parameter_values:
            if self.parameter_selectivity is not None:
                return _clamp(self.parameter_selectivity)
            return self._default_for(pred.op)
        normalized = pred.normalized()
        col_const = normalized.column_and_constant()
        if col_const is not None:
            column, value = col_const
            return self._column_const_selectivity(column, normalized.op, value, profile)
        if pred.is_column_to_column and len(pred.qualifiers()) == 1:
            # Same-relation column comparison (e.g. correlated attributes).
            return self._default_for(pred.op)
        # Complex expression comparison: no statistics apply.
        return self._default_for(pred.op)

    def _column_const_selectivity(
        self, column: str, op: CompareOp, value: object, profile: RelProfile
    ) -> float:
        stats = profile.column(column)
        if stats is None:
            return self._default_for(op)
        if op is CompareOp.EQ:
            if stats.has_histogram and isinstance(value, (int, float)):
                return _clamp(stats.histogram.selectivity_eq(float(value)))
            if stats.distinct > 0:
                return _clamp(1.0 / stats.distinct)
            return self.default_eq
        if op is CompareOp.NE:
            return _clamp(1.0 - self._column_const_selectivity(
                column, CompareOp.EQ, value, profile))
        # Range operators.
        if not isinstance(value, (int, float)):
            return self.default_range
        v = float(value)
        if stats.has_histogram:
            if op in (CompareOp.LT, CompareOp.LE):
                return _clamp(stats.histogram.selectivity_range(None, v))
            return _clamp(stats.histogram.selectivity_range(v, None))
        if stats.min_value is not None and stats.max_value is not None:
            span = stats.max_value - stats.min_value
            if span <= 0:
                return 1.0 if _range_holds(op, stats.min_value, v) else 0.0
            if op in (CompareOp.LT, CompareOp.LE):
                frac = (v - stats.min_value) / span
            else:
                frac = (stats.max_value - v) / span
            return _clamp(frac)
        return self.default_range

    def _in_selectivity(self, pred: InPredicate, profile: RelProfile) -> float:
        if not isinstance(pred.expr, ColumnExpr):
            return _clamp(self.default_eq * len(pred.values))
        total = 0.0
        for value in pred.values:
            total += self._column_const_selectivity(
                pred.expr.name, CompareOp.EQ, value, profile
            )
        return _clamp(total)

    # ------------------------------------------------------------------
    # Profile propagation
    # ------------------------------------------------------------------

    def apply_predicates(
        self, profile: RelProfile, predicates: Sequence[Predicate]
    ) -> tuple[RelProfile, float]:
        """Apply a conjunction of predicates; returns (new profile, selectivity).

        Selectivities multiply (the independence assumption — deliberately:
        this is the error source correlated predicates exploit).  Column
        statistics are restricted for predicates on specific columns and
        scaled for everything else.
        """
        selectivity = 1.0
        columns = dict(profile.columns)
        restricted: set[str] = set()
        for pred in predicates:
            sel = self.selectivity(pred, profile)
            selectivity *= sel
            target = self._restriction_target(pred)
            if target is not None:
                column, op, value = target
                stats = columns.get(column)
                if stats is not None:
                    columns[column] = _restrict_column(stats, op, value)
                    restricted.add(column)
        selectivity = _clamp(selectivity)
        new_rows = max(MIN_ROWS, profile.rows * selectivity)
        scale = new_rows / max(profile.rows, 1.0)
        final_columns: dict[str, ColumnStats] = {}
        for name, stats in columns.items():
            if name in restricted:
                final_columns[name] = replace(stats, count=new_rows)
            else:
                final_columns[name] = _scale_column(stats, scale, new_rows)
        return (
            RelProfile(
                rows=new_rows,
                row_bytes=profile.row_bytes,
                columns=final_columns,
                aliases=profile.aliases,
            ),
            selectivity,
        )

    def _restriction_target(
        self, pred: Predicate,
    ) -> tuple[str, CompareOp, object] | None:
        if not isinstance(pred, Comparison):
            return None
        if pred.contains_function():
            return None
        if pred.is_parameter_based and not self.use_parameter_values:
            return None
        normalized = pred.normalized()
        col_const = normalized.column_and_constant()
        if col_const is None:
            return None
        column, value = col_const
        return (column, normalized.op, value)

    def join(
        self,
        left: RelProfile,
        right: RelProfile,
        equi_pairs: Sequence[tuple[str, str]],
        residual: Sequence[Predicate] = (),
    ) -> tuple[RelProfile, float]:
        """Estimate an equi-join; returns (joined profile, cardinality).

        ``equi_pairs`` is a list of ``(left_column, right_column)`` join keys;
        ``residual`` predicates multiply in with independence.
        """
        cross = left.rows * right.rows
        cardinality = cross
        if equi_pairs:
            first = True
            for lcol, rcol in equi_pairs:
                lstats = left.column(lcol)
                rstats = right.column(rcol)
                if (
                    first
                    and lstats is not None
                    and rstats is not None
                    and lstats.has_histogram
                    and rstats.has_histogram
                ):
                    cardinality = lstats.histogram.join_cardinality(rstats.histogram)
                else:
                    d = max(left.distinct_of(lcol), right.distinct_of(rcol))
                    if first:
                        cardinality = cross / max(d, 1.0)
                    else:
                        cardinality /= max(d, 1.0)
                first = False
        cardinality = max(MIN_ROWS, min(cardinality, cross))
        joined = self._joined_profile(left, right, cardinality)
        if residual:
            joined, sel = self.apply_predicates(joined, residual)
            cardinality = joined.rows
        return joined, cardinality

    def _joined_profile(
        self, left: RelProfile, right: RelProfile, cardinality: float
    ) -> RelProfile:
        columns: dict[str, ColumnStats] = {}
        for side in (left, right):
            scale = cardinality / max(side.rows, 1.0)
            for name, stats in side.columns.items():
                columns[name] = _scale_column(stats, min(scale, 1.0), cardinality)
        return RelProfile(
            rows=cardinality,
            row_bytes=left.row_bytes + right.row_bytes,
            columns=columns,
            aliases=left.aliases | right.aliases,
        )

    def group_count(self, profile: RelProfile, group_columns: Sequence[str]) -> float:
        """Estimated number of groups for a GROUP BY."""
        if not group_columns:
            return 1.0
        product = 1.0
        for column in group_columns:
            product *= profile.distinct_of(column)
        return max(1.0, min(product, profile.rows))


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, value))


def _range_holds(op: CompareOp, column_value: float, constant: float) -> bool:
    return op.python(column_value, constant)


def _restrict_column(stats: ColumnStats, op: CompareOp, value: object) -> ColumnStats:
    """Narrow a column's stats after an eq/range predicate on that column."""
    if op is CompareOp.EQ:
        numeric = float(value) if isinstance(value, (int, float)) else None
        histogram = None
        if stats.has_histogram and numeric is not None:
            histogram = stats.histogram.restricted(numeric, numeric)
        return replace(
            stats,
            distinct=1.0,
            min_value=numeric if numeric is not None else stats.min_value,
            max_value=numeric if numeric is not None else stats.max_value,
            histogram=histogram,
        )
    if not isinstance(value, (int, float)):
        return stats
    v = float(value)
    if op in (CompareOp.LT, CompareOp.LE):
        low, high = (stats.min_value, v)
    elif op in (CompareOp.GT, CompareOp.GE):
        low, high = (v, stats.max_value)
    else:  # NE: barely changes the distribution.
        return stats
    histogram = stats.histogram.restricted(low, high) if stats.has_histogram else None
    distinct = (
        histogram.total_distinct
        if histogram is not None and not histogram.is_empty
        else stats.distinct
    )
    return replace(
        stats,
        distinct=max(1.0, distinct),
        min_value=low if low is not None else stats.min_value,
        max_value=high if high is not None else stats.max_value,
        histogram=histogram,
    )


def _scale_column(stats: ColumnStats, scale: float, new_rows: float) -> ColumnStats:
    """Scale a column's stats when rows are removed by unrelated predicates."""
    if scale >= 1.0:
        if stats.count == new_rows:
            return stats
        return replace(stats, count=new_rows)
    histogram = stats.histogram.scaled(scale) if stats.has_histogram else stats.histogram
    if stats.distinct > 0 and stats.count > 0:
        per_value = stats.count / stats.distinct
        survive = 1.0 - (1.0 - scale) ** per_value
        distinct = max(1.0, min(stats.distinct * survive, new_rows))
    else:
        distinct = min(stats.distinct, new_rows)
    return replace(stats, count=new_rows, distinct=distinct, histogram=histogram)
