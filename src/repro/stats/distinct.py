"""Distinct-value counting.

The paper computes the number of unique values of an attribute (or attribute
set) at run time using the probabilistic bitmap approach of Flajolet and
Martin [6] (the alternative it mentions is reservoir sampling).  Two counters
are provided:

* :class:`FlajoletMartin` — the classic PCSA sketch: ``m`` bitmaps updated by
  the trailing-zero rank of a salted 64-bit hash; the estimate is
  ``m / phi * 2**mean(R)``.  Fixed memory, one pass, ~10% typical error with
  64 bitmaps.
* :class:`ExactDistinct` — a hash-set counter used for tests and for small
  inputs where exact counting is free anyway.

Both share the tiny :class:`DistinctCounter` protocol (``add`` / ``estimate``)
so statistics collectors can swap them.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..errors import StatisticsError

#: Flajolet–Martin magic constant (1/0.77351).
_PHI = 0.77351
#: 64-bit mixing constants (splitmix64 finalizer).
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mixer."""
    x &= _MASK
    x ^= x >> 30
    x = (x * _MIX1) & _MASK
    x ^= x >> 27
    x = (x * _MIX2) & _MASK
    x ^= x >> 31
    return x


class DistinctCounter(Protocol):
    """Minimal interface shared by distinct counters."""

    def add(self, value) -> None:
        """Observe one value."""

    def add_batch(self, values) -> None:
        """Observe a batch of values (the batch execution path)."""

    def estimate(self) -> float:
        """Estimated number of distinct values observed."""


class ExactDistinct:
    """Exact distinct counting via a hash set."""

    def __init__(self) -> None:
        self._seen: set = set()

    def add(self, value) -> None:
        self._seen.add(value)

    def add_batch(self, values: Iterable) -> None:
        """Observe a batch of values at once."""
        self._seen.update(values)

    def extend(self, values: Iterable) -> None:
        """Observe every value from an iterable."""
        for value in values:
            self._seen.add(value)

    def merge(self, other: "ExactDistinct") -> None:
        """Fold another exact counter in (set union)."""
        self._seen |= other._seen

    def estimate(self) -> float:
        return float(len(self._seen))


class HybridDistinct:
    """Exact counting for small cardinalities, PCSA beyond a threshold.

    PCSA over-estimates badly when the true cardinality is below a few
    multiples of the bitmap count, so the collector keeps an exact hash set
    until ``threshold`` distinct values have been seen and only then trusts
    the sketch (which has observed every value all along).  Memory stays
    bounded by the threshold.
    """

    def __init__(self, num_maps: int = 64, seed: int = 0, threshold: int = 1024) -> None:
        if threshold <= 0:
            raise StatisticsError(f"threshold must be positive, got {threshold}")
        self._sketch = FlajoletMartin(num_maps=num_maps, seed=seed)
        self._exact: set | None = set()
        self._threshold = threshold

    def add(self, value) -> None:
        self._sketch.add(value)
        if self._exact is not None:
            self._exact.add(value)
            if len(self._exact) > self._threshold:
                self._exact = None

    def add_batch(self, values) -> None:
        """Observe a batch of values at once.

        The exact set is dropped after the batch rather than mid-batch, so
        it may transiently exceed the threshold by one batch; the final
        estimate is unchanged (the sketch observed every value either way).
        """
        self._sketch.add_batch(values)
        if self._exact is not None:
            self._exact.update(values)
            if len(self._exact) > self._threshold:
                self._exact = None

    def extend(self, values: Iterable) -> None:
        """Observe every value from an iterable."""
        for value in values:
            self.add(value)

    def merge(self, other: "HybridDistinct") -> None:
        """Fold another hybrid counter in.

        The sketches OR their bitmaps (lossless: the merged sketch equals
        one that observed both inputs).  The exact sets union while both
        sides still have one, with the same drop-after-update semantics as
        :meth:`add_batch`; once either side has fallen back to the sketch
        the union must too (it no longer knows the exact values).
        """
        self._sketch.merge(other._sketch)
        if self._exact is None or other._exact is None:
            self._exact = None
            return
        self._exact |= other._exact
        if len(self._exact) > self._threshold:
            self._exact = None

    def __getstate__(self) -> dict:
        """Compact picklable state (workers ship sketches back by value)."""
        return {
            "sketch": self._sketch,
            "exact": None if self._exact is None else set(self._exact),
            "threshold": self._threshold,
        }

    def __setstate__(self, state: dict) -> None:
        self._sketch = state["sketch"]
        self._exact = state["exact"]
        self._threshold = state["threshold"]

    def estimate(self) -> float:
        if self._exact is not None:
            return float(len(self._exact))
        return self._sketch.estimate()


class FlajoletMartin:
    """Probabilistic counting with stochastic averaging (PCSA, [6])."""

    def __init__(self, num_maps: int = 64, seed: int = 0) -> None:
        if num_maps <= 0:
            raise StatisticsError(f"num_maps must be positive, got {num_maps}")
        self.num_maps = num_maps
        self._salt = _mix64(seed ^ 0x9E3779B97F4A7C15)
        self._bitmaps = [0] * num_maps

    def add(self, value) -> None:
        h = _mix64(hash(value) ^ self._salt)
        bucket = h % self.num_maps
        h //= self.num_maps
        rank = self._trailing_zeros(h)
        self._bitmaps[bucket] |= 1 << rank

    def add_batch(self, values) -> None:
        """Observe a batch of values with the hashing loop kept local."""
        bitmaps = self._bitmaps
        salt = self._salt
        num_maps = self.num_maps
        for value in values:
            h = _mix64(hash(value) ^ salt)
            bucket = h % num_maps
            h //= num_maps
            rank = (h & -h).bit_length() - 1 if h else 63
            bitmaps[bucket] |= 1 << rank

    def extend(self, values: Iterable) -> None:
        """Observe every value from an iterable."""
        for value in values:
            self.add(value)

    def merge(self, other: "FlajoletMartin") -> None:
        """Fold another sketch in (bitmap OR).

        Lossless: a bit records that *some* value hashed to that rank, so
        the union of two sketches over disjoint scans equals the sketch of
        one scan over the concatenated input.  Both sketches must share the
        bitmap count and salt, otherwise ranks are incomparable.
        """
        if other.num_maps != self.num_maps or other._salt != self._salt:
            raise StatisticsError(
                "cannot merge Flajolet-Martin sketches with different "
                "geometry or seed"
            )
        self._bitmaps = [a | b for a, b in zip(self._bitmaps, other._bitmaps)]

    def __getstate__(self) -> dict:
        return {
            "num_maps": self.num_maps,
            "salt": self._salt,
            "bitmaps": list(self._bitmaps),
        }

    def __setstate__(self, state: dict) -> None:
        self.num_maps = state["num_maps"]
        self._salt = state["salt"]
        self._bitmaps = list(state["bitmaps"])

    def estimate(self) -> float:
        total_rank = sum(self._lowest_zero(bm) for bm in self._bitmaps)
        mean_rank = total_rank / self.num_maps
        return self.num_maps / _PHI * (2.0 ** mean_rank)

    @staticmethod
    def _trailing_zeros(x: int) -> int:
        if x == 0:
            return 63
        return (x & -x).bit_length() - 1

    @staticmethod
    def _lowest_zero(bitmap: int) -> int:
        rank = 0
        while bitmap & (1 << rank):
            rank += 1
        return rank
