"""Statistics substrate: histograms, sampling, sketches, catalog statistics."""

from .distinct import DistinctCounter, ExactDistinct, FlajoletMartin, HybridDistinct
from .histogram import (
    Bucket,
    Histogram,
    HistogramKind,
    build_end_biased,
    build_equi_depth,
    build_equi_width,
    build_histogram,
    build_maxdiff,
    from_sample,
)
from .sampling import Reservoir
from .table_stats import (
    ColumnStats,
    TableStats,
    compute_column_stats,
    compute_table_stats,
    schema_only_stats,
)
from .zipf import ZipfGenerator

__all__ = [
    "Bucket",
    "ColumnStats",
    "DistinctCounter",
    "ExactDistinct",
    "FlajoletMartin",
    "HybridDistinct",
    "Histogram",
    "HistogramKind",
    "Reservoir",
    "TableStats",
    "ZipfGenerator",
    "build_end_biased",
    "build_equi_depth",
    "build_equi_width",
    "build_histogram",
    "build_maxdiff",
    "compute_column_stats",
    "compute_table_stats",
    "from_sample",
    "schema_only_stats",
]
