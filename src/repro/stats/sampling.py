"""Reservoir sampling (Vitter, Algorithm R).

The paper's statistics collectors keep one database page worth of sampled
attribute values per collected histogram, filled with Vitter's reservoir
sampling [24]; when the input is exhausted the reservoir is turned into a
histogram ([19]'s recommendation).  :class:`Reservoir` implements exactly
that single-pass, fixed-memory sampler with a deterministic seed.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..errors import StatisticsError


class Reservoir:
    """A fixed-capacity uniform random sample maintained in one pass."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise StatisticsError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self._sample: list = []
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._sample)

    def add(self, value) -> None:
        """Offer one value to the reservoir (Algorithm R replacement step)."""
        self.seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._sample[slot] = value

    def extend(self, values: Iterable) -> None:
        """Offer every value from an iterable."""
        for value in values:
            self.add(value)

    def add_batch(self, values: Sequence) -> None:
        """Offer a batch of values with one bookkeeping pass.

        Consumes the RNG exactly as per-value :meth:`add` calls would (one
        ``randrange`` per value past capacity, with the same running
        ``seen``), so the resulting sample is bit-identical to the
        row-at-a-time path.
        """
        sample = self._sample
        capacity = self.capacity
        seen = self.seen
        index = 0
        total = len(values)
        while len(sample) < capacity and index < total:
            sample.append(values[index])
            index += 1
            seen += 1
        randrange = self._rng.randrange
        for index in range(index, total):
            seen += 1
            slot = randrange(seen)
            if slot < capacity:
                sample[slot] = values[index]
        self.seen = seen

    def merge(self, other: "Reservoir", rng: random.Random | None = None) -> None:
        """Fold another reservoir into this one (weighted union sampling).

        After merging, this reservoir holds a uniform random sample of the
        *combined* population: each retained element of either input stands
        for ``seen / len(sample)`` population values, and elements are drawn
        from the two (shuffled) samples with probability proportional to the
        unrepresented population weight remaining on each side — the
        standard distributed-reservoir union.  When both inputs are
        exhaustive (``seen <= capacity`` combined) the merge is a plain
        concatenation and stays exhaustive.

        ``rng`` selects the randomness source for the weighted draw (the
        parallel executor passes a dedicated merge RNG so results depend
        only on morsel order, never on worker scheduling); by default this
        reservoir's own RNG is used.
        """
        if other.seen == 0:
            return
        if self.capacity != other.capacity:
            raise StatisticsError(
                f"cannot merge reservoirs of capacity {other.capacity} "
                f"into {self.capacity}"
            )
        if self.seen == 0:
            self.seen = other.seen
            self._sample = list(other._sample)
            return
        total = self.seen + other.seen
        if total <= self.capacity:
            self._sample.extend(other._sample)
            self.seen = total
            return
        rng = self._rng if rng is None else rng
        ours = list(self._sample)
        theirs = list(other._sample)
        rng.shuffle(ours)
        rng.shuffle(theirs)
        # Remaining population weight on each side; consumed in per-element
        # decrements so early draws from a side make later ones less likely.
        weight_ours = float(self.seen)
        weight_theirs = float(other.seen)
        step_ours = weight_ours / len(ours)
        step_theirs = weight_theirs / len(theirs)
        merged: list = []
        i = j = 0
        target = min(self.capacity, len(ours) + len(theirs))
        while len(merged) < target:
            if i >= len(ours):
                merged.append(theirs[j])
                j += 1
                continue
            if j >= len(theirs):
                merged.append(ours[i])
                i += 1
                continue
            if rng.random() * (weight_ours + weight_theirs) < weight_ours:
                merged.append(ours[i])
                i += 1
                weight_ours -= step_ours
            else:
                merged.append(theirs[j])
                j += 1
                weight_theirs -= step_theirs
        self._sample = merged
        self.seen = total

    def __getstate__(self) -> dict:
        """Compact picklable state (workers ship reservoirs back by value)."""
        return {
            "capacity": self.capacity,
            "seen": self.seen,
            "sample": list(self._sample),
            "rng": self._rng.getstate(),
        }

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.seen = state["seen"]
        self._sample = list(state["sample"])
        self._rng = random.Random()
        self._rng.setstate(state["rng"])

    @property
    def sample(self) -> Sequence:
        """The current sample (length ``min(capacity, seen)``)."""
        return tuple(self._sample)

    @property
    def is_exhaustive(self) -> bool:
        """True when the reservoir holds *every* value seen so far."""
        return self.seen <= self.capacity

    def scale_factor(self) -> float:
        """Multiplier mapping sample frequencies to population frequencies."""
        if not self._sample:
            return 0.0
        return self.seen / len(self._sample)
