"""Reservoir sampling (Vitter, Algorithm R).

The paper's statistics collectors keep one database page worth of sampled
attribute values per collected histogram, filled with Vitter's reservoir
sampling [24]; when the input is exhausted the reservoir is turned into a
histogram ([19]'s recommendation).  :class:`Reservoir` implements exactly
that single-pass, fixed-memory sampler with a deterministic seed.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..errors import StatisticsError


class Reservoir:
    """A fixed-capacity uniform random sample maintained in one pass."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise StatisticsError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self._sample: list = []
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._sample)

    def add(self, value) -> None:
        """Offer one value to the reservoir (Algorithm R replacement step)."""
        self.seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._sample[slot] = value

    def extend(self, values: Iterable) -> None:
        """Offer every value from an iterable."""
        for value in values:
            self.add(value)

    def add_batch(self, values: Sequence) -> None:
        """Offer a batch of values with one bookkeeping pass.

        Consumes the RNG exactly as per-value :meth:`add` calls would (one
        ``randrange`` per value past capacity, with the same running
        ``seen``), so the resulting sample is bit-identical to the
        row-at-a-time path.
        """
        sample = self._sample
        capacity = self.capacity
        seen = self.seen
        index = 0
        total = len(values)
        while len(sample) < capacity and index < total:
            sample.append(values[index])
            index += 1
            seen += 1
        randrange = self._rng.randrange
        for index in range(index, total):
            seen += 1
            slot = randrange(seen)
            if slot < capacity:
                sample[slot] = values[index]
        self.seen = seen

    @property
    def sample(self) -> Sequence:
        """The current sample (length ``min(capacity, seen)``)."""
        return tuple(self._sample)

    @property
    def is_exhaustive(self) -> bool:
        """True when the reservoir holds *every* value seen so far."""
        return self.seen <= self.capacity

    def scale_factor(self) -> float:
        """Multiplier mapping sample frequencies to population frequencies."""
        if not self._sample:
            return 0.0
        return self.seen / len(self._sample)
