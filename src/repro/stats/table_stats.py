"""Catalog statistics for base tables.

A :class:`TableStats` is what the system catalog stores per table: row and
page counts, average row width and per-column :class:`ColumnStats` (min/max,
distinct count, optional histogram).  These are the *estimates* a
conventional optimizer works from — the paper's point is precisely that they
go stale, miss correlations and lack histograms for some attributes.

The staleness knobs (:meth:`TableStats.scaled_rows`,
:meth:`TableStats.without_histograms`, :meth:`TableStats.mark_updated`)
let experiments inject the same error sources the paper lists (out-of-date
histograms, missing histograms, significant update activity) in a controlled
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from ..storage.schema import DataType, Schema
from ..storage.table import Table
from .distinct import ExactDistinct
from .histogram import Histogram, HistogramKind, build_histogram


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column of one (base or intermediate) relation."""

    name: str
    dtype: DataType
    count: float
    distinct: float
    min_value: float | None = None
    max_value: float | None = None
    histogram: Histogram | None = None
    is_key: bool = False
    #: True when the stats were *observed* at run time rather than estimated.
    observed: bool = False

    @property
    def has_histogram(self) -> bool:
        """Whether a histogram is available for this column."""
        return self.histogram is not None and not self.histogram.is_empty

    def renamed(self, name: str) -> "ColumnStats":
        """Return a copy with a different (qualified) name."""
        return replace(self, name=name)


@dataclass(frozen=True)
class TableStats:
    """Catalog statistics for a whole table."""

    table_name: str
    row_count: float
    page_count: float
    avg_row_bytes: float
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)
    #: Models the paper's "significant update activity since statistics were
    #: last collected" flag, which bumps every inaccuracy potential one level.
    significant_update_activity: bool = False

    def column(self, name: str) -> ColumnStats | None:
        """Stats for a column by its base name (None when unknown)."""
        return self.columns.get(name)

    # -- staleness knobs -------------------------------------------------

    def scaled_rows(self, factor: float) -> "TableStats":
        """Pretend the table had ``factor`` times the rows it really has.

        Simulates out-of-date catalogs (the table grew or shrank since the
        last ANALYZE).  Column counts scale with the table.
        """
        columns = {
            name: replace(cs, count=cs.count * factor)
            for name, cs in self.columns.items()
        }
        return replace(
            self,
            row_count=self.row_count * factor,
            page_count=max(1.0, self.page_count * factor),
            columns=columns,
        )

    def without_histograms(self, column_names: Iterable[str] | None = None) -> "TableStats":
        """Drop histograms (all, or just the named columns).

        Models attributes for which no histogram exists — the paper's *high*
        inaccuracy-potential case.
        """
        targets = set(column_names) if column_names is not None else None
        columns = {}
        for name, cs in self.columns.items():
            if targets is None or name in targets:
                columns[name] = replace(cs, histogram=None)
            else:
                columns[name] = cs
        return replace(self, columns=columns)

    def mark_updated(self) -> "TableStats":
        """Flag significant update activity since statistics collection."""
        return replace(self, significant_update_activity=True)


def compute_column_stats(
    table: Table,
    column_name: str,
    histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
    num_buckets: int = 32,
    is_key: bool = False,
) -> ColumnStats:
    """Compute full statistics for one column by scanning the table."""
    schema = table.schema
    col = schema.column(column_name)
    position = schema.index_of(column_name)
    values = [row[position] for row in table.rows]
    counter = ExactDistinct()
    counter.extend(values)
    distinct = counter.estimate()
    if col.dtype.is_numeric and values:
        numeric = [float(v) for v in values]
        min_value: float | None = min(numeric)
        max_value: float | None = max(numeric)
        histogram = (
            build_histogram(numeric, kind=histogram_kind, num_buckets=num_buckets)
            if histogram_kind is not None
            else None
        )
    else:
        min_value = None
        max_value = None
        histogram = None
    return ColumnStats(
        name=col.base_name,
        dtype=col.dtype,
        count=float(len(values)),
        distinct=distinct,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
        is_key=is_key,
    )


def compute_table_stats(
    table: Table,
    histogram_kind: HistogramKind | None = HistogramKind.MAXDIFF,
    num_buckets: int = 32,
    key_columns: Sequence[str] = (),
    histogram_columns: Sequence[str] | None = None,
) -> TableStats:
    """Compute catalog statistics for a table (ANALYZE equivalent).

    ``histogram_columns`` restricts which columns get histograms (None means
    every numeric column); ``key_columns`` marks unique-key columns, which
    the inaccuracy-potential rules treat specially for equi-joins.
    """
    keys = set(key_columns)
    allowed = set(histogram_columns) if histogram_columns is not None else None
    columns: dict[str, ColumnStats] = {}
    for col in table.schema:
        base = col.base_name
        kind = histogram_kind
        if allowed is not None and base not in allowed:
            kind = None
        columns[base] = compute_column_stats(
            table,
            col.name,
            histogram_kind=kind,
            num_buckets=num_buckets,
            is_key=base in keys,
        )
    return TableStats(
        table_name=table.name,
        row_count=float(table.row_count),
        page_count=float(table.page_count),
        avg_row_bytes=float(table.schema.row_bytes),
        columns=columns,
    )


def schema_only_stats(table: Table, assumed_rows: float = 1000.0) -> TableStats:
    """Fallback statistics when a table was never analysed.

    Uses the real page geometry but an assumed row count and no per-column
    information — the optimizer then falls back to magic selectivities, which
    is exactly the situation run-time statistics correct.
    """
    schema: Schema = table.schema
    return TableStats(
        table_name=table.name,
        row_count=assumed_rows,
        page_count=float(max(1, schema.page_count(int(assumed_rows), table.page_size))),
        avg_row_bytes=float(schema.row_bytes),
        columns={},
    )
