"""The Memory Manager.

Divides a query's workspace memory budget among its memory-consuming
operators (hybrid hash joins, sorts, hash aggregates, block NL joins) based
on the min/max demands the optimizer annotated — the design of Paradise's
memory module ([15], paper section 3.1).

Grants are **max-or-min**: walking the operators in execution order, an
operator receives its maximum demand if that still leaves every later
operator its minimum; otherwise it receives exactly its minimum.  A second
pass upgrades min-granted operators to their maximum where leftover budget
allows.  This reproduces the paper's Figure 3 narrative exactly: with an
8 MB budget, the first join gets its 4.2 MB maximum, the second join gets
its 250 KB minimum (forcing a two-pass execution), and the leftover reaches
the aggregate.

Dynamic re-allocation (paper section 2.3) re-invokes :meth:`allocate` with
improved demands for the operators that have not started, pinning the grants
of operators already mid-execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..errors import MemoryGrantError
from ..plans.physical import PlanNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..observe.trace import QueryTracer


@dataclass(frozen=True)
class MemoryDemand:
    """One operator's memory requirements, in pages."""

    node_id: int
    label: str
    min_pages: int
    max_pages: int

    def __post_init__(self) -> None:
        if self.min_pages < 0 or self.max_pages < self.min_pages:
            raise MemoryGrantError(
                f"invalid demand for {self.label}: min={self.min_pages}, "
                f"max={self.max_pages}"
            )


def execution_order(plan: PlanNode) -> list[PlanNode]:
    """Nodes in the order their execution begins (post-order; build first)."""
    ordered: list[PlanNode] = []

    def visit(node: PlanNode) -> None:
        for child in node.children:
            visit(child)
        ordered.append(node)

    visit(plan)
    return ordered


def memory_demands(plan: PlanNode) -> list[MemoryDemand]:
    """Demands of all memory-consuming operators, in execution order."""
    demands = []
    for node in execution_order(plan):
        if node.est.max_memory_pages > 0:
            demands.append(
                MemoryDemand(
                    node_id=node.node_id,
                    label=node.label,
                    min_pages=node.est.min_memory_pages,
                    max_pages=node.est.max_memory_pages,
                )
            )
    return demands


class MemoryManager:
    """Allocates the per-query memory budget across operators.

    The budget is *adjustable*: the cross-session memory broker
    (:mod:`repro.engine.server`) may :meth:`resize` it mid-query when other
    queries release (or demand) workspace pages.  A resize takes effect at
    the next :meth:`allocate` call — in practice the next dynamic
    re-allocation the controller performs on a collector completion — so
    cross-query pressure feeds the paper's memory re-allocation trigger
    without touching grants already promised (:attr:`reserved_pages` is the
    floor a shrink can never go below).
    """

    def __init__(self, budget_pages: int) -> None:
        if budget_pages <= 0:
            raise MemoryGrantError(f"memory budget must be positive, got {budget_pages}")
        self.budget_pages = budget_pages
        #: Pages promised by the most recent :meth:`allocate` call (sum of
        #: all grants).  The broker treats everything above this as
        #: reclaimable headroom; nothing below it may ever be taken back.
        self.reserved_pages = 0

    def resize(self, budget_pages: int) -> int:
        """Adjust the budget (broker re-grant/reclaim); returns the value set.

        Shrinks are floored at :attr:`reserved_pages` — pages already
        promised to operators stay promised (paper section 2.3: a started
        operator's grant cannot change; here the same guarantee extends to
        every grant the manager has issued).
        """
        new_budget = max(budget_pages, self.reserved_pages, 1)
        self.budget_pages = new_budget
        return new_budget

    def allocate(
        self,
        plan: PlanNode,
        fixed: Mapping[int, int] | None = None,
        floors: Mapping[int, int] | None = None,
        tracer: "QueryTracer | None" = None,
        reason: str = "initial",
    ) -> dict[int, int]:
        """Compute grants for every memory-consuming operator of ``plan``.

        ``fixed`` pins grants for operators already executing (dynamic
        re-allocation must not change them, paper section 2.3); their pages
        are subtracted from the budget before the rest is divided.

        ``floors`` gives per-operator lower bounds: during dynamic
        re-allocation an operator's grant is never reduced below what it was
        already promised, even when improved estimates shrink (or blow up)
        its demands — shrinking a promised grant would trade a known-good
        plan for an estimated one.

        ``tracer``/``reason`` record the resulting grant map as a trace
        event (``reason`` distinguishes the initial allocation from dynamic
        re-allocations and switch-plan allocations).
        """
        fixed = dict(fixed or {})
        floors = dict(floors or {})
        demands = memory_demands(plan)
        grants: dict[int, int] = {}
        open_demands: list[MemoryDemand] = []
        budget = self.budget_pages
        for demand in demands:
            if demand.node_id in fixed:
                grants[demand.node_id] = fixed[demand.node_id]
                budget -= fixed[demand.node_id]
                continue
            floor = floors.get(demand.node_id, 0)
            if floor > demand.min_pages:
                demand = MemoryDemand(
                    node_id=demand.node_id,
                    label=demand.label,
                    min_pages=floor,
                    max_pages=max(demand.max_pages, floor),
                )
            open_demands.append(demand)
        minimum_total = sum(d.min_pages for d in open_demands)
        if budget < minimum_total:
            raise MemoryGrantError(
                f"budget of {budget} pages cannot satisfy minimum demands "
                f"totalling {minimum_total} pages"
            )
        self._grant_max_or_min(open_demands, budget, grants)
        self.reserved_pages = sum(grants.values())
        if tracer is not None:
            tracer.instant(
                "memory-allocate",
                "memory",
                reason=reason,
                budget_pages=self.budget_pages,
                pinned=len(fixed),
                grants={str(node_id): pages for node_id, pages in sorted(grants.items())},
            )
        return grants

    @staticmethod
    def split_grant(pages: int, partitions: int) -> list[int]:
        """Divide a grant of ``pages`` across ``partitions`` consumers.

        Used by the morsel-parallel executor to bound per-worker staging
        memory and by the cross-session memory broker to compute per-session
        fair shares: shares differ by at most one page and sum exactly to
        the grant, with earlier partitions receiving the remainder pages.

        Degenerate splits follow a **floor-zero contract**, the same one
        :meth:`spill_windows` exposes: ``pages <= 0`` yields all-zero shares
        (never an error), and ``partitions > pages`` yields trailing
        zero-page shares — the sum stays exact and no share is ever
        invented.  Callers that cannot tolerate a zero share (the staging
        windows' anti-deadlock floor, the broker's one-page session
        guarantee) must apply their floor explicitly on top.
        """
        if partitions <= 0:
            raise MemoryGrantError(
                f"cannot split a grant across {partitions} partitions"
            )
        base, extra = divmod(max(0, pages), partitions)
        return [base + 1 if i < extra else base for i in range(partitions)]

    @staticmethod
    def _result_windows(
        free_pages: int, partitions: int, morsel_pages: int, cap: int, floor: int
    ) -> list[int]:
        """Shared share→window arithmetic for the two window helpers.

        Each partition's :meth:`split_grant` share of ``free_pages`` is
        converted into a count of morsel results, clamped to
        ``[min(floor, cap), cap]`` — the floor never outranks the cap, so a
        caller asking for at most zero windows gets zero even when its
        declared floor is one.
        """
        shares = MemoryManager.split_grant(free_pages, partitions)
        low = min(floor, cap)
        return [
            max(low, min(share // max(1, morsel_pages), cap)) for share in shares
        ]

    @staticmethod
    def staging_windows(
        free_pages: int, partitions: int, morsel_pages: int, cap: int
    ) -> list[int]:
        """Per-partition staging windows for the morsel-parallel executor.

        Each partition worker's :meth:`split_grant` share of the workspace
        pages the operator allocation left free is converted into a count
        of unmerged morsel results it may hold — at least one (a tight
        budget degrades throughput instead of deadlocking) and at most
        ``cap`` (the merge point must not hoard results).
        """
        return MemoryManager._result_windows(
            free_pages, partitions, morsel_pages, cap, floor=1
        )

    @staticmethod
    def spill_windows(
        free_pages: int, partitions: int, morsel_pages: int, cap: int
    ) -> list[int]:
        """Per-partition read-back budgets for spilled morsel results.

        With partitioned spill on, a worker whose staging window is
        exhausted writes results to its per-partition spill file — keyed
        by the stable range-affine partition id — instead of blocking.
        This arbitrates the second half of that bargain: how many spilled
        results each partition's read-ahead may stage back into parent
        memory beyond its staging window.  Shares come from the same
        :meth:`split_grant` arithmetic under its floor-zero contract: a
        zero share yields zero windows (spilled payloads then stay on disk
        until the merge point reaches them), and windows are capped at
        ``cap``.
        """
        return MemoryManager._result_windows(
            free_pages, partitions, morsel_pages, cap, floor=0
        )

    @staticmethod
    def _grant_max_or_min(
        demands: Sequence[MemoryDemand], budget: int, grants: dict[int, int]
    ) -> None:
        remaining = budget
        min_granted: list[MemoryDemand] = []
        for i, demand in enumerate(demands):
            reserve = sum(d.min_pages for d in demands[i + 1 :])
            if remaining - reserve >= demand.max_pages:
                grants[demand.node_id] = demand.max_pages
                remaining -= demand.max_pages
            else:
                grants[demand.node_id] = demand.min_pages
                remaining -= demand.min_pages
                min_granted.append(demand)
        # Second pass: all-or-nothing upgrades in execution order.
        for demand in min_granted:
            upgrade = demand.max_pages - demand.min_pages
            if upgrade <= remaining:
                grants[demand.node_id] = demand.max_pages
                remaining -= upgrade
