"""Pipeline segmentation.

Paradise's scheduler partitions a plan into *segments* — maximal sets of
operators that execute in a pipelined fashion — and dispatches them one
after another (paper section 3.1).  A segment boundary is a *blocking input
edge*: the build side of a hash join, the inner of a block NL join, and the
inputs of sort and hash aggregation.

Segmentation matters to Dynamic Re-Optimization because statistics gathered
inside a pipeline only become available when the whole pipeline drains
(paper section 2.2's pipelining limitation).  The SCIA therefore places
collectors immediately below blocking input edges, and the re-optimization
points are exactly the segment completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plans.physical import (
    BlockNLJoinNode,
    DistinctNode,
    HashAggregateNode,
    HashJoinNode,
    PlanNode,
    SortNode,
)


def blocking_input_edges(plan: PlanNode) -> list[tuple[PlanNode, int]]:
    """All ``(parent, child_index)`` edges whose child is consumed fully first."""
    edges: list[tuple[PlanNode, int]] = []
    for node in plan.walk():
        if isinstance(node, HashJoinNode):
            edges.append((node, 0))  # build side
        elif isinstance(node, BlockNLJoinNode):
            edges.append((node, 1))  # inner side
        elif isinstance(node, (HashAggregateNode, SortNode, DistinctNode)):
            edges.append((node, 0))
    return edges


@dataclass
class Segment:
    """One pipeline: nodes that run concurrently, bottom node last."""

    nodes: list[PlanNode] = field(default_factory=list)

    @property
    def node_ids(self) -> list[int]:
        """Ids of the member nodes."""
        return [n.node_id for n in self.nodes]

    @property
    def top(self) -> PlanNode:
        """The consumer end of the pipeline."""
        return self.nodes[0]


def segments(plan: PlanNode) -> list[Segment]:
    """Partition a plan into pipeline segments, in completion order.

    Segments are returned so that a segment appears after every segment it
    depends on (its blocking inputs) — the order Paradise's dispatcher would
    run them in.
    """
    blocking = {
        (parent.node_id, index) for parent, index in blocking_input_edges(plan)
    }
    ordered: list[Segment] = []

    def build(node: PlanNode, segment: Segment) -> None:
        segment.nodes.append(node)
        for index, child in enumerate(node.children):
            if (node.node_id, index) in blocking:
                child_segment = Segment()
                build(child, child_segment)
                ordered.append(child_segment)
            else:
                build(child, segment)

    root_segment = Segment()
    build(plan, root_segment)
    ordered.append(root_segment)
    return ordered


def segment_of(plan: PlanNode, node_id: int) -> Segment | None:
    """The segment containing ``node_id`` (None when the node is absent)."""
    for segment in segments(plan):
        if node_id in segment.node_ids:
            return segment
    return None
