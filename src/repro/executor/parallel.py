"""Morsel-driven parallel execution of leaf pipelines.

``execution_mode="parallel"`` keeps the whole engine on the batch path and
adds one thing: a *leaf pipeline* — a base-table sequential scan plus its
stack of streaming operators (filters, projections, optionally the
SCIA-placed statistics collector at the top) — is split into fixed-size
page-range **morsels** and fanned across a fork-based worker pool
(Leis et al.'s morsel-driven parallelism, adapted to a Python engine where
processes, not threads, are the unit of CPU parallelism).

Workers are forked, so they inherit the loaded catalog and the precompiled
batch kernels copy-on-write; a task ships only three integers (morsel
index, page-group range) and the result ships back the compact surviving
row batches, per-stage output counts and a mergeable statistics partial
(:class:`~repro.executor.collector.CollectorPartial`).

Determinism contract — the whole point of the design:

* **Rows**: morsel results are merged strictly in morsel order, and within
  a morsel in page-group order, where a *page group* is exactly the run of
  pages the serial batch scan would have accumulated into one batch.  The
  merged stream is therefore byte-identical to the serial batch stream,
  batch boundaries included.
* **Simulated cost**: workers never touch the parent's cost clock or
  buffer pool.  The parent *replays* each page group's charges (buffer
  access + per-page CPU) at the moment it merges that group, and the
  streaming operators' end-of-stream totals are charged from exact integer
  row counts — so the float accumulation order of every cost bucket is
  identical to serial execution, making ``CostBreakdown`` bit-for-bit
  equal, not just close.
* **Statistics**: counts, min/max and distinct sketches merge losslessly
  (sums, order-free folds, bitmap OR).  Reservoir samples are the one
  RNG-dependent statistic: with ``parallel_stats="exact"`` (default) the
  parent replays the serial sampling RNG over the merged output rows in
  morsel order — bit-identical histograms, so re-optimization decisions
  cannot diverge from the batch path; with ``"merge"`` each morsel samples
  under an index-derived seed and samples merge weighted, which is
  schedule-independent (1, 2 or 7 workers agree) but not serial-identical.

Worker-side hash partitioning and partial pre-aggregation were considered
and deliberately excluded: float SUM/AVG is non-associative, so regrouping
additions across workers would break byte-identical results on TPC-D's
float measures (see ROADMAP open items for the integer-aggregate variant).

Platforms without ``fork`` (or a single-worker configuration) execute the
same morsel loop in-process — identical results and charges, no speedup —
with a one-time warning when parallelism had been requested.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator

from ..config import EngineConfig
from ..plans.physical import (
    FilterNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    StatsCollectorNode,
)
from ..stats.distinct import _mix64
from ..storage.table import Row, Table
from .collector import CollectorPartial, RuntimeCollector
from .memory import MemoryManager
from .runtime import RuntimeContext
from .vector import compile_batch_filter, compile_batch_projector

#: Salt mixed with the engine seed and morsel index for merge-mode
#: reservoir seeds, keeping them disjoint from every other RNG stream.
_MORSEL_SEED_SALT = 0x9E3779B97F4A7C15

#: Cap on staged (completed but unmerged) morsels per worker, whatever the
#: memory budget allows — keeps the merge point from hoarding results.
_MAX_STAGED_PER_WORKER = 4


@dataclass
class _Stage:
    """One streaming operator of a leaf pipeline, ready for a worker."""

    kind: str  # "filter" | "project" | "collect"
    node: PlanNode
    fn: Callable[[list], list] | None


@dataclass
class _WorkerState:
    """Everything a forked worker reads; inherited copy-on-write."""

    rows: list[Row]
    rows_per_page: int
    groups: list[tuple[int, int]]
    stages: list[_Stage]
    config: EngineConfig
    exact_stats: bool


#: The pipeline being executed, published for forked workers.  Set by the
#: parent immediately before creating a pool (workers fork at first submit
#: and inherit it); one pipeline runs at a time, so a single slot suffices.
_WORKER_STATE: _WorkerState | None = None


def _morsel_seed(seed: int, morsel_index: int) -> int:
    """Deterministic per-morsel RNG seed, independent of worker scheduling."""
    return _mix64(seed ^ (_MORSEL_SEED_SALT * (morsel_index + 1)))


def _fork_available() -> bool:
    """Whether fork-based pools exist on this platform (Linux/macOS: yes)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_init() -> None:
    """Forked-worker initializer: keep GC off the inherited heap.

    A forked worker inherits the parent's multi-million-object heap.  Any
    generational collection inside the worker traces all of it and — worse
    — dirties its copy-on-write pages, which measures an order of magnitude
    slower than the morsel work itself.  Freezing moves the inherited
    objects into the permanent generation and disabling the collector
    leaves reclamation to reference counting; workers are short-lived and
    the batch kernels allocate no reference cycles.
    """
    gc.freeze()
    gc.disable()


def _run_morsel(
    index: int, first_group: int, last_group: int
) -> tuple[int, list[list[Row]], list[tuple[int, ...]], CollectorPartial | None, float, int]:
    """Execute the published pipeline over one morsel of page groups.

    Runs inside a forked worker (or inline on the serial fallback path).
    Returns per-group output batches and per-stage output counts aligned
    with the group range, plus the collector partial for the whole morsel.
    """
    state = _WORKER_STATE
    started = time.perf_counter()
    rows = state.rows
    per_page = state.rows_per_page
    collector: RuntimeCollector | None = None
    for stage in state.stages:
        if stage.kind == "collect":
            collector = RuntimeCollector(
                stage.node,
                stage.node.child.schema,
                state.config,
                collect_reservoirs=not state.exact_stats,
                reservoir_seed=(
                    None
                    if state.exact_stats
                    else _morsel_seed(state.config.seed, index)
                ),
            )
    batches: list[list[Row]] = []
    counts: list[tuple[int, ...]] = []
    for first_page, last_page in state.groups[first_group:last_group]:
        out: list[Row] = rows[first_page * per_page : last_page * per_page]
        group_counts = []
        for stage in state.stages:
            if stage.kind == "collect":
                collector.observe_batch(out)
            else:
                out = stage.fn(out)
            group_counts.append(len(out))
        batches.append(out)
        counts.append(tuple(group_counts))
    partial = collector.export_partial() if collector is not None else None
    return index, batches, counts, partial, time.perf_counter() - started, os.getpid()


def _page_groups(table: Table, batch_size: int) -> list[tuple[int, int]]:
    """Page ranges matching the serial batch scan's yield boundaries.

    The serial scan accumulates whole pages until at least ``batch_size``
    rows are buffered, then yields; replicating those run boundaries here
    is what lets the merged parallel stream reproduce the serial batch
    structure (and charge interleaving) exactly.
    """
    per_page = table.rows_per_page
    total_rows = table.row_count
    groups: list[tuple[int, int]] = []
    start = 0
    buffered = 0
    for page_no in range(table.page_count):
        buffered += min(per_page, total_rows - page_no * per_page)
        if buffered >= batch_size:
            groups.append((start, page_no + 1))
            start = page_no + 1
            buffered = 0
    if buffered:
        groups.append((start, table.page_count))
    return groups


def _group_morsels(
    groups: list[tuple[int, int]], morsel_pages: int
) -> list[tuple[int, int]]:
    """Partition page groups into morsels of roughly ``morsel_pages`` pages.

    Morsel boundaries always coincide with group boundaries so a worker
    produces whole serial batches; each morsel is the shortest run of
    groups spanning at least ``morsel_pages`` pages (the final one takes
    the remainder).  Returned as ``(first_group, last_group)`` ranges.
    """
    morsels: list[tuple[int, int]] = []
    start = 0
    for i in range(len(groups)):
        if groups[i][1] - groups[start][0] >= morsel_pages:
            morsels.append((start, i + 1))
            start = i + 1
    if start < len(groups):
        morsels.append((start, len(groups)))
    return morsels


def _staging_window(ctx: RuntimeContext, workers: int, morsel_pages: int) -> int:
    """How many morsels may be in flight (executing or staged) at once.

    The Memory Manager's operator grants come first: each worker receives
    an equal :meth:`~repro.executor.memory.MemoryManager.split_grant` share
    of whatever workspace pages the allocation left free, and may hold at
    most that many pages of unmerged results (at least one morsel, at most
    ``_MAX_STAGED_PER_WORKER``, so a tight budget degrades throughput
    instead of failing).
    """
    budget = ctx.memory_budget_pages or ctx.config.query_memory_pages
    staging = max(0, budget - sum(ctx.allocation.values()))
    smallest_share = MemoryManager.split_grant(staging, workers)[-1]
    per_worker = max(1, min(smallest_share // max(1, morsel_pages), _MAX_STAGED_PER_WORKER))
    return workers * per_worker


def morsel_pipeline(node: PlanNode, ctx: RuntimeContext) -> Iterator[list[Row]] | None:
    """A morsel-parallel batch iterator for ``node``, or None to stay serial.

    A subtree qualifies when it is a leaf pipeline — an optional statistics
    collector over a chain of filters/projections over a base-table
    sequential scan, with at least one compute stage to fan out — and the
    table is large enough to split into ``parallel_min_morsels`` morsels.
    Everything else (joins, blocking operators, index scans, LIMIT subtrees,
    small tables) executes on the serial batch path unchanged.
    """
    config = ctx.config
    top_down: list[PlanNode] = []
    cur = node
    if isinstance(cur, StatsCollectorNode):
        top_down.append(cur)
        cur = cur.child
    while isinstance(cur, (FilterNode, ProjectNode)):
        top_down.append(cur)
        cur = cur.child
    if not isinstance(cur, SeqScanNode):
        return None
    if not any(isinstance(s, (FilterNode, ProjectNode)) for s in top_down):
        return None
    table = ctx.catalog.table(cur.table_name)
    groups = _page_groups(table, ctx.batch_size)
    morsels = _group_morsels(groups, config.morsel_pages)
    if len(morsels) < config.parallel_min_morsels:
        return None
    return _execute_morsels(ctx, list(reversed(top_down)), cur, table, groups, morsels)


def _results_in_order(
    state: _WorkerState,
    morsels: list[tuple[int, int]],
    workers: int,
    use_pool: bool,
    window: int,
):
    """Yield morsel results strictly in morsel order.

    Owns the worker pool: ``_WORKER_STATE`` is published before the pool
    exists (forked children inherit it), submissions run ahead through a
    sliding window of ``window`` futures, and results are consumed oldest
    first — out-of-order completions simply wait in their future.  The
    ``finally`` tears the pool down even when the consumer abandons the
    stream mid-way (e.g. a mid-query plan switch unwinding).
    """
    global _WORKER_STATE
    previous = _WORKER_STATE
    _WORKER_STATE = state
    try:
        if not use_pool:
            for index, (first, last) in enumerate(morsels):
                yield _run_morsel(index, first, last)
            return
        context = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=context, initializer=_worker_init
        )
        try:
            pending: deque = deque()
            next_submit = 0
            while next_submit < len(morsels) and len(pending) < window:
                first, last = morsels[next_submit]
                pending.append(pool.submit(_run_morsel, next_submit, first, last))
                next_submit += 1
            while pending:
                result = pending.popleft().result()
                while next_submit < len(morsels) and len(pending) < window:
                    first, last = morsels[next_submit]
                    pending.append(pool.submit(_run_morsel, next_submit, first, last))
                    next_submit += 1
                yield result
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    finally:
        _WORKER_STATE = previous


def _execute_morsels(
    ctx: RuntimeContext,
    nodes_bottom_up: list[PlanNode],
    scan: SeqScanNode,
    table: Table,
    groups: list[tuple[int, int]],
    morsels: list[tuple[int, int]],
) -> Iterator[list[Row]]:
    """The merging parent: run morsels, emit the serial-identical stream."""
    config = ctx.config
    params = ctx.cost_model.params
    exact_stats = config.parallel_stats == "exact"

    # Compile every stage kernel under the same cache keys the serial batch
    # operators use, *before* forking, so workers inherit the closures and
    # later serial executions of the same plan reuse them.
    stages: list[_Stage] = []
    collector_node: StatsCollectorNode | None = None
    for pnode in nodes_bottom_up:
        if isinstance(pnode, FilterNode):
            fn = pnode.compiled(
                "batch_filter",
                lambda p=pnode: compile_batch_filter(p.predicates, p.child.schema),
            )
            stages.append(_Stage("filter", pnode, fn))
        elif isinstance(pnode, ProjectNode):
            fn = pnode.compiled(
                "batch_project",
                lambda p=pnode: compile_batch_projector(p.output, p.child.schema),
            )
            stages.append(_Stage("project", pnode, fn))
        else:
            collector_node = pnode
            stages.append(_Stage("collect", pnode, None))

    requested = config.parallel_workers or (os.cpu_count() or 1)
    workers = max(1, min(requested, len(morsels)))
    use_pool = workers > 1 and _fork_available()
    if requested > 1 and not _fork_available() and not ctx.parallel.fallback_warned:
        ctx.parallel.fallback_warned = True
        warnings.warn(
            "execution_mode='parallel' requires fork-based multiprocessing; "
            "running morsels serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
    if not use_pool:
        workers = 1

    merged: RuntimeCollector | None = None
    if collector_node is not None:
        merged = RuntimeCollector(collector_node, collector_node.child.schema, config)

    # Bookkeeping mirrors the serial generators: started on first pull,
    # per-stage consumed/produced totals for the end-of-stream charges.
    ctx.mark_started(scan)
    for pnode in nodes_bottom_up:
        ctx.mark_started(pnode)
    telemetry = ctx.parallel
    telemetry.pipelines += 1
    telemetry.workers = max(telemetry.workers, workers)

    state = _WorkerState(
        rows=table.rows,
        rows_per_page=table.rows_per_page,
        groups=groups,
        stages=stages,
        config=config,
        exact_stats=exact_stats,
    )
    window = _staging_window(ctx, workers, config.morsel_pages)

    access = ctx.buffer_pool.access
    charge_cpu = ctx.clock.charge_cpu
    cpu_per_tuple = params.cpu_per_tuple
    table_id = table.table_id
    per_page = table.rows_per_page
    total_rows = table.row_count

    scan_rows = 0
    stage_rows = [0] * len(stages)
    try:
        results = _results_in_order(state, morsels, workers, use_pool, window)
        for index, batches, counts, partial, elapsed, pid in results:
            first_group, last_group = morsels[index]
            telemetry.morsels += 1
            telemetry.worker_seconds[pid] = (
                telemetry.worker_seconds.get(pid, 0.0) + elapsed
            )
            for offset, group_index in enumerate(range(first_group, last_group)):
                first_page, last_page = groups[group_index]
                # Replay the scan's charges for this page group exactly as
                # the serial scan interleaves them with its yields.
                for page_no in range(first_page, last_page):
                    access(table_id, page_no, sequential=True)
                    page_rows = min(per_page, total_rows - page_no * per_page)
                    charge_cpu(page_rows * cpu_per_tuple)
                    scan_rows += page_rows
                for position, produced in enumerate(counts[offset]):
                    stage_rows[position] += produced
                batch = batches[offset]
                if merged is not None and exact_stats:
                    merged.replay_reservoirs(batch)
                if batch:
                    yield batch
            if merged is not None and partial is not None:
                merged.absorb_partial(partial)
    finally:
        # The serial streaming operators charge their totals in `finally`
        # blocks that fire bottom-up at end of stream (or early close);
        # replicate both the formulas and the firing order.
        consumed = scan_rows
        for position, stage in enumerate(stages):
            if stage.kind == "filter":
                per_row = (
                    max(1, len(stage.node.predicates)) * params.cpu_per_compare
                )
                ctx.clock.charge_cpu(consumed * per_row)
            elif stage.kind == "project":
                ctx.clock.charge_cpu(consumed * params.cpu_per_tuple)
            consumed = stage_rows[position]

    # Everything past this point only happens on a full drain, matching the
    # serial collector's after-loop (not `finally`) semantics.
    if merged is not None:
        per_row = (
            params.cpu_stats_per_tuple
            + collector_node.spec.statistic_count * params.cpu_stats_per_statistic
        )
        ctx.clock.charge_stats_cpu(merged.row_count * per_row)
        observed = merged.finalize()
        ctx.observed[collector_node.node_id] = observed
        if ctx.controller is not None:
            ctx.controller.on_collector_complete(collector_node, observed)
    ctx.mark_completed(scan, scan_rows)
    for position, pnode in enumerate(nodes_bottom_up):
        ctx.mark_completed(pnode, stage_rows[position])
