"""Morsel-driven parallel execution of leaf and probe-side join pipelines.

``execution_mode="parallel"`` keeps the whole engine on the batch path and
adds one thing: a *pipeline* — a chain of streaming operators over a
base-table sequential scan — is split into fixed-size page-range **morsels**
and fanned across fork-based worker processes (Leis et al.'s morsel-driven
parallelism, adapted to a Python engine where processes, not threads, are
the unit of CPU parallelism).  Three pipeline shapes qualify:

* **Leaf pipelines** — filters/projections (optionally a SCIA-placed
  statistics collector at the top) over a sequential scan.
* **Probe-side hash-join pipelines** — once a hash join's build side is
  materialised (a blocking point the re-optimizer already respects, and the
  window in which pending plan switches are claimed), workers are forked
  and inherit the completed read-only hash table copy-on-write; the probe
  child's page groups are replayed as morsels and each worker runs the
  probe lookup (plus any residual predicates) as the pipeline's top stage,
  shipping back joined rows.
* **Pre-aggregating pipelines** — when a hash aggregate's input pipeline is
  leaf-extractable and every aggregate merges exactly (COUNT/MIN/MAX, and
  SUM only over integer inputs, where addition is associative down to the
  bit), each worker folds its morsel into per-group
  :class:`~repro.executor.iterators._AggState` partials and ships those
  tiny partials instead of the surviving rows.

Workers are forked, so they inherit the loaded catalog, the precompiled
batch kernels and (for probe pipelines) the hash table copy-on-write; a
worker's assignment is **range-affine**: the morsel list is cut into one
contiguous page range per worker, so copy-on-write first-touch faults cover
disjoint heap slices, and each worker owns a stable partition id — the same
identity a hybrid-hash spill file would carry.  Results stream back over a
per-partition pipe; with ``parallel_prefetch`` on, a per-partition
read-ahead thread in the parent stages (unpickles) the next partition's
results while the merge loop is still replaying the current partition's
simulated I/O — overlapping real deserialisation work with the charge
replay exactly the way a spill reader would prefetch the next partition.
A per-partition semaphore window (sized from the workspace pages the
Memory Manager's allocation left free) bounds how far a worker may run
ahead of the merge point.

Determinism contract — the whole point of the design:

* **Rows**: morsel results are merged strictly in morsel order (partitions
  are consumed in partition order, which *is* morsel order, because the
  assignment is range-affine), and within a morsel in page-group order,
  where a *page group* is exactly the run of pages the serial batch scan
  would have accumulated into one batch.  The merged stream is therefore
  byte-identical to the serial batch stream, batch boundaries included —
  for probe pipelines the serial stream in question is the hash join's
  probe loop, whose per-input-batch output batches the probe stage
  reproduces exactly.
* **Simulated cost**: workers never touch the parent's cost clock or
  buffer pool.  The parent *replays* each page group's charges (buffer
  access + per-page CPU) at the moment it merges that group, and the
  streaming operators' end-of-stream totals — the hash join's probe charge
  included — are charged from exact integer row counts in the serial
  firing order, so every cost bucket's float accumulation order is
  identical to serial execution, making ``CostBreakdown`` bit-for-bit
  equal, not just close.
* **Statistics**: counts, min/max and distinct sketches merge losslessly
  (sums, order-free folds, bitmap OR).  Reservoir samples are the one
  RNG-dependent statistic: with ``parallel_stats="exact"`` (default) the
  parent replays the serial sampling RNG over the collector's input values
  in morsel order — from the merged output rows when the collector tops
  the pipeline, from shipped per-morsel value columns when a probe stage
  or pre-aggregation sits above it — bit-identical histograms, so
  re-optimization decisions cannot diverge from the batch path; with
  ``"merge"`` each morsel samples under an index-derived seed and samples
  merge weighted, which is schedule-independent (1, 2 or 7 workers agree)
  but not serial-identical.
* **Aggregates**: worker partials merge in morsel order with
  :meth:`~repro.executor.iterators._AggState.merge`, so first-occurrence
  group order — which fixes the aggregate's output order — matches the
  serial fold.  Float SUM/AVG partial *totals* never merge (float
  addition is non-associative, so regrouping additions across workers
  could change output bytes on TPC-D's float measures); with
  ``vectorized_agg`` those aggregates pre-aggregate anyway by shipping
  per-group ordered value *runs* (:class:`_ValueRun`) — the single
  argument column, not raw rows — which concatenate losslessly in morsel
  order and fold once at the merge point with the exact left-fold kernel
  (:func:`~repro.executor.agg_kernels.left_fold_sum`), bit-identical to
  the serial accumulator.

Platforms without ``fork`` (or a single-worker configuration) execute the
same morsel loop in-process — identical results and charges, no speedup —
with a one-time warning when parallelism had been requested.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import pickle
import shutil
import tempfile
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from operator import itemgetter
from typing import Callable, Iterator

from ..config import EngineConfig
from ..errors import ExecutionError
from ..optimizer.cost_model import pages_for
from ..plans.logical import AggFunc, infer_dtype
from ..plans.physical import (
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    PlanNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
    StatsCollectorNode,
)
from ..stats.distinct import _mix64
from ..storage.columnar import page_groups
from ..storage.schema import DataType
from ..storage.table import Row, Table
from .collector import CollectorPartial, RuntimeCollector
from .agg_kernels import left_fold_sum
from .iterators import _AggState, aggregate_items, hash_join_keys, key_extractor
from .loser_tree import merge_runs, row_comparator
from .memory import MemoryManager
from .runtime import RuntimeContext
from .vector import compile_batch_filter, compile_batch_projector

#: Salt mixed with the engine seed and morsel index for merge-mode
#: reservoir seeds, keeping them disjoint from every other RNG stream.
_MORSEL_SEED_SALT = 0x9E3779B97F4A7C15

#: Cap on staged (completed but unmerged) morsels per worker, whatever the
#: memory budget allows — keeps the merge point from hoarding results.
_MAX_STAGED_PER_WORKER = 4

#: Cap on *spilled* morsel results a partition's read-ahead thread may
#: stage back in parent memory beyond its semaphore window; markers past
#: the cap stay on disk until the merge loop reaches them.
_MAX_SPILL_READAHEAD = 8


@dataclass
class _Stage:
    """One streaming operator of a pipeline, ready for a worker.

    ``kind`` is ``"filter"``/``"project"`` (compiled batch kernels),
    ``"collect"`` (the statistics collector; ``fn`` unused) or ``"probe"``
    (the hash join's probe lookup over the inherited hash table; ``node``
    is the join itself, whose start/complete bookkeeping belongs to the
    enclosing batch executor, not to this pipeline).
    """

    kind: str  # "filter" | "project" | "collect" | "probe"
    node: PlanNode
    fn: Callable[[list], list] | None


@dataclass
class _PreAgg:
    """Worker-side pre-aggregation fold, compiled in the parent.

    ``run_flags`` is aligned with ``agg_items``: True marks aggregates
    folded as :class:`_ValueRun` value runs (float SUM/AVG), False those
    folded as :class:`~repro.executor.iterators._AggState` partials.
    """

    get_key: Callable[[Row], object] | None
    agg_items: tuple
    run_flags: tuple = ()


class _ValueRun:
    """Shipped partial for a float SUM/AVG: one group's non-NULL argument
    values in pipeline row order, plus the all-rows count.

    Float addition is non-associative, so float partial totals must not
    merge — but ordered value runs concatenate losslessly (morsel order =
    serial row order), and one exact left fold at the merge point
    reproduces the serial accumulator bit for bit.  This is not raw-row
    shipping: only the single argument column travels, and the pipeline's
    output rows count as pre-aggregated, never as shipped.
    """

    __slots__ = ("func", "count", "values")

    def __init__(self, func: AggFunc) -> None:
        self.func = func
        self.count = 0
        self.values: list = []

    def fold(self, values: list) -> None:
        """Worker-side fold: count every argument (NULLs included, like
        the serial ``update``), keep the non-NULLs in order."""
        self.count += len(values)
        self.values.extend(v for v in values if v is not None)

    def merge(self, other: "_ValueRun") -> None:
        self.count += other.count
        self.values.extend(other.values)

    def finalize(self) -> _AggState:
        """The serial-identical aggregate state, folded at merge time."""
        state = _AggState(self.func)
        state.count = self.count
        state.total = left_fold_sum(self.values)
        return state


@dataclass
class _ProbeTask:
    """Parent-side bookkeeping for a probe pipeline's end-of-stream charge."""

    node: HashJoinNode
    build_pages: int
    grant: int


@dataclass
class _BuildSpec:
    """Worker-side hash-join build fold, compiled in the parent."""

    get_key: Callable[[Row], object]


@dataclass
class _SortSpec:
    """Worker-side run sort: ``(row position, ascending)`` pairs in
    significance order; workers apply them with the exact serial
    multi-pass stable sort (reverse significance order, stable passes)."""

    keys: tuple[tuple[int, bool], ...]


@dataclass
class _WorkerState:
    """Everything a forked worker reads; inherited copy-on-write."""

    rows: list[Row]
    rows_per_page: int
    groups: list[tuple[int, int]]
    morsels: list[tuple[int, int]]
    stages: list[_Stage]
    config: EngineConfig
    exact_stats: bool
    #: ``(column, position)`` pairs whose collector-input values each morsel
    #: ships for the parent's exact-mode reservoir replay — non-empty only
    #: when the collector's input rows are not shipped as-is (a probe stage,
    #: pre-aggregation, build fold or run sort sits above the collector).
    replay_positions: tuple[tuple[str, int], ...] = ()
    preagg: _PreAgg | None = None
    build: _BuildSpec | None = None
    sort: _SortSpec | None = None
    #: Externally supplied morsel executor (the columnar-morsel path);
    #: closures compiled in the parent reach forked workers copy-on-write.
    runner: Callable[[int], "_MorselResult"] | None = None


@dataclass
class _MorselResult:
    """One morsel's output, shipped from a worker to the merging parent."""

    index: int
    #: Per page group: the pipeline's output batch (``None`` for pre-
    #: aggregated, build-folded and run-sorted morsels, which ship
    #: ``groups_out``/``build_out``/``sort_run`` instead).
    batches: list[list[Row]] | None
    #: Per page group: per-stage output counts, for end-of-stream charges.
    counts: list[tuple[int, ...]]
    partial: CollectorPartial | None
    #: Collector-input values per replay column (exact-mode reservoir
    #: replay when rows are not shipped), concatenated in stream order.
    replay: dict[str, list] | None
    #: Pre-aggregation partials: group key -> per-aggregate states, in
    #: first-occurrence order within the morsel.
    groups_out: dict | None
    shipped_rows: int
    elapsed: float
    pid: int
    #: Build-fold partial: join key -> build rows, keys in first-occurrence
    #: order and rows in scan order within the morsel.
    build_out: dict | None = None
    #: The morsel's pipeline output sorted by the sort keys (the run a
    #: loser-tree merge consumes).
    sort_run: list[Row] | None = None
    #: Per page group: True when the columnar-morsel runner skipped the
    #: group whole via zone maps (charges replayed by the parent).
    group_skips: list[bool] | None = None
    #: Set by the parent when this result came back through a partition
    #: spill file rather than the staging window.
    spilled: bool = False


@dataclass
class _SpillMarker:
    """Shipped instead of a result when the worker spilled it to disk."""

    partition_id: int
    index: int
    offset: int
    length: int


@dataclass
class _WorkerFailure:
    """Shipped (or synthesised) in place of a result when a worker dies."""

    partition_id: int
    message: str
    details: str = ""


#: The pipeline being executed, published for forked workers.  Set by the
#: parent immediately before forking the partition workers (children
#: inherit it); pipelines never overlap — a probe pipeline only starts
#: after the pipelines feeding its build side drained — so one slot
#: suffices, with save/restore for in-process fallback nesting.
_WORKER_STATE: _WorkerState | None = None


def _morsel_seed(seed: int, morsel_index: int) -> int:
    """Deterministic per-morsel RNG seed, independent of worker scheduling."""
    return _mix64(seed ^ (_MORSEL_SEED_SALT * (morsel_index + 1)))


def _fork_available() -> bool:
    """Whether fork-based pools exist on this platform (Linux/macOS: yes)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _worker_init() -> None:
    """Forked-worker initializer: keep GC off the inherited heap.

    A forked worker inherits the parent's multi-million-object heap.  Any
    generational collection inside the worker traces all of it and — worse
    — dirties its copy-on-write pages, which measures an order of magnitude
    slower than the morsel work itself.  Freezing moves the inherited
    objects into the permanent generation and disabling the collector
    leaves reclamation to reference counting; workers are short-lived and
    the batch kernels allocate no reference cycles.
    """
    gc.freeze()
    gc.disable()


def _fold_batch(groups: dict, batch: list[Row], preagg: _PreAgg) -> None:
    """Fold one pipeline-output batch into per-group aggregate states.

    Replicates the serial batch aggregate's inner loop exactly: the batch
    is bucketed by key first (insertion order = first occurrence within the
    batch), then each aggregate folds a whole per-group value run — so
    per-worker partials are the states a serial fold over the same rows
    would have produced.
    """
    get_key = preagg.get_key
    if get_key is None:
        buckets = {(): batch}
    else:
        buckets = {}
        setdefault = buckets.setdefault
        for key, row in zip(map(get_key, batch), batch):
            setdefault(key, []).append(row)
    agg_items = preagg.agg_items
    run_flags = preagg.run_flags
    for key, rows_ in buckets.items():
        states = groups.get(key)
        if states is None:
            states = [
                _ValueRun(func) if run else _AggState(func)
                for (__, func, __unused), run in zip(agg_items, run_flags)
            ]
            groups[key] = states
        for state, (__, __f, arg_fn), run in zip(states, agg_items, run_flags):
            if arg_fn is None:
                state.count += len(rows_)  # COUNT(*): update(1) per row
            elif run:
                state.fold(list(map(arg_fn, rows_)))
            else:
                state.update_batch(list(map(arg_fn, rows_)))


def _run_morsel(index: int) -> _MorselResult:
    """Execute the published pipeline over one morsel of page groups.

    Runs inside a forked worker (or inline on the serial fallback path).
    Returns per-group output batches (or pre-aggregated partials) and
    per-stage output counts, plus the collector partial for the morsel.
    """
    state = _WORKER_STATE
    if state.runner is not None:
        return state.runner(index)
    started = time.perf_counter()
    rows = state.rows
    per_page = state.rows_per_page
    first_group, last_group = state.morsels[index]
    collector: RuntimeCollector | None = None
    for stage in state.stages:
        if stage.kind == "collect":
            collector = RuntimeCollector(
                stage.node,
                stage.node.child.schema,
                state.config,
                collect_reservoirs=not state.exact_stats,
                reservoir_seed=(
                    None
                    if state.exact_stats
                    else _morsel_seed(state.config.seed, index)
                ),
            )
    replay_positions = state.replay_positions
    replay: dict[str, list] | None = (
        {column: [] for column, __ in replay_positions} if replay_positions else None
    )
    preagg = state.preagg
    build = state.build
    sort = state.sort
    folded = preagg is not None or build is not None or sort is not None
    groups_out: dict | None = {} if preagg is not None else None
    build_out: dict | None = {} if build is not None else None
    sort_run: list[Row] | None = [] if sort is not None else None
    batches: list[list[Row]] | None = None if folded else []
    counts: list[tuple[int, ...]] = []
    shipped = 0
    for first_page, last_page in state.groups[first_group:last_group]:
        out: list[Row] = rows[first_page * per_page : last_page * per_page]
        group_counts = []
        for stage in state.stages:
            if stage.kind == "collect":
                collector.observe_batch(out)
                if replay is not None and out:
                    for column, position in replay_positions:
                        replay[column].extend(map(itemgetter(position), out))
            else:
                out = stage.fn(out)
            group_counts.append(len(out))
        counts.append(tuple(group_counts))
        if preagg is not None:
            if out:
                _fold_batch(groups_out, out, preagg)
        elif build is not None:
            if out:
                get_key = build.get_key
                setdefault = build_out.setdefault
                for key, row in zip(map(get_key, out), out):
                    setdefault(key, []).append(row)
                shipped += len(out)
        elif sort is not None:
            sort_run.extend(out)
        else:
            batches.append(out)
            shipped += len(out)
    if sort is not None:
        # The serial sort's exact mechanics: one stable pass per key in
        # reverse significance order (see loser_tree module docstring).
        for position, ascending in reversed(sort.keys):
            sort_run.sort(key=itemgetter(position), reverse=not ascending)
        shipped = len(sort_run)
    partial = collector.export_partial() if collector is not None else None
    return _MorselResult(
        index=index,
        batches=batches,
        counts=counts,
        partial=partial,
        replay=replay,
        groups_out=groups_out,
        shipped_rows=shipped,
        elapsed=time.perf_counter() - started,
        pid=os.getpid(),
        build_out=build_out,
        sort_run=sort_run,
    )


def _page_groups(table: Table, batch_size: int) -> list[tuple[int, int]]:
    """Page ranges matching the serial batch scan's yield boundaries.

    Delegates to the canonical :func:`repro.storage.columnar.page_groups`
    — the columnar store derives its group geometry from the same function,
    so the morsel scheduler and the column arrays can never drift apart.
    """
    return page_groups(table, batch_size)


def _group_morsels(
    groups: list[tuple[int, int]], morsel_pages: int
) -> list[tuple[int, int]]:
    """Partition page groups into morsels of roughly ``morsel_pages`` pages.

    Morsel boundaries always coincide with group boundaries so a worker
    produces whole serial batches; each morsel is the shortest run of
    groups spanning at least ``morsel_pages`` pages (the final one takes
    the remainder).  Returned as ``(first_group, last_group)`` ranges.
    """
    morsels: list[tuple[int, int]] = []
    start = 0
    for i in range(len(groups)):
        if groups[i][1] - groups[start][0] >= morsel_pages:
            morsels.append((start, i + 1))
            start = i + 1
    if start < len(groups):
        morsels.append((start, len(groups)))
    return morsels


def _partition_morsels(
    morsels: list[tuple[int, int]],
    groups: list[tuple[int, int]],
    partitions: int,
) -> list[tuple[int, int]]:
    """Range-affine assignment: one contiguous morsel range per worker.

    Ranges are balanced by page count (each boundary advances while adding
    the next morsel moves the running total closer to the partition's ideal
    share), every partition receives at least one morsel, and the ranges
    concatenate to the full morsel list — so consuming partitions in
    partition order *is* consuming morsels in morsel order.  Contiguity is
    what makes the assignment copy-on-write friendly (each worker's
    first-touch faults cover one disjoint slice of the inherited row heap)
    and gives each worker a stable partition id, the identity a per-worker
    spill file would carry.
    """
    weights = [groups[last - 1][1] - groups[first][0] for first, last in morsels]
    total = sum(weights)
    count = len(morsels)
    bounds: list[tuple[int, int]] = []
    start = 0
    acc = 0
    for partition_id in range(partitions):
        if partition_id == partitions - 1:
            bounds.append((start, count))
            break
        target = total * (partition_id + 1) / partitions
        end = start + 1
        acc += weights[start]
        max_end = count - (partitions - partition_id - 1)
        while end < max_end and abs(acc + weights[end] - target) <= abs(acc - target):
            acc += weights[end]
            end += 1
        bounds.append((start, end))
        start = end
    return bounds


def _staging_windows(
    ctx: RuntimeContext, workers: int, morsel_pages: int
) -> list[int]:
    """Per-worker caps on morsels in flight (executing or staged) at once.

    The Memory Manager's operator grants come first: the workspace pages
    the allocation left free are split across the workers and each share is
    converted into a window of unmerged morsel results (at least one morsel
    so a tight budget degrades throughput instead of deadlocking, at most
    ``_MAX_STAGED_PER_WORKER``).
    """
    budget = ctx.memory_budget_pages or ctx.config.query_memory_pages
    staging = max(0, budget - sum(ctx.allocation.values()))
    return MemoryManager.staging_windows(
        staging, workers, morsel_pages, _MAX_STAGED_PER_WORKER
    )


def _spill_read_windows(
    ctx: RuntimeContext, workers: int, morsel_pages: int
) -> list[int] | None:
    """Per-partition read-back budgets for spilled results, or None when
    ``parallel_spill`` is off.

    Mirrors :func:`_staging_windows` but arbitrates a second concern: how
    many *spilled* results the read-ahead threads may stage back in parent
    memory beyond the semaphore windows.  The split uses the same
    :meth:`MemoryManager.split_grant` shares, so the per-partition budgets
    carry the stable range-affine partition ids.
    """
    if not ctx.config.parallel_spill:
        return None
    budget = ctx.memory_budget_pages or ctx.config.query_memory_pages
    staging = max(0, budget - sum(ctx.allocation.values()))
    return MemoryManager.spill_windows(
        staging, workers, morsel_pages, _MAX_SPILL_READAHEAD
    )


def _extract_chain(
    node: PlanNode,
) -> tuple[list[PlanNode], SeqScanNode] | None:
    """``(top-down chain, scan)`` when ``node`` roots a leaf-extractable
    pipeline — an optional statistics collector over filters/projections
    over a base-table sequential scan — else None."""
    chain: list[PlanNode] = []
    cur = node
    if isinstance(cur, StatsCollectorNode):
        chain.append(cur)
        cur = cur.child
    while isinstance(cur, (FilterNode, ProjectNode)):
        chain.append(cur)
        cur = cur.child
    if not isinstance(cur, SeqScanNode):
        return None
    return chain, cur


def _scan_morsels(
    ctx: RuntimeContext, scan: SeqScanNode
) -> tuple[Table, list[tuple[int, int]], list[tuple[int, int]]] | None:
    """The scan's table, page groups and morsels — None when too small."""
    table = ctx.catalog.table(scan.table_name)
    groups = _page_groups(table, ctx.batch_size)
    morsels = _group_morsels(groups, ctx.config.morsel_pages)
    if len(morsels) < ctx.config.parallel_min_morsels:
        return None
    return table, groups, morsels


def _compile_stages(
    nodes_bottom_up: list[PlanNode],
) -> tuple[list[_Stage], StatsCollectorNode | None]:
    """Compile every stage kernel under the same cache keys the serial
    batch operators use, *before* forking, so workers inherit the closures
    and later serial executions of the same plan reuse them."""
    stages: list[_Stage] = []
    collector_node: StatsCollectorNode | None = None
    for pnode in nodes_bottom_up:
        if isinstance(pnode, FilterNode):
            fn = pnode.compiled(
                "batch_filter",
                lambda p=pnode: compile_batch_filter(p.predicates, p.child.schema),
            )
            stages.append(_Stage("filter", pnode, fn))
        elif isinstance(pnode, ProjectNode):
            fn = pnode.compiled(
                "batch_project",
                lambda p=pnode: compile_batch_projector(p.output, p.child.schema),
            )
            stages.append(_Stage("project", pnode, fn))
        else:
            collector_node = pnode
            stages.append(_Stage("collect", pnode, None))
    return stages, collector_node


def _probe_stage_fn(
    node: HashJoinNode, hash_table: dict
) -> Callable[[list], list]:
    """The probe lookup as a batch stage, mirroring the serial probe loop.

    The key extractor and residual kernel compile in the parent under the
    serial cache keys; the hash table is captured by reference and reaches
    forked workers copy-on-write.
    """
    probe_key = hash_join_keys(node)[1]
    residual_filter = None
    if node.residual:
        residual_filter = node.compiled(
            "batch_residual",
            lambda: compile_batch_filter(node.residual, node.schema),
        )
    get = hash_table.get

    def probe(batch: list[Row]) -> list[Row]:
        out: list[Row] = []
        append = out.append
        extend = out.extend
        for prow, matches in zip(batch, map(get, map(probe_key, batch))):
            if matches is None:
                continue
            if len(matches) == 1:
                append(matches[0] + prow)
            else:
                extend([brow + prow for brow in matches])
        if residual_filter is not None:
            out = residual_filter(out)
        return out

    return probe


def _resolve_workers(ctx: RuntimeContext, morsel_count: int) -> tuple[int, bool]:
    """Effective worker count and whether to fork, with the one-time
    fallback warning when parallelism was requested but fork is missing."""
    requested = ctx.config.parallel_workers or (os.cpu_count() or 1)
    workers = max(1, min(requested, morsel_count))
    use_pool = workers > 1 and _fork_available()
    if requested > 1 and not _fork_available() and not ctx.parallel.fallback_warned:
        ctx.parallel.fallback_warned = True
        warnings.warn(
            "execution_mode='parallel' requires fork-based multiprocessing; "
            "running morsels serially in-process",
            RuntimeWarning,
            stacklevel=2,
        )
    if not use_pool:
        workers = 1
    return workers, use_pool


def morsel_pipeline(node: PlanNode, ctx: RuntimeContext) -> Iterator[list[Row]] | None:
    """A morsel-parallel batch iterator for ``node``, or None to stay serial.

    A subtree qualifies when it is a leaf pipeline — an optional statistics
    collector over a chain of filters/projections over a base-table
    sequential scan, with at least one compute stage to fan out — and the
    table is large enough to split into ``parallel_min_morsels`` morsels.
    Everything else (blocking operators, index scans, LIMIT subtrees, small
    tables) executes on the serial batch path unchanged; hash joins fan out
    their probe side through :func:`morsel_probe_pipeline` instead.
    """
    extracted = _extract_chain(node)
    if extracted is None:
        return None
    chain, scan = extracted
    if not any(isinstance(s, (FilterNode, ProjectNode)) for s in chain):
        return None
    located = _scan_morsels(ctx, scan)
    if located is None:
        return None
    table, groups, morsels = located
    return _execute_morsels(ctx, list(reversed(chain)), scan, table, groups, morsels)


def morsel_probe_pipeline(
    node: HashJoinNode,
    ctx: RuntimeContext,
    hash_table: dict,
    build_pages: int,
    grant: int,
) -> Iterator[list[Row]] | None:
    """A morsel-parallel probe stream for a hash join, or None to stay serial.

    Called by the batch hash join *after* its build side materialised (so
    forked workers inherit the finished hash table copy-on-write) and after
    the plan-switch window — the merged stream is byte-identical to the
    serial probe loop's, so a pending switch materialises the same temp
    table either way.  The probe side qualifies when it is leaf-extractable;
    unlike leaf pipelines a bare sequential scan qualifies too, because the
    probe lookup itself is the compute stage worth fanning out.
    """
    if not ctx.config.parallel_joins:
        return None
    extracted = _extract_chain(node.probe)
    if extracted is None:
        return None
    chain, scan = extracted
    located = _scan_morsels(ctx, scan)
    if located is None:
        return None
    table, groups, morsels = located
    probe = _ProbeTask(node=node, build_pages=build_pages, grant=grant)
    return _execute_morsels(
        ctx,
        list(reversed(chain)),
        scan,
        table,
        groups,
        morsels,
        probe=probe,
        hash_table=hash_table,
    )


def morsel_preaggregate(
    node: HashAggregateNode, ctx: RuntimeContext
) -> tuple[dict, int, int | None] | None:
    """Run a hash aggregate's input pipeline with worker pre-aggregation.

    Returns ``(groups, input_rows, grant)`` — the merged per-group
    aggregate states in serial first-occurrence order, the pipeline's
    output row count, and the committed memory grant (None when the
    pipeline produced no rows, matching the serial commit-after-loop
    timing) — or None when the aggregate must stay on the serial fold:
    pre-aggregation disabled, a non-leaf input pipeline, a table too small
    to split, or any aggregate whose partials cannot travel exactly.
    With ``vectorized_agg`` float SUM/AVG pre-aggregate as ordered value
    runs (:class:`_ValueRun`); with it off they disqualify the aggregate
    (partial float totals never merge), as before this knob existed.
    """
    if not ctx.config.parallel_preagg:
        return None
    extracted = _extract_chain(node.child)
    if extracted is None:
        return None
    preagg = _preagg_spec(node, ctx.config.vectorized_agg)
    if preagg is None:
        return None
    chain, scan = extracted
    located = _scan_morsels(ctx, scan)
    if located is None:
        return None
    table, groups, morsels = located
    return _run_preagg(
        ctx, node, list(reversed(chain)), scan, table, groups, morsels, preagg
    )


def _preagg_spec(node: HashAggregateNode, vectorized: bool) -> _PreAgg | None:
    """The pre-aggregation fold when every aggregate can travel exactly.

    COUNT partials are integer sums; MIN/MAX merge by (strict) comparison,
    which keeps the earlier occurrence exactly like the serial fold; SUM
    merges by addition, which is only associative — bit-for-bit — for
    integers, so state merging is gated on the argument's inferred dtype.
    With ``vectorized`` (the ``vectorized_agg`` knob) float SUM/AVG ship
    ordered value runs instead of totals and integer AVG merges its exact
    integer total and count; with it off both disqualify the whole
    aggregate, preserving the pre-knob gate.  Non-numeric SUM/AVG
    arguments always stay on the serial fold.
    """
    child_schema = node.child.schema
    group_positions, agg_items, __ = aggregate_items(node)
    run_flags = []
    for out_index, func, __arg in agg_items:
        if func is AggFunc.COUNT or func in (AggFunc.MIN, AggFunc.MAX):
            run_flags.append(False)
            continue
        expr = node.output[out_index].expr
        dtype = (
            infer_dtype(expr.arg, child_schema)
            if expr.arg is not None
            else None
        )
        if func is AggFunc.SUM and dtype is DataType.INTEGER:
            run_flags.append(False)
            continue
        if vectorized and dtype in (DataType.INTEGER, DataType.FLOAT):
            # Integer AVG partials (total, count) merge exactly; float
            # SUM/AVG ship value runs folded once at the merge point.
            run_flags.append(dtype is DataType.FLOAT)
            continue
        return None
    get_key = key_extractor(group_positions) if group_positions else None
    return _PreAgg(
        get_key=get_key, agg_items=agg_items, run_flags=tuple(run_flags)
    )


# ----------------------------------------------------------------------
# The range-affine scheduler: partition workers, prefetch, ordered merge
# ----------------------------------------------------------------------


def _partition_worker(partition_id, first, last, conn, sem, spill_path=None) -> None:
    """One forked worker: execute a contiguous morsel range, in order.

    The semaphore is the staging window — the parent releases one permit
    per merged morsel, so the worker never runs more than the window ahead
    of the merge point.  With ``spill_path`` set (``parallel_spill``), a
    worker that finds its window exhausted does not block: it appends the
    pickled result to its per-partition spill file — the file carries the
    stable range-affine partition id — and ships a tiny
    :class:`_SpillMarker` instead, so the partition keeps computing while
    the merge point is busy replaying earlier partitions.  A ``None``
    sentinel marks successful completion; failures ship as
    :class:`_WorkerFailure` so the parent can raise.
    """
    _worker_init()
    spill_file = None
    spill_offset = 0
    try:
        for index in range(first, last):
            if sem.acquire(block=spill_path is None):
                conn.send(_run_morsel(index))
                continue
            result = _run_morsel(index)
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            if spill_file is None:
                spill_file = open(spill_path, "wb", buffering=0)
            spill_file.write(payload)
            conn.send(
                _SpillMarker(partition_id, index, spill_offset, len(payload))
            )
            spill_offset += len(payload)
        conn.send(None)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send(
                _WorkerFailure(partition_id, repr(exc), traceback.format_exc())
            )
        except (BrokenPipeError, OSError):  # parent already gone
            pass
    finally:
        if spill_file is not None:
            spill_file.close()
        conn.close()


class _Partition:
    """Parent-side handle for one range-affine partition worker."""

    def __init__(
        self,
        partition_id,
        first,
        last,
        process,
        conn,
        sem,
        spill_path=None,
        stage_cap=0,
    ) -> None:
        self.partition_id = partition_id
        self.first = first
        self.last = last
        self.process = process
        self.conn = conn
        self.sem = sem
        self.spill_path = spill_path
        #: Staged-item cap for the read-ahead thread: the semaphore window
        #: plus this partition's :meth:`MemoryManager.spill_windows` share.
        #: Markers past the cap stay unresolved (their payload stays on
        #: disk) until the merge loop reaches them.
        self.stage_cap = stage_cap
        self._spill_file = None
        self._spill_lock = threading.Lock()
        self._staged: deque = deque()
        self._cond = threading.Condition()
        self._reader: threading.Thread | None = None

    def _resolve_spill(self, marker: _SpillMarker) -> _MorselResult:
        """Read one spilled result back from this partition's file.

        Serialised: the read-ahead thread (resolving under the stage cap)
        and the merge loop (resolving a marker it popped past the cap)
        share one seekable handle.
        """
        with self._spill_lock:
            if self._spill_file is None:
                self._spill_file = open(self.spill_path, "rb")
            self._spill_file.seek(marker.offset)
            payload = self._spill_file.read(marker.length)
        result = pickle.loads(payload)
        result.spilled = True
        return result

    def start_reader(self) -> None:
        """Start the async read-ahead thread (``parallel_prefetch``).

        The thread stages — i.e. actually unpickles — this partition's
        results as soon as the worker sends them, so by the time the merge
        loop reaches this partition its next result is usually already in
        parent memory: deserialisation overlaps the simulated-I/O replay
        of earlier partitions the way a spill reader prefetches the next
        partition file.  The semaphore window bounds the staged backlog.
        """
        self._reader = threading.Thread(
            target=self._read_ahead,
            name=f"morsel-prefetch-{self.partition_id}",
            daemon=True,
        )
        self._reader.start()

    def _read_ahead(self) -> None:
        try:
            while True:
                item = self._recv(resolve=False)
                if (
                    isinstance(item, _SpillMarker)
                    and len(self._staged) < self.stage_cap
                ):
                    # Under the spill-stage budget: pay the file read and
                    # unpickle now, overlapping the merge loop's charge
                    # replay the way the pipe prefetch does.
                    item = self._resolve_spill(item)
                with self._cond:
                    self._staged.append(item)
                    self._cond.notify()
                if item is None or isinstance(item, _WorkerFailure):
                    return
        except Exception:  # noqa: BLE001 - surfaced to the merge loop
            with self._cond:
                self._staged.append(
                    _WorkerFailure(
                        self.partition_id,
                        "prefetch reader failed",
                        traceback.format_exc(),
                    )
                )
                self._cond.notify()

    def _recv(self, resolve=True):
        """Next item from the worker, or a failure if it died silently."""
        while True:
            ready = mp_connection.wait([self.conn, self.process.sentinel])
            if self.conn in ready:
                try:
                    item = self.conn.recv()
                except (EOFError, OSError):
                    return _WorkerFailure(
                        self.partition_id, "worker closed its pipe unexpectedly"
                    )
                if resolve and isinstance(item, _SpillMarker):
                    item = self._resolve_spill(item)
                return item
            if self.conn.poll(0):  # raced: data arrived as the worker exited
                continue
            return _WorkerFailure(
                self.partition_id,
                f"worker exited with code {self.process.exitcode}",
            )

    def next_result(self):
        """This partition's next item, and whether it was already staged."""
        if self._reader is None:
            return self._recv(), False
        with self._cond:
            prefetched = bool(self._staged)
            while not self._staged:
                self._cond.wait()
            item = self._staged.popleft()
        if isinstance(item, _SpillMarker):  # past the read-ahead stage cap
            item = self._resolve_spill(item)
            prefetched = False
        return item, prefetched

    def close(self) -> None:
        """Tear the partition down, whether drained or abandoned."""
        if self.process.is_alive():
            self.process.terminate()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._spill_file is not None:
            self._spill_file.close()
        self.process.join(timeout=5.0)
        if self._reader is not None:
            self._reader.join(timeout=5.0)


def _merged_results(
    state: _WorkerState,
    workers: int,
    use_pool: bool,
    windows: list[int],
    prefetch: bool,
    telemetry,
    spill_windows: list[int] | None = None,
) -> Iterator[_MorselResult]:
    """Yield morsel results strictly in morsel order.

    Owns the worker processes: ``_WORKER_STATE`` is published before the
    partition workers fork (children inherit it), each worker computes its
    contiguous morsel range bounded by its semaphore window, and the parent
    consumes partitions in partition order — which is morsel order, because
    the assignment is range-affine.  With ``spill_windows`` set
    (``parallel_spill``), workers whose window is exhausted spill results
    to per-partition files instead of blocking; spilled results are read
    back — still strictly in morsel order — when the merge point reaches
    them, so spilling is invisible to everything but wall-clock and the
    spill telemetry.  The ``finally`` tears everything down even when the
    consumer abandons the stream mid-way.
    """
    global _WORKER_STATE
    previous = _WORKER_STATE
    _WORKER_STATE = state
    try:
        if not use_pool:
            for index in range(len(state.morsels)):
                yield _run_morsel(index)
            return
        bounds = _partition_morsels(state.morsels, state.groups, workers)
        context = multiprocessing.get_context("fork")
        partitions: list[_Partition] = []
        spill_dir = None
        if spill_windows is not None:
            spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
        try:
            for partition_id, (first, last) in enumerate(bounds):
                sem = context.Semaphore(windows[partition_id])
                recv_conn, send_conn = context.Pipe(duplex=False)
                spill_path = None
                stage_cap = 0
                if spill_dir is not None:
                    spill_path = os.path.join(
                        spill_dir, f"part-{partition_id}.spill"
                    )
                    stage_cap = (
                        windows[partition_id] + spill_windows[partition_id]
                    )
                process = context.Process(
                    target=_partition_worker,
                    args=(partition_id, first, last, send_conn, sem, spill_path),
                    daemon=True,
                )
                process.start()
                send_conn.close()
                partitions.append(
                    _Partition(
                        partition_id, first, last, process, recv_conn, sem,
                        spill_path=spill_path, stage_cap=stage_cap,
                    )
                )
            if prefetch:
                for partition in partitions:
                    partition.start_reader()
            spilled_partitions: set[int] = set()
            for partition in partitions:
                for __ in range(partition.first, partition.last):
                    item, prefetched = partition.next_result()
                    if item is None or isinstance(item, _WorkerFailure):
                        failure = item or _WorkerFailure(
                            partition.partition_id, "worker ended early"
                        )
                        raise ExecutionError(
                            f"parallel worker for partition {failure.partition_id} "
                            f"failed: {failure.message}\n{failure.details}"
                        )
                    if prefetched:
                        telemetry.prefetched_morsels += 1
                    if item.spilled:
                        # The worker never acquired a permit for a spilled
                        # result, so no release; count it instead.
                        telemetry.rows_spilled += item.shipped_rows
                        telemetry.morsels_spilled += 1
                        if partition.partition_id not in spilled_partitions:
                            spilled_partitions.add(partition.partition_id)
                            telemetry.partitions_spilled += 1
                    else:
                        partition.sem.release()
                    yield item
        finally:
            for partition in partitions:
                partition.close()
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)
    finally:
        _WORKER_STATE = previous


# ----------------------------------------------------------------------
# The merging parents
# ----------------------------------------------------------------------


def _replay_scan_charges(ctx, table, groups, first_group, last_group):
    """Replay one morsel's scan charges exactly as the serial scan
    interleaves them with its yields; returns rows scanned per group."""
    access = ctx.buffer_pool.access
    charge_cpu = ctx.clock.charge_cpu
    cpu_per_tuple = ctx.cost_model.params.cpu_per_tuple
    table_id = table.table_id
    per_page = table.rows_per_page
    total_rows = table.row_count
    group_rows = []
    for group_index in range(first_group, last_group):
        first_page, last_page = groups[group_index]
        scanned = 0
        for page_no in range(first_page, last_page):
            access(table_id, page_no, sequential=True)
            page_rows = min(per_page, total_rows - page_no * per_page)
            charge_cpu(page_rows * cpu_per_tuple)
            scanned += page_rows
        group_rows.append(scanned)
    return group_rows


def _charge_streaming_stages(ctx, stages, scan_rows, stage_rows) -> None:
    """End-of-stream charges for filters/projections, in serial firing
    order (bottom-up) and from exact integer row counts."""
    params = ctx.cost_model.params
    consumed = scan_rows
    for position, stage in enumerate(stages):
        if stage.kind == "filter":
            per_row = max(1, len(stage.node.predicates)) * params.cpu_per_compare
            ctx.clock.charge_cpu(consumed * per_row)
        elif stage.kind == "project":
            ctx.clock.charge_cpu(consumed * params.cpu_per_tuple)
        consumed = stage_rows[position]


def _charge_probe(ctx, probe: _ProbeTask, probe_rows: int, output_rows: int) -> None:
    """The hash join's probe-phase charge, identical to the serial
    ``finally`` formula (exact integer row counts in, one charge out)."""
    probe_pages = pages_for(
        probe_rows, probe.node.probe.schema.row_bytes, ctx.catalog.page_size
    )
    ctx.charge(
        ctx.cost_model.hash_join_probe(
            build_pages=probe.build_pages,
            probe_rows=probe_rows,
            probe_pages=probe_pages,
            output_rows=output_rows,
            memory_pages=probe.grant,
        )
    )


def _finalize_collector(ctx, collector_node, merged) -> None:
    """The collector's after-loop semantics: stats CPU charge, finalize,
    publish, and the controller hook that may arm a plan switch."""
    params = ctx.cost_model.params
    per_row = (
        params.cpu_stats_per_tuple
        + collector_node.spec.statistic_count * params.cpu_stats_per_statistic
    )
    ctx.clock.charge_stats_cpu(merged.row_count * per_row)
    observed = merged.finalize()
    ctx.observed[collector_node.node_id] = observed
    if ctx.tracer is not None:
        ctx.tracer.instant(
            "collector-complete", "stats",
            node_id=collector_node.node_id, observed=observed.describe(),
        )
    if ctx.controller is not None:
        ctx.controller.on_collector_complete(collector_node, observed)


def _pipeline_setup(
    ctx,
    nodes_bottom_up,
    morsels,
    probe=None,
    hash_table=None,
    preagg=False,
    build=False,
    sort=False,
):
    """Shared pipeline preparation: stages, workers, collector, telemetry."""
    config = ctx.config
    exact_stats = config.parallel_stats == "exact"
    stages, collector_node = _compile_stages(nodes_bottom_up)
    probe_position = None
    if probe is not None:
        stages.append(
            _Stage("probe", probe.node, _probe_stage_fn(probe.node, hash_table))
        )
        probe_position = len(stages) - 1
    workers, use_pool = _resolve_workers(ctx, len(morsels))
    merged: RuntimeCollector | None = None
    if collector_node is not None:
        merged = RuntimeCollector(collector_node, collector_node.child.schema, config)
    # Exact-mode reservoirs replay from the shipped rows when the collector
    # tops the pipeline; when a probe stage, pre-aggregation, build fold or
    # run sort sits above it, the shipped rows (or partials) are not the
    # collector's input *in input order*, so workers ship the reservoir
    # columns' values separately.
    rows_are_collector_input = (
        collector_node is not None
        and probe is None
        and not preagg
        and not build
        and not sort
        and isinstance(nodes_bottom_up[-1], StatsCollectorNode)
    )
    replay_positions: tuple[tuple[str, int], ...] = ()
    if exact_stats and collector_node is not None and not rows_are_collector_input:
        schema = collector_node.child.schema
        replay_positions = tuple(
            (column, schema.index_of(column))
            for column in collector_node.spec.histogram_columns
        )
    telemetry = ctx.parallel
    telemetry.pipelines += 1
    pipeline_id = telemetry.pipelines
    telemetry.workers = max(telemetry.workers, workers)
    if probe is not None:
        telemetry.join_pipelines += 1
    return (
        stages,
        collector_node,
        merged,
        probe_position,
        workers,
        use_pool,
        exact_stats,
        rows_are_collector_input,
        replay_positions,
        pipeline_id,
    )


def _record_morsel(telemetry, pipeline_id: int, result: _MorselResult) -> None:
    """Wall-clock/shipping telemetry for one merged morsel (observational
    only: never feeds back into simulated costs or statistics)."""
    telemetry.morsels += 1
    per_worker = telemetry.pipeline_worker_seconds.setdefault(pipeline_id, {})
    per_worker[result.pid] = per_worker.get(result.pid, 0.0) + result.elapsed
    telemetry.rows_shipped += result.shipped_rows


def _execute_morsels(
    ctx: RuntimeContext,
    nodes_bottom_up: list[PlanNode],
    scan: SeqScanNode,
    table: Table,
    groups: list[tuple[int, int]],
    morsels: list[tuple[int, int]],
    probe: _ProbeTask | None = None,
    hash_table: dict | None = None,
) -> Iterator[list[Row]]:
    """The merging parent: run morsels, emit the serial-identical stream."""
    config = ctx.config
    (
        stages,
        collector_node,
        merged,
        probe_position,
        workers,
        use_pool,
        exact_stats,
        rows_are_collector_input,
        replay_positions,
        pipeline_id,
    ) = _pipeline_setup(ctx, nodes_bottom_up, morsels, probe, hash_table)

    # Bookkeeping mirrors the serial generators: started on first pull,
    # per-stage consumed/produced totals for the end-of-stream charges.
    # The probe stage's node (the join) is tracked by the enclosing batch
    # executor, not here.
    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"pipeline-{pipeline_id}",
            "pipeline",
            kind="probe" if probe is not None else "leaf",
            workers=workers,
            morsels=len(morsels),
            root=nodes_bottom_up[-1].label if nodes_bottom_up else scan.label,
        )

    ctx.mark_started(scan)
    for pnode in nodes_bottom_up:
        ctx.mark_started(pnode)
    telemetry = ctx.parallel

    state = _WorkerState(
        rows=table.rows,
        rows_per_page=table.rows_per_page,
        groups=groups,
        morsels=morsels,
        stages=stages,
        config=config,
        exact_stats=exact_stats,
        replay_positions=replay_positions,
    )
    windows = _staging_windows(ctx, workers, config.morsel_pages)
    spill_windows = _spill_read_windows(ctx, workers, config.morsel_pages)

    scan_rows = 0
    stage_rows = [0] * len(stages)
    drained = False
    try:
        results = _merged_results(
            state, workers, use_pool, windows, config.parallel_prefetch, telemetry,
            spill_windows=spill_windows,
        )
        for result in results:
            first_group, last_group = morsels[result.index]
            _record_morsel(telemetry, pipeline_id, result)
            if tracer is not None:
                tracer.morsel_merged(
                    pipeline_id, result.index, result.pid,
                    result.elapsed, result.shipped_rows,
                )
            group_rows = _replay_scan_charges(
                ctx, table, groups, first_group, last_group
            )
            for offset in range(last_group - first_group):
                scan_rows += group_rows[offset]
                for position, produced in enumerate(result.counts[offset]):
                    stage_rows[position] += produced
                batch = result.batches[offset]
                if merged is not None and exact_stats and rows_are_collector_input:
                    merged.replay_reservoirs(batch)
                if batch:
                    yield batch
            if merged is not None and result.replay is not None:
                merged.replay_reservoir_values(result.replay)
            if merged is not None and result.partial is not None:
                merged.absorb_partial(result.partial)
        drained = True
    finally:
        # The serial streaming operators charge their totals in `finally`
        # blocks; replicate both the formulas and the firing order.  On a
        # full drain the probe charge fires *after* the collector's
        # after-loop block (below), exactly like the serial nesting.
        if not drained and probe is not None:
            _charge_probe(
                ctx,
                probe,
                stage_rows[probe_position - 1] if probe_position > 0 else scan_rows,
                stage_rows[probe_position],
            )
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)

    # Everything past this point only happens on a full drain, matching the
    # serial collector's after-loop (not `finally`) semantics.
    if merged is not None:
        _finalize_collector(ctx, collector_node, merged)
    if probe is not None:
        _charge_probe(
            ctx,
            probe,
            stage_rows[probe_position - 1] if probe_position > 0 else scan_rows,
            stage_rows[probe_position],
        )
    ctx.mark_completed(scan, scan_rows)
    for position, pnode in enumerate(nodes_bottom_up):
        ctx.mark_completed(pnode, stage_rows[position])
    if tracer is not None:
        tracer.end(span, rows=stage_rows[-1] if stage_rows else scan_rows)


def _run_preagg(
    ctx: RuntimeContext,
    node: HashAggregateNode,
    nodes_bottom_up: list[PlanNode],
    scan: SeqScanNode,
    table: Table,
    groups: list[tuple[int, int]],
    morsels: list[tuple[int, int]],
    preagg: _PreAgg,
) -> tuple[dict, int, int | None]:
    """The merging parent for a pre-aggregating pipeline (always a full
    drain: the aggregate is blocking, so nothing can abandon it early
    short of an error unwinding the whole query)."""
    config = ctx.config
    (
        stages,
        collector_node,
        merged,
        __probe_position,
        workers,
        use_pool,
        exact_stats,
        __rows_are_input,
        replay_positions,
        pipeline_id,
    ) = _pipeline_setup(ctx, nodes_bottom_up, morsels, preagg=True)
    telemetry = ctx.parallel
    telemetry.preagg_pipelines += 1

    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"pipeline-{pipeline_id}",
            "pipeline",
            kind="preagg",
            workers=workers,
            morsels=len(morsels),
            root=node.label,
        )

    ctx.mark_started(scan)
    for pnode in nodes_bottom_up:
        ctx.mark_started(pnode)

    state = _WorkerState(
        rows=table.rows,
        rows_per_page=table.rows_per_page,
        groups=groups,
        morsels=morsels,
        stages=stages,
        config=config,
        exact_stats=exact_stats,
        replay_positions=replay_positions,
        preagg=preagg,
    )
    windows = _staging_windows(ctx, workers, config.morsel_pages)
    spill_windows = _spill_read_windows(ctx, workers, config.morsel_pages)

    merged_groups: dict = {}
    grant: int | None = None
    scan_rows = 0
    stage_rows = [0] * len(stages)
    try:
        results = _merged_results(
            state, workers, use_pool, windows, config.parallel_prefetch, telemetry,
            spill_windows=spill_windows,
        )
        for result in results:
            first_group, last_group = morsels[result.index]
            _record_morsel(telemetry, pipeline_id, result)
            if tracer is not None:
                tracer.morsel_merged(
                    pipeline_id, result.index, result.pid,
                    result.elapsed, result.shipped_rows,
                )
            group_rows = _replay_scan_charges(
                ctx, table, groups, first_group, last_group
            )
            for offset in range(last_group - first_group):
                scan_rows += group_rows[offset]
                for position, produced in enumerate(result.counts[offset]):
                    stage_rows[position] += produced
            # The serial aggregate commits its grant on the first input
            # batch; pin it while merging the first morsel that produced
            # pipeline output — still ahead of the collector-complete hook.
            pipeline_out = stage_rows[-1] if stages else scan_rows
            if grant is None and pipeline_out > 0:
                grant = ctx.commit_memory(node)
            for key, states in result.groups_out.items():
                mine = merged_groups.get(key)
                if mine is None:
                    merged_groups[key] = states
                else:
                    for state_, other in zip(mine, states):
                        state_.merge(other)
            telemetry.groups_shipped += len(result.groups_out)
            if merged is not None and result.replay is not None:
                merged.replay_reservoir_values(result.replay)
            if merged is not None and result.partial is not None:
                merged.absorb_partial(result.partial)
    finally:
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)

    if merged is not None:
        _finalize_collector(ctx, collector_node, merged)
    ctx.mark_completed(scan, scan_rows)
    for position, pnode in enumerate(nodes_bottom_up):
        ctx.mark_completed(pnode, stage_rows[position])
    input_rows = stage_rows[-1] if stages else scan_rows
    telemetry.rows_preaggregated += input_rows
    if any(preagg.run_flags):
        # Value runs are complete (morsel order = serial row order): one
        # exact left fold per run turns them into serial-identical states.
        # Pure compute after all charges — the clock never sees it.
        for states in merged_groups.values():
            for i, state_ in enumerate(states):
                if type(state_) is _ValueRun:
                    states[i] = state_.finalize()
        vec = ctx.vector
        vec.agg_pipelines += 1
        vec.rows_folded += input_rows
        per_node = vec.by_node.setdefault(
            node.node_id, {"kind": "preagg-run", "rows_folded": 0, "groups": 0}
        )
        per_node["rows_folded"] += input_rows
        per_node["groups"] += len(merged_groups)
    if tracer is not None:
        tracer.end(span, rows=input_rows, groups=len(merged_groups))
    return merged_groups, input_rows, grant


def morsel_build_table(
    node: HashJoinNode, ctx: RuntimeContext
) -> tuple[dict, int, int | None] | None:
    """Build a hash join's table with per-worker partition folds, or None.

    Each worker folds its range-affine morsel range into a partial hash
    table (keys in first-occurrence order, rows in scan order); the parent
    merges partials strictly in morsel order, so the merged table's key
    insertion order and within-key row order are exactly what the serial
    build loop's ``setdefault(...).append(...)`` would have produced.  The
    probe phase only ever calls ``hash_table.get``, so the merged table is
    observationally identical to the serial one — probe output, charges
    and buffer stats follow.

    Returns ``(hash_table, build_rows, grant)``; ``grant`` is None when
    the build produced no rows or ``responsive_hash_joins`` defers the
    commit, matching the serial loop's commit timing either way.  Returns
    None to stay serial: knob off, a non-leaf build pipeline (like probe
    pipelines a bare scan qualifies — the build fold is the compute
    stage), or a table too small to split.
    """
    if not ctx.config.parallel_build:
        return None
    extracted = _extract_chain(node.build)
    if extracted is None:
        return None
    chain, scan = extracted
    located = _scan_morsels(ctx, scan)
    if located is None:
        return None
    table, groups, morsels = located
    build = _BuildSpec(get_key=hash_join_keys(node)[0])
    return _run_build(
        ctx, node, list(reversed(chain)), scan, table, groups, morsels, build
    )


def _run_build(
    ctx: RuntimeContext,
    node: HashJoinNode,
    nodes_bottom_up: list[PlanNode],
    scan: SeqScanNode,
    table: Table,
    groups: list[tuple[int, int]],
    morsels: list[tuple[int, int]],
    build: _BuildSpec,
) -> tuple[dict, int, int | None]:
    """The merging parent for a hash-join build pipeline (always a full
    drain: the build side is blocking)."""
    config = ctx.config
    (
        stages,
        collector_node,
        merged,
        __probe_position,
        workers,
        use_pool,
        exact_stats,
        __rows_are_input,
        replay_positions,
        pipeline_id,
    ) = _pipeline_setup(ctx, nodes_bottom_up, morsels, build=True)
    telemetry = ctx.parallel
    telemetry.build_pipelines += 1

    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"pipeline-{pipeline_id}",
            "pipeline",
            kind="build",
            workers=workers,
            morsels=len(morsels),
            root=node.label,
        )

    ctx.mark_started(scan)
    for pnode in nodes_bottom_up:
        ctx.mark_started(pnode)

    state = _WorkerState(
        rows=table.rows,
        rows_per_page=table.rows_per_page,
        groups=groups,
        morsels=morsels,
        stages=stages,
        config=config,
        exact_stats=exact_stats,
        replay_positions=replay_positions,
        build=build,
    )
    windows = _staging_windows(ctx, workers, config.morsel_pages)
    spill_windows = _spill_read_windows(ctx, workers, config.morsel_pages)

    hash_table: dict = {}
    get_bucket = hash_table.get
    grant: int | None = None
    responsive = config.responsive_hash_joins
    scan_rows = 0
    stage_rows = [0] * len(stages)
    try:
        results = _merged_results(
            state, workers, use_pool, windows, config.parallel_prefetch, telemetry,
            spill_windows=spill_windows,
        )
        for result in results:
            first_group, last_group = morsels[result.index]
            _record_morsel(telemetry, pipeline_id, result)
            if tracer is not None:
                tracer.morsel_merged(
                    pipeline_id, result.index, result.pid,
                    result.elapsed, result.shipped_rows,
                )
            group_rows = _replay_scan_charges(
                ctx, table, groups, first_group, last_group
            )
            for offset in range(last_group - first_group):
                scan_rows += group_rows[offset]
                for position, produced in enumerate(result.counts[offset]):
                    stage_rows[position] += produced
            # The serial build commits its grant on the first build batch —
            # unless responsive hash joins defer the commit to after the
            # loop, which the caller's commit-if-None handles.
            pipeline_out = stage_rows[-1] if stages else scan_rows
            if grant is None and not responsive and pipeline_out > 0:
                grant = ctx.commit_memory(node)
            # Morsel-order merge: first-occurrence key order and
            # within-key row order reproduce the serial insertion loop.
            for key, bucket in result.build_out.items():
                mine = get_bucket(key)
                if mine is None:
                    hash_table[key] = bucket
                else:
                    mine.extend(bucket)
            if merged is not None and result.replay is not None:
                merged.replay_reservoir_values(result.replay)
            if merged is not None and result.partial is not None:
                merged.absorb_partial(result.partial)
    finally:
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)

    if merged is not None:
        _finalize_collector(ctx, collector_node, merged)
    ctx.mark_completed(scan, scan_rows)
    for position, pnode in enumerate(nodes_bottom_up):
        ctx.mark_completed(pnode, stage_rows[position])
    build_rows = stage_rows[-1] if stages else scan_rows
    if tracer is not None:
        tracer.end(span, rows=build_rows, keys=len(hash_table))
    return hash_table, build_rows, grant


def morsel_sort(
    node: SortNode, ctx: RuntimeContext
) -> tuple[list[Row], int | None] | None:
    """Sort a leaf-extractable input with per-worker runs, or None.

    Each worker sorts its morsel's pipeline output with the exact serial
    multi-pass stable sort and ships the run; the parent merges the runs
    with a loser tree that breaks full key ties by run (= morsel) index,
    reproducing the serial stable sort's original-position tie-break (see
    :mod:`repro.executor.loser_tree` for the argument).

    Returns ``(sorted rows, grant)``; ``grant`` is None when the input was
    empty, matching the serial commit-after-loop timing.  Returns None to
    stay serial: knob off, a non-leaf input pipeline (the run sort is the
    compute stage, so a bare scan qualifies), or a table too small.
    """
    if not ctx.config.parallel_sort:
        return None
    extracted = _extract_chain(node.child)
    if extracted is None:
        return None
    chain, scan = extracted
    located = _scan_morsels(ctx, scan)
    if located is None:
        return None
    table, groups, morsels = located
    schema = node.schema
    sort = _SortSpec(
        keys=tuple((schema.index_of(key.name), key.ascending) for key in node.keys)
    )
    return _run_sort(
        ctx, node, list(reversed(chain)), scan, table, groups, morsels, sort
    )


def _run_sort(
    ctx: RuntimeContext,
    node: SortNode,
    nodes_bottom_up: list[PlanNode],
    scan: SeqScanNode,
    table: Table,
    groups: list[tuple[int, int]],
    morsels: list[tuple[int, int]],
    sort: _SortSpec,
) -> tuple[list[Row], int | None]:
    """The merging parent for a parallel-sort pipeline (always a full
    drain: the sort is blocking)."""
    config = ctx.config
    (
        stages,
        collector_node,
        merged,
        __probe_position,
        workers,
        use_pool,
        exact_stats,
        __rows_are_input,
        replay_positions,
        pipeline_id,
    ) = _pipeline_setup(ctx, nodes_bottom_up, morsels, sort=True)
    telemetry = ctx.parallel
    telemetry.sort_pipelines += 1

    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"pipeline-{pipeline_id}",
            "pipeline",
            kind="sort",
            workers=workers,
            morsels=len(morsels),
            root=node.label,
        )

    ctx.mark_started(scan)
    for pnode in nodes_bottom_up:
        ctx.mark_started(pnode)

    state = _WorkerState(
        rows=table.rows,
        rows_per_page=table.rows_per_page,
        groups=groups,
        morsels=morsels,
        stages=stages,
        config=config,
        exact_stats=exact_stats,
        replay_positions=replay_positions,
        sort=sort,
    )
    windows = _staging_windows(ctx, workers, config.morsel_pages)
    spill_windows = _spill_read_windows(ctx, workers, config.morsel_pages)

    runs: list[list[Row]] = []
    grant: int | None = None
    scan_rows = 0
    stage_rows = [0] * len(stages)
    try:
        results = _merged_results(
            state, workers, use_pool, windows, config.parallel_prefetch, telemetry,
            spill_windows=spill_windows,
        )
        for result in results:
            first_group, last_group = morsels[result.index]
            _record_morsel(telemetry, pipeline_id, result)
            if tracer is not None:
                tracer.morsel_merged(
                    pipeline_id, result.index, result.pid,
                    result.elapsed, result.shipped_rows,
                )
            group_rows = _replay_scan_charges(
                ctx, table, groups, first_group, last_group
            )
            for offset in range(last_group - first_group):
                scan_rows += group_rows[offset]
                for position, produced in enumerate(result.counts[offset]):
                    stage_rows[position] += produced
            # The serial sort commits its grant on the first input batch;
            # pin it while merging the first morsel with pipeline output.
            pipeline_out = stage_rows[-1] if stages else scan_rows
            if grant is None and pipeline_out > 0:
                grant = ctx.commit_memory(node)
            if result.sort_run:
                runs.append(result.sort_run)
            if merged is not None and result.replay is not None:
                merged.replay_reservoir_values(result.replay)
            if merged is not None and result.partial is not None:
                merged.absorb_partial(result.partial)
    finally:
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)

    if merged is not None:
        _finalize_collector(ctx, collector_node, merged)
    ctx.mark_completed(scan, scan_rows)
    for position, pnode in enumerate(nodes_bottom_up):
        ctx.mark_completed(pnode, stage_rows[position])
    rows = merge_runs(runs, row_comparator(sort.keys))
    telemetry.sort_runs_merged += len(runs)
    if tracer is not None:
        tracer.end(span, rows=len(rows), runs=len(runs))
    return rows, grant
