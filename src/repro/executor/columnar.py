"""Columnar execution of leaf pipelines over page-group column arrays.

``execution_mode="columnar"`` keeps the whole engine on the batch path and
swaps the *inside* of leaf pipelines — a chain of filters/projections
(optionally topped by a statistics collector) over a base-table sequential
scan — for vectorized work over the table's :class:`ColumnStore`: one typed
NumPy array per column per *page group*, where a page group is exactly the
run of pages the serial batch scan yields as one batch.

Per page group the pipeline runs in column space:

* **Masks** — each filter whose predicates have exact NumPy kernels
  (:func:`repro.executor.vector.compile_mask_filter`) evaluates as one
  boolean mask over the group's arrays; masks narrow a selection vector
  stage by stage, so later filters only see surviving rows, like the
  serial short-circuit.
* **Takes** — pure-column projections never touch data at all: they just
  remap which base columns the pipeline's output view reads.
* **Zone-map skipping** — before any array is touched, the *first* mask
  stage's column-vs-constant conjuncts are tested against the group's
  per-column :class:`~repro.storage.columnar.ZoneMap`; a group whose
  min/max proves zero matches is skipped whole.  Skipping is only sound
  from the first mask because every stage below it is count-preserving
  (a take), so all skipped-group stage counts are known exactly.
* **Materialisation** — surviving rows become tuples again at the top of
  the columnar region: when the output view is the identity, the yielded
  batches are slices of the heap's own row tuples; otherwise tuples are
  rebuilt from ``ndarray.tolist()`` values, which round-trip exactly.
  Any stage without a columnar kernel (UDF filters, computed projections,
  the collector) runs above that point as the ordinary compiled batch
  kernel — per-operator fallback, not per-query.

Keyed variants (:func:`columnar_keyed_batches`) additionally read hash-join
probe keys / aggregation group keys straight off the column arrays, so the
consuming operator skips per-row key extraction.

Parity contract: rows, batch boundaries, ``CostBreakdown``, buffer
statistics and observed statistics are byte-identical to the batch path.
Charges are *replayed* — each group's page accesses and per-page CPU at the
moment the group is merged, streaming-stage totals from exact integer row
counts at end of stream — exactly like the morsel-parallel merge parent.
Skipped groups' treatment is governed by ``EngineConfig.zone_map_cost_mode``:

* ``"charge"`` (default) replays a skipped group's scan charges as if its
  pages had been read, so every simulated quantity stays byte-identical to
  the row/batch paths and the zone maps are purely a wall-clock win.
* ``"free"`` charges skipped groups nothing (no buffer access, no CPU, no
  downstream consumed-row charges), modelling storage that can actually
  avoid the I/O — simulated costs then *diverge* from the row path by
  design, and scan/filter actual-row counts reflect only what was read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

try:  # Guarded import: the engine must load without NumPy installed.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

from ..plans.logical import ColumnExpr, CompareOp, Comparison, InPredicate
from ..plans.physical import FilterNode, PlanNode, ProjectNode, SeqScanNode
from ..storage.columnar import ColumnGroup, ZoneMap, numpy_available
from ..storage.table import Table
from .collector import RuntimeCollector
from .parallel import _extract_chain, _finalize_collector
from .runtime import RuntimeContext
from .vector import (
    compile_batch_filter,
    compile_batch_projector,
    compile_mask_conjuncts,
)

Batch = list


@dataclass
class _ColumnarStage:
    """One pipeline stage, classified for columnar execution.

    ``kind`` is ``"mask"`` (NumPy mask filter; ``fn`` is the per-conjunct
    kernel list from :func:`compile_mask_conjuncts`), ``"take"`` (pure-column
    projection — a view remap, no runtime work), ``"batch_filter"`` /
    ``"batch_project"`` (tuple-space fallback kernels above the columnar
    region) or ``"collect"`` (the statistics collector).
    """

    kind: str
    node: PlanNode
    fn: object | None


@dataclass
class _Prepared:
    """A leaf pipeline compiled for columnar execution."""

    nodes_bottom_up: list[PlanNode]
    scan: SeqScanNode
    table: Table
    stages: list[_ColumnarStage]
    #: Number of leading stages that run in column space (masks/takes).
    split: int
    #: Output view at the top of the columnar region: schema position ->
    #: base column index.
    out_view: tuple[int, ...]
    #: Whether the output view is the identity over the full base schema
    #: (yield heap-row slices instead of rebuilding tuples).
    identity: bool
    #: Index (into ``stages``) of the first mask stage, or None.
    first_mask: int | None
    #: Zone-map skip conditions derived from the first mask stage:
    #: ``(base column, check(zone) -> bool)`` pairs; any True skips.
    conditions: tuple = ()


# ----------------------------------------------------------------------
# Pipeline compilation
# ----------------------------------------------------------------------


def _compile_stages(
    nodes_bottom_up: list[PlanNode], scan: SeqScanNode
) -> tuple[list[_ColumnarStage], tuple[int, ...], int]:
    """Split the chain into a columnar region and a batch-kernel tail.

    Walks bottom-up maintaining the *view* (schema position -> base column
    index).  Filters with full mask kernels and pure-column projections
    extend the region; the first stage without a columnar form ends it, and
    that stage plus everything above compiles as the ordinary serial batch
    kernels (under the serial cache keys, so closures are shared with
    batch-mode executions of the same plan).
    """
    view = list(range(len(scan.schema)))
    stages: list[_ColumnarStage] = []
    split = 0
    for node in nodes_bottom_up[:]:
        if isinstance(node, FilterNode):
            view_t = tuple(view)
            fns = node.compiled(
                "mask_filter",
                lambda n=node, v=view_t: compile_mask_conjuncts(
                    n.predicates, n.child.schema, v.__getitem__
                ),
            )
            if fns is None:
                break
            stages.append(_ColumnarStage("mask", node, fns))
        elif isinstance(node, ProjectNode):
            if not all(isinstance(item.expr, ColumnExpr) for item in node.output):
                break
            child_schema = node.child.schema
            view = [
                view[child_schema.index_of(item.expr.name)] for item in node.output
            ]
            stages.append(_ColumnarStage("take", node, None))
        else:
            break
        split += 1
    for node in nodes_bottom_up[split:]:
        if isinstance(node, FilterNode):
            fn = node.compiled(
                "batch_filter",
                lambda n=node: compile_batch_filter(n.predicates, n.child.schema),
            )
            stages.append(_ColumnarStage("batch_filter", node, fn))
        elif isinstance(node, ProjectNode):
            fn = node.compiled(
                "batch_project",
                lambda n=node: compile_batch_projector(n.output, n.child.schema),
            )
            stages.append(_ColumnarStage("batch_project", node, fn))
        else:  # StatsCollectorNode (the only other chain member)
            stages.append(_ColumnarStage("collect", node, None))
    return stages, tuple(view), split


def _comparison_check(op: CompareOp, value: object):
    """``check(zone) -> True`` when no value in [min, max] can satisfy
    ``column <op> value``.  Conservative: groups containing NULLs never
    skip (the serial path would raise on a NULL comparison, and skipping
    must not change behaviour), and incomparable types never skip."""

    def check(zone: ZoneMap) -> bool:
        if zone.null_count or zone.min_value is None:
            return False
        mn, mx = zone.min_value, zone.max_value
        try:
            if op is CompareOp.EQ:
                return value < mn or value > mx
            if op is CompareOp.LT:
                return mn >= value
            if op is CompareOp.LE:
                return mn > value
            if op is CompareOp.GT:
                return mx <= value
            if op is CompareOp.GE:
                return mx < value
            return mn == mx == value  # NE
        except TypeError:
            return False

    return check


def _in_check(values: tuple):
    def check(zone: ZoneMap) -> bool:
        if zone.null_count or zone.min_value is None:
            return False
        mn, mx = zone.min_value, zone.max_value
        try:
            return all(v < mn or v > mx for v in values)
        except TypeError:
            return False

    return check


def _zone_conditions(node: FilterNode, view: Sequence[int]) -> tuple:
    """Skip conditions provable from zone maps for one filter's conjuncts.

    Only column-vs-constant comparisons and column IN-lists yield
    conditions; any *one* disproved conjunct disproves the conjunction, so
    other conjunct shapes simply contribute nothing.
    """
    conditions = []
    schema = node.child.schema
    for pred in node.predicates:
        if isinstance(pred, Comparison):
            normalized = pred.normalized()
            pair = normalized.column_and_constant()
            if pair is not None:
                column, value = pair
                conditions.append(
                    (view[schema.index_of(column)],
                     _comparison_check(normalized.op, value))
                )
        elif isinstance(pred, InPredicate) and isinstance(pred.expr, ColumnExpr):
            conditions.append(
                (view[schema.index_of(pred.expr.name)],
                 _in_check(tuple(pred.values)))
            )
    return tuple(conditions)


def _prepare(node: PlanNode, ctx: RuntimeContext) -> _Prepared | None:
    """Compile ``node`` as a columnar leaf pipeline, or None to stay serial."""
    if not numpy_available():
        return None
    extracted = _extract_chain(node)
    if extracted is None:
        return None
    chain, scan = extracted
    table = ctx.catalog.table(scan.table_name)
    nodes_bottom_up = list(reversed(chain))
    stages, out_view, split = _compile_stages(nodes_bottom_up, scan)
    first_mask = next(
        (i for i, stage in enumerate(stages[:split]) if stage.kind == "mask"),
        None,
    )
    conditions: tuple = ()
    if first_mask is not None:
        # Every stage below the first mask is a take (count-preserving), so
        # a proven-empty group's per-stage counts are all known: group rows
        # below the mask, zero at and above it.  That is what makes a skip
        # charge-safe.
        view_below = list(range(len(scan.schema)))
        for stage in stages[:first_mask]:
            child_schema = stage.node.child.schema
            view_below = [
                view_below[child_schema.index_of(item.expr.name)]
                for item in stage.node.output
            ]
        conditions = _zone_conditions(stages[first_mask].node, view_below)
    identity = out_view == tuple(range(len(table.schema)))
    return _Prepared(
        nodes_bottom_up=nodes_bottom_up,
        scan=scan,
        table=table,
        stages=stages,
        split=split,
        out_view=out_view,
        identity=identity,
        first_mask=first_mask,
        conditions=conditions,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def columnar_pipeline(
    node: PlanNode, ctx: RuntimeContext
) -> Iterator[Batch] | None:
    """A columnar batch iterator for ``node``, or None to stay serial.

    A subtree qualifies when it is a leaf pipeline with at least one mask
    stage — without one, the columnar path would merely re-materialise the
    heap rows the batch scan already yields.  Bookkeeping (mark started /
    completed, charges, collector finalisation) is internal, mirroring the
    morsel-parallel merge parent.
    """
    prepared = _prepare(node, ctx)
    if prepared is None or prepared.first_mask is None:
        return None
    return _strip_keys(_run_pipeline(ctx, prepared, None))


def columnar_keyed_batches(
    node: PlanNode, ctx: RuntimeContext, key_positions: Sequence[int]
) -> Iterator[tuple[Batch, list]] | None:
    """A columnar ``(batch, keys)`` iterator for a keyed consumer, or None.

    ``key_positions`` index ``node``'s output schema; the yielded ``keys``
    list is aligned with the batch and holds exactly what the consumer's
    ``key_extractor`` would have produced (scalars for one position, tuples
    otherwise) — read off the column arrays instead of row by row.  Unlike
    plain pipelines a bare scan qualifies (the key extraction is the win),
    but the whole chain must run in column space: above a fallback batch
    kernel the arrays no longer describe the stream.
    """
    prepared = _prepare(node, ctx)
    if prepared is None or prepared.split != len(prepared.stages):
        return None
    return _run_pipeline(ctx, prepared, tuple(key_positions))


def _strip_keys(gen: Iterator[tuple[Batch, list]]) -> Iterator[Batch]:
    for batch, __keys in gen:
        yield batch


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _replay_group_charges(ctx: RuntimeContext, table: Table, group: ColumnGroup):
    """One group's scan charges, exactly as the serial scan interleaves
    them ahead of the batch yield: a sequential buffer access plus per-page
    tuple CPU for every page of the group."""
    access = ctx.buffer_pool.access
    charge_cpu = ctx.clock.charge_cpu
    cpu_per_tuple = ctx.cost_model.params.cpu_per_tuple
    table_id = table.table_id
    per_page = table.rows_per_page
    total_rows = table.row_count
    for page_no in range(group.first_page, group.last_page):
        access(table_id, page_no, sequential=True)
        charge_cpu(min(per_page, total_rows - page_no * per_page) * cpu_per_tuple)


def _charge_streaming_stages(ctx, stages, scan_rows, stage_rows) -> None:
    """End-of-stream charges for every filter/projection, in serial firing
    order (bottom-up) from exact integer row counts — same formulas and
    ordering as the serial generators' ``finally`` blocks."""
    params = ctx.cost_model.params
    consumed = scan_rows
    for position, stage in enumerate(stages):
        if stage.kind in ("mask", "batch_filter"):
            per_row = max(1, len(stage.node.predicates)) * params.cpu_per_compare
            ctx.clock.charge_cpu(consumed * per_row)
        elif stage.kind in ("take", "batch_project"):
            ctx.clock.charge_cpu(consumed * params.cpu_per_tuple)
        consumed = stage_rows[position]


def _zone_skips(conditions: tuple, group: ColumnGroup) -> bool:
    zones = group.zones
    for position, check in conditions:
        if check(zones[position]):
            return True
    return False


def _run_pipeline(
    ctx: RuntimeContext, prep: _Prepared, key_positions: tuple[int, ...] | None
) -> Iterator[tuple[Batch, list | None]]:
    """The columnar pipeline body: per group, zone-check then mask/take in
    column space, materialise, run fallback kernels, yield."""
    config = ctx.config
    table = prep.table
    store = table.column_store(ctx.batch_size, config.columnar_dictionary_max)
    scan = prep.scan
    stages = prep.stages
    split = prep.split
    charge_skipped = config.zone_map_cost_mode == "charge"
    conditions = prep.conditions if config.zone_map_skipping else ()
    first_mask = prep.first_mask if conditions else None

    telemetry = ctx.columnar
    telemetry.pipelines += 1
    pipeline_id = telemetry.pipelines
    if key_positions is not None:
        telemetry.keyed_pipelines += 1

    collector: RuntimeCollector | None = None
    collector_node = None
    for stage in stages:
        if stage.kind == "collect":
            collector_node = stage.node
            collector = RuntimeCollector(
                collector_node, collector_node.child.schema, config
            )

    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"columnar-pipeline-{pipeline_id}",
            "pipeline",
            kind="columnar-keyed" if key_positions is not None else "columnar",
            groups=len(store.groups),
            root=prep.nodes_bottom_up[-1].label if prep.nodes_bottom_up else scan.label,
        )

    ctx.mark_started(scan)
    for pnode in prep.nodes_bottom_up:
        ctx.mark_started(pnode)

    values_of = store.values
    rows = table.rows
    scan_rows = 0
    stage_rows = [0] * len(stages)
    groups_read = 0
    groups_skipped = 0
    pages_skipped = 0
    rows_skipped = 0
    try:
        for group in store.groups:
            group_rows = group.row_count
            if conditions and _zone_skips(conditions, group):
                groups_skipped += 1
                pages_skipped += group.page_count
                rows_skipped += group_rows
                if charge_skipped:
                    # Parity mode: the skip saves the real work (tuple
                    # materialisation, predicate evaluation) but replays
                    # the simulated page charges, so every cost/buffer
                    # number matches a path that read the group.
                    _replay_group_charges(ctx, table, group)
                    scan_rows += group_rows
                    for position in range(first_mask):
                        stage_rows[position] += group_rows
                continue
            groups_read += 1
            _replay_group_charges(ctx, table, group)
            scan_rows += group_rows

            # -- columnar region: masks narrow a selection vector ------
            sel = None  # row indices into the group; None = all rows
            survivors = group_rows
            position = 0
            for stage in stages[:split]:
                if stage.kind == "mask":
                    # Conjuncts narrow the selection one by one: a row
                    # failing conjunct i never reaches conjunct i+1, the
                    # serial short-circuit (observable when a later
                    # conjunct raises, e.g. comparing a NULL).
                    for fn in stage.fn:

                        def resolve(column, group=group, sel=sel):
                            values = values_of(group, column)
                            return values if sel is None else values[sel]

                        mask = fn(resolve)
                        sel = _np.nonzero(mask)[0] if sel is None else sel[mask]
                        survivors = len(sel)
                        if survivors == 0:
                            break
                stage_rows[position] += survivors
                position += 1
                if survivors == 0:
                    break
            if survivors == 0:
                continue

            # -- materialise the region's output -----------------------
            full = sel is None or survivors == group_rows
            if prep.identity:
                if full:
                    batch = rows[group.start_row : group.end_row]
                else:
                    start = group.start_row
                    batch = [rows[start + i] for i in sel.tolist()]
            else:
                columns = []
                for column in prep.out_view:
                    values = values_of(group, column)
                    columns.append(values.tolist() if full else values[sel].tolist())
                if len(columns) == 1:
                    batch = [(v,) for v in columns[0]]
                else:
                    batch = list(zip(*columns))

            keys: list | None = None
            if key_positions is not None:
                key_columns = []
                for pos in key_positions:
                    values = values_of(group, prep.out_view[pos])
                    key_columns.append(
                        values.tolist() if full else values[sel].tolist()
                    )
                if len(key_columns) == 1:
                    keys = key_columns[0]
                else:
                    keys = list(zip(*key_columns))

            # -- fallback batch kernels above the region ----------------
            for stage in stages[split:]:
                if stage.kind == "collect":
                    if batch:
                        collector.observe_batch(batch)
                elif batch:
                    batch = stage.fn(batch)
                stage_rows[position] += len(batch)
                position += 1
            if batch:
                yield batch, keys
    finally:
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)
        telemetry.groups_read += groups_read
        telemetry.groups_skipped += groups_skipped
        telemetry.pages_skipped += pages_skipped
        telemetry.rows_skipped += rows_skipped
        per_scan = telemetry.by_scan.setdefault(
            scan.node_id,
            {"table": scan.table_name, "groups_read": 0,
             "groups_skipped": 0, "pages_skipped": 0},
        )
        per_scan["groups_read"] += groups_read
        per_scan["groups_skipped"] += groups_skipped
        per_scan["pages_skipped"] += pages_skipped

    # Full drain only, matching the serial collector's after-loop (not
    # ``finally``) semantics and the serial completion bookkeeping.
    if collector is not None:
        _finalize_collector(ctx, collector_node, collector)
    ctx.mark_completed(scan, scan_rows)
    for position, pnode in enumerate(prep.nodes_bottom_up):
        ctx.mark_completed(pnode, stage_rows[position])
    if tracer is not None:
        tracer.end(
            span,
            rows=stage_rows[-1] if stage_rows else scan_rows,
            groups_skipped=groups_skipped,
        )
