"""Columnar execution of leaf pipelines over page-group column arrays.

``execution_mode="columnar"`` keeps the whole engine on the batch path and
swaps the *inside* of leaf pipelines — a chain of filters/projections
(optionally topped by a statistics collector) over a base-table sequential
scan — for vectorized work over the table's :class:`ColumnStore`: one typed
NumPy array per column per *page group*, where a page group is exactly the
run of pages the serial batch scan yields as one batch.

Per page group the pipeline runs in column space:

* **Masks** — each filter whose predicates have exact NumPy kernels
  (:func:`repro.executor.vector.compile_mask_filter`) evaluates as one
  boolean mask over the group's arrays; masks narrow a selection vector
  stage by stage, so later filters only see surviving rows, like the
  serial short-circuit.
* **Takes** — pure-column projections never touch data at all: they just
  remap which base columns the pipeline's output view reads.
* **Zone-map skipping** — before any array is touched, the *first* mask
  stage's column-vs-constant conjuncts are tested against the group's
  per-column :class:`~repro.storage.columnar.ZoneMap`; a group whose
  min/max proves zero matches is skipped whole.  Skipping is only sound
  from the first mask because every stage below it is count-preserving
  (a take), so all skipped-group stage counts are known exactly.
* **Materialisation** — surviving rows become tuples again at the top of
  the columnar region: when the output view is the identity, the yielded
  batches are slices of the heap's own row tuples; otherwise tuples are
  rebuilt from ``ndarray.tolist()`` values, which round-trip exactly.
  Any stage without a columnar kernel (UDF filters, computed projections,
  the collector) runs above that point as the ordinary compiled batch
  kernel — per-operator fallback, not per-query.

Keyed variants (:func:`columnar_keyed_batches`) additionally read hash-join
probe keys / aggregation group keys straight off the column arrays, so the
consuming operator skips per-row key extraction.

Parity contract: rows, batch boundaries, ``CostBreakdown``, buffer
statistics and observed statistics are byte-identical to the batch path.
Charges are *replayed* — each group's page accesses and per-page CPU at the
moment the group is merged, streaming-stage totals from exact integer row
counts at end of stream — exactly like the morsel-parallel merge parent.
Skipped groups' treatment is governed by ``EngineConfig.zone_map_cost_mode``:

* ``"charge"`` (default) replays a skipped group's scan charges as if its
  pages had been read, so every simulated quantity stays byte-identical to
  the row/batch paths and the zone maps are purely a wall-clock win.
* ``"free"`` charges skipped groups nothing (no buffer access, no CPU, no
  downstream consumed-row charges), modelling storage that can actually
  avoid the I/O — simulated costs then *diverge* from the row path by
  design.  Completion *actuals* still include skipped rows in both modes:
  a zone-map skip is an exact, free cardinality observation (the group
  provably holds its row count below the first mask and zero survivors at
  it), so SCIA verdicts and EXPLAIN ANALYZE Q-error never mistake skipped
  rows for missing ones.

With ``columnar_parallel`` on, these per-group kernels run *inside* the
morsel workers: the range-affine scheduler from the parallel executor
partitions the page groups (which are the batch geometry) into contiguous
morsels, workers ship per-group batches plus zone-skip flags, and the
parent replays each group's charges — or its skip — at merge time, in
group order.  Determinism is inherited from both parents: the merge is the
parallel executor's ordered merge, and the per-group work is this module's
serial body.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterator, Sequence

try:  # Guarded import: the engine must load without NumPy installed.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None  # type: ignore[assignment]

from ..plans.logical import AggFunc, ColumnExpr, CompareOp, Comparison, InPredicate
from ..plans.physical import FilterNode, PlanNode, ProjectNode, SeqScanNode
from ..storage.columnar import ColumnGroup, ZoneMap, numpy_available
from ..storage.table import Table
from .agg_kernels import (
    ProbeIndex,
    factorize_array,
    factorize_values,
    float_group_sums,
    group_layout,
    int_group_sums,
    kernels_available,
    minmax_group_fold,
    object_group_minmax,
    object_group_sums,
)
from .collector import RuntimeCollector
from .iterators import _AggState, aggregate_items
from .parallel import (
    _MorselResult,
    _WorkerState,
    _extract_chain,
    _finalize_collector,
    _group_morsels,
    _merged_results,
    _morsel_seed,
    _record_morsel,
    _resolve_workers,
    _spill_read_windows,
    _staging_windows,
)
from .runtime import RuntimeContext
from .vector import (
    compile_batch_filter,
    compile_batch_projector,
    compile_mask_conjuncts,
)

Batch = list


@dataclass
class _ColumnarStage:
    """One pipeline stage, classified for columnar execution.

    ``kind`` is ``"mask"`` (NumPy mask filter; ``fn`` is the per-conjunct
    kernel list from :func:`compile_mask_conjuncts`), ``"take"`` (pure-column
    projection — a view remap, no runtime work), ``"batch_filter"`` /
    ``"batch_project"`` (tuple-space fallback kernels above the columnar
    region) or ``"collect"`` (the statistics collector).
    """

    kind: str
    node: PlanNode
    fn: object | None


@dataclass
class _Prepared:
    """A leaf pipeline compiled for columnar execution."""

    nodes_bottom_up: list[PlanNode]
    scan: SeqScanNode
    table: Table
    stages: list[_ColumnarStage]
    #: Number of leading stages that run in column space (masks/takes).
    split: int
    #: Output view at the top of the columnar region: schema position ->
    #: base column index.
    out_view: tuple[int, ...]
    #: Whether the output view is the identity over the full base schema
    #: (yield heap-row slices instead of rebuilding tuples).
    identity: bool
    #: Index (into ``stages``) of the first mask stage, or None.
    first_mask: int | None
    #: Zone-map skip conditions derived from the first mask stage:
    #: ``(base column, check(zone) -> bool)`` pairs; any True skips.
    conditions: tuple = ()


# ----------------------------------------------------------------------
# Pipeline compilation
# ----------------------------------------------------------------------


def _compile_stages(
    nodes_bottom_up: list[PlanNode], scan: SeqScanNode
) -> tuple[list[_ColumnarStage], tuple[int, ...], int]:
    """Split the chain into a columnar region and a batch-kernel tail.

    Walks bottom-up maintaining the *view* (schema position -> base column
    index).  Filters with full mask kernels and pure-column projections
    extend the region; the first stage without a columnar form ends it, and
    that stage plus everything above compiles as the ordinary serial batch
    kernels (under the serial cache keys, so closures are shared with
    batch-mode executions of the same plan).
    """
    view = list(range(len(scan.schema)))
    stages: list[_ColumnarStage] = []
    split = 0
    for node in nodes_bottom_up[:]:
        if isinstance(node, FilterNode):
            view_t = tuple(view)
            fns = node.compiled(
                "mask_filter",
                lambda n=node, v=view_t: compile_mask_conjuncts(
                    n.predicates, n.child.schema, v.__getitem__
                ),
            )
            if fns is None:
                break
            stages.append(_ColumnarStage("mask", node, fns))
        elif isinstance(node, ProjectNode):
            if not all(isinstance(item.expr, ColumnExpr) for item in node.output):
                break
            child_schema = node.child.schema
            view = [
                view[child_schema.index_of(item.expr.name)] for item in node.output
            ]
            stages.append(_ColumnarStage("take", node, None))
        else:
            break
        split += 1
    for node in nodes_bottom_up[split:]:
        if isinstance(node, FilterNode):
            fn = node.compiled(
                "batch_filter",
                lambda n=node: compile_batch_filter(n.predicates, n.child.schema),
            )
            stages.append(_ColumnarStage("batch_filter", node, fn))
        elif isinstance(node, ProjectNode):
            fn = node.compiled(
                "batch_project",
                lambda n=node: compile_batch_projector(n.output, n.child.schema),
            )
            stages.append(_ColumnarStage("batch_project", node, fn))
        else:  # StatsCollectorNode (the only other chain member)
            stages.append(_ColumnarStage("collect", node, None))
    return stages, tuple(view), split


def _comparison_check(op: CompareOp, value: object):
    """``check(zone) -> True`` when no value in [min, max] can satisfy
    ``column <op> value``.  Conservative: groups containing NULLs never
    skip (the serial path would raise on a NULL comparison, and skipping
    must not change behaviour), and incomparable types never skip."""

    def check(zone: ZoneMap) -> bool:
        if zone.null_count or zone.min_value is None:
            return False
        mn, mx = zone.min_value, zone.max_value
        try:
            if op is CompareOp.EQ:
                return value < mn or value > mx
            if op is CompareOp.LT:
                return mn >= value
            if op is CompareOp.LE:
                return mn > value
            if op is CompareOp.GT:
                return mx <= value
            if op is CompareOp.GE:
                return mx < value
            return mn == mx == value  # NE
        except TypeError:
            return False

    return check


def _in_check(values: tuple):
    def check(zone: ZoneMap) -> bool:
        if zone.null_count or zone.min_value is None:
            return False
        mn, mx = zone.min_value, zone.max_value
        try:
            return all(v < mn or v > mx for v in values)
        except TypeError:
            return False

    return check


def _zone_conditions(node: FilterNode, view: Sequence[int]) -> tuple:
    """Skip conditions provable from zone maps for one filter's conjuncts.

    Only column-vs-constant comparisons and column IN-lists yield
    conditions; any *one* disproved conjunct disproves the conjunction, so
    other conjunct shapes simply contribute nothing.
    """
    conditions = []
    schema = node.child.schema
    for pred in node.predicates:
        if isinstance(pred, Comparison):
            normalized = pred.normalized()
            pair = normalized.column_and_constant()
            if pair is not None:
                column, value = pair
                conditions.append(
                    (view[schema.index_of(column)],
                     _comparison_check(normalized.op, value))
                )
        elif isinstance(pred, InPredicate) and isinstance(pred.expr, ColumnExpr):
            conditions.append(
                (view[schema.index_of(pred.expr.name)],
                 _in_check(tuple(pred.values)))
            )
    return tuple(conditions)


def _prepare(node: PlanNode, ctx: RuntimeContext) -> _Prepared | None:
    """Compile ``node`` as a columnar leaf pipeline, or None to stay serial."""
    if not numpy_available():
        return None
    extracted = _extract_chain(node)
    if extracted is None:
        return None
    chain, scan = extracted
    table = ctx.catalog.table(scan.table_name)
    nodes_bottom_up = list(reversed(chain))
    stages, out_view, split = _compile_stages(nodes_bottom_up, scan)
    first_mask = next(
        (i for i, stage in enumerate(stages[:split]) if stage.kind == "mask"),
        None,
    )
    conditions: tuple = ()
    if first_mask is not None:
        # Every stage below the first mask is a take (count-preserving), so
        # a proven-empty group's per-stage counts are all known: group rows
        # below the mask, zero at and above it.  That is what makes a skip
        # charge-safe.
        view_below = list(range(len(scan.schema)))
        for stage in stages[:first_mask]:
            child_schema = stage.node.child.schema
            view_below = [
                view_below[child_schema.index_of(item.expr.name)]
                for item in stage.node.output
            ]
        conditions = _zone_conditions(stages[first_mask].node, view_below)
    identity = out_view == tuple(range(len(table.schema)))
    return _Prepared(
        nodes_bottom_up=nodes_bottom_up,
        scan=scan,
        table=table,
        stages=stages,
        split=split,
        out_view=out_view,
        identity=identity,
        first_mask=first_mask,
        conditions=conditions,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def columnar_pipeline(
    node: PlanNode, ctx: RuntimeContext
) -> Iterator[Batch] | None:
    """A columnar batch iterator for ``node``, or None to stay serial.

    A subtree qualifies when it is a leaf pipeline with at least one mask
    stage — without one, the columnar path would merely re-materialise the
    heap rows the batch scan already yields.  Bookkeeping (mark started /
    completed, charges, collector finalisation) is internal, mirroring the
    morsel-parallel merge parent.
    """
    prepared = _prepare(node, ctx)
    if prepared is None or prepared.first_mask is None:
        return None
    parallel = _parallel_pipeline(ctx, prepared)
    if parallel is not None:
        return parallel
    return _strip_keys(_run_pipeline(ctx, prepared, None))


def columnar_keyed_batches(
    node: PlanNode, ctx: RuntimeContext, key_positions: Sequence[int]
) -> Iterator[tuple[Batch, list]] | None:
    """A columnar ``(batch, keys)`` iterator for a keyed consumer, or None.

    ``key_positions`` index ``node``'s output schema; the yielded ``keys``
    list is aligned with the batch and holds exactly what the consumer's
    ``key_extractor`` would have produced (scalars for one position, tuples
    otherwise) — read off the column arrays instead of row by row.  Unlike
    plain pipelines a bare scan qualifies (the key extraction is the win),
    but the whole chain must run in column space: above a fallback batch
    kernel the arrays no longer describe the stream.
    """
    prepared = _prepare(node, ctx)
    if prepared is None or prepared.split != len(prepared.stages):
        return None
    return _run_pipeline(ctx, prepared, tuple(key_positions))


def _strip_keys(gen: Iterator[tuple[Batch, list]]) -> Iterator[Batch]:
    for batch, __keys in gen:
        yield batch


def columnar_probe_stream(
    node: PlanNode, ctx: RuntimeContext, key_position: int, hash_table: dict
):
    """A vectorized hash-join probe source — ``(stream, index)`` — or None.

    ``stream`` yields ``(batch, key_array)`` with the single key column
    read straight off the probe pipeline's arrays (dictionary columns stay
    in code space); ``index`` is the sorted build-key
    :class:`~repro.executor.agg_kernels.ProbeIndex` answering each batch
    in one ``searchsorted`` sweep.  Declines (None) when the chain leaves
    column space, the key column is neither int64 nor dictionary-encoded,
    or the build keys fall outside the kernel's exact comparison domain —
    the pipeline generator is never started before qualification, so a
    decline costs nothing.
    """
    config = ctx.config
    if not config.vectorized_probe or _np is None:
        return None
    prepared = _prepare(node, ctx)
    if prepared is None or prepared.split != len(prepared.stages):
        return None
    store = prepared.table.column_store(
        ctx.batch_size, config.columnar_dictionary_max
    )
    column = prepared.out_view[key_position]
    encoding = store.encodings[column]
    if encoding == "int64":
        index = ProbeIndex.from_int_keys(hash_table)
    elif encoding == "dict":
        index = ProbeIndex.from_dict_keys(hash_table, store.dictionaries[column])
    else:
        return None
    if index is None:
        return None
    ctx.vector.probe_pipelines += 1
    return _run_pipeline(ctx, prepared, (key_position,), raw_keys=True), index


def columnar_vectorized_aggregate(node, ctx: RuntimeContext):
    """Fully vectorized hash aggregation over a prepared column view.

    Returns ``(groups, input_rows, grant)`` — the contract
    ``morsel_preaggregate`` established — or None to stay on the serial
    fold.  The input pipeline runs in column space end to end; the
    selected key and argument arrays are concatenated into whole-stream
    arrays, keys factorize in first-occurrence order, and each aggregate
    folds once globally in the agg_kernels — per-page-group partial folds
    would not merge bit-exactly for float SUM/AVG, one whole-stream fold
    reproduces the serial accumulator byte for byte (see
    ``executor/agg_kernels.py``).  Qualification is static (encodings and
    expression shapes only), so a qualified pipeline never bails out
    after charges started.
    """
    config = ctx.config
    if not config.vectorized_agg or not kernels_available():
        return None
    group_positions, agg_items, __ = aggregate_items(node)
    child_schema = node.child.schema
    specs: list[tuple[AggFunc, int | None]] = []
    for out_index, func, __arg in agg_items:
        arg = node.output[out_index].expr.arg
        if arg is None:
            specs.append((func, None))
        elif type(arg) is ColumnExpr:
            specs.append((func, child_schema.index_of(arg.name)))
        else:
            return None  # computed argument: the serial fold handles it
    prepared = _prepare(node.child, ctx)
    if prepared is None or prepared.split != len(prepared.stages):
        return None
    out_view = prepared.out_view
    store = prepared.table.column_store(
        ctx.batch_size, config.columnar_dictionary_max
    )
    encodings = store.encodings
    key_cols = [out_view[p] for p in group_positions]
    specs = [
        (func, None if position is None else out_view[position])
        for func, position in specs
    ]
    arg_cols = {column for __, column in specs if column is not None}
    # Dictionary key columns factorize directly on their code arrays; any
    # column feeding an aggregate argument is collected in value space.
    as_codes = {
        column
        for column in key_cols
        if encodings[column] == "dict" and column not in arg_cols
    }
    chunks: dict[int, list] = {column: [] for column in {*key_cols, *arg_cols}}
    values_of = store.values
    input_rows = 0
    grant: int | None = None
    for group, sel, survivors in _run_pipeline(
        ctx, prepared, None, yield_groups=True
    ):
        if grant is None:
            grant = ctx.commit_memory(node)
        input_rows += survivors
        for column, parts in chunks.items():
            array = (
                group.arrays[column]
                if column in as_codes
                else values_of(group, column)
            )
            parts.append(array if sel is None else array[sel])

    if key_cols:
        ctx.columnar.keyed_pipelines += 1
    vec = ctx.vector
    vec.agg_pipelines += 1
    vec.rows_folded += input_rows
    per_node = vec.by_node.setdefault(
        node.node_id, {"kind": "aggregate", "rows_folded": 0, "groups": 0}
    )
    per_node["rows_folded"] += input_rows
    if input_rows == 0:
        return {}, 0, grant

    streams = {
        column: (parts[0] if len(parts) == 1 else _np.concatenate(parts))
        for column, parts in chunks.items()
    }

    # ---- factorize the group keys (first-occurrence order) ------------
    dictionaries = store.dictionaries
    if not key_cols:
        codes = _np.zeros(input_rows, dtype=_np.int64)
        group_keys: list = [()]
    else:
        per_codes = []
        per_keys = []
        for column in key_cols:
            array = streams[column]
            if column in as_codes:
                col_codes, uniq, __f = factorize_array(array)
                decoded = dictionaries[column].values
                keys = [
                    None if code < 0 else decoded[code]
                    for code in uniq.tolist()
                ]
            elif encodings[column] == "int64":
                col_codes, uniq, __f = factorize_array(array)
                keys = uniq.tolist()
            else:
                # Float/object keys: Python-dict factorization replicates
                # the serial grouping's hash/identity semantics exactly
                # (signed zeros share a group, NaN objects do not).
                col_codes, keys = factorize_values(array.tolist())
            per_codes.append(col_codes)
            per_keys.append(keys)
        if len(key_cols) == 1:
            codes = per_codes[0]
            group_keys = per_keys[0]
        else:
            span = 1
            for keys in per_keys:
                span *= len(keys)
            if span < 2**62:
                combined = per_codes[0]
                for col_codes, keys in zip(per_codes[1:], per_keys[1:]):
                    combined = combined * len(keys) + col_codes
                codes, __u, firsts = factorize_array(combined)
                group_keys = [
                    tuple(
                        per_keys[j][int(per_codes[j][first])]
                        for j in range(len(key_cols))
                    )
                    for first in firsts.tolist()
                ]
            else:  # cardinality product overflows: tuple-space dict
                columns = [
                    [keys[code] for code in col_codes.tolist()]
                    for col_codes, keys in zip(per_codes, per_keys)
                ]
                codes, group_keys = factorize_values(list(zip(*columns)))
    n_groups = len(group_keys)

    # ---- fold every aggregate over the whole stream --------------------
    # The stable-gather layout (bincount + argsort) depends only on the
    # codes, so it is computed once and shared by every numeric fold.
    layout = group_layout(codes, n_groups)
    counts = layout[0].tolist()
    code_list: list | None = None
    folded: list = [None] * len(specs)
    for i, (func, column) in enumerate(specs):
        if column is None or func is AggFunc.COUNT:
            continue  # COUNT folds entirely from the group sizes
        array = streams[column]
        kind = encodings[column]
        if func is AggFunc.SUM or func is AggFunc.AVG:
            if kind == "float64":
                folded[i] = (
                    "total",
                    float_group_sums(array, codes, n_groups, layout=layout),
                )
            elif kind == "int64":
                folded[i] = (
                    "total",
                    int_group_sums(array, codes, n_groups, layout=layout),
                )
            else:
                if code_list is None:
                    code_list = codes.tolist()
                folded[i] = (
                    "total",
                    object_group_sums(array.tolist(), code_list, n_groups),
                )
        else:
            maximum = func is AggFunc.MAX
            slot = "maximum" if maximum else "minimum"
            if kind in ("float64", "int64"):
                folded[i] = (
                    slot,
                    minmax_group_fold(
                        array, codes, n_groups, maximum, layout=layout
                    ),
                )
            else:
                if code_list is None:
                    code_list = codes.tolist()
                folded[i] = (
                    slot,
                    object_group_minmax(
                        array.tolist(), code_list, n_groups, maximum
                    ),
                )

    per_node["groups"] += n_groups
    groups: dict = {}
    for g in range(n_groups):
        states = []
        for i, (func, __column) in enumerate(specs):
            state = _AggState(func)
            state.count = counts[g]
            if folded[i] is not None:
                setattr(state, folded[i][0], folded[i][1][g])
            states.append(state)
        groups[group_keys[g]] = states
    return groups, input_rows, grant


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _replay_group_charges(ctx: RuntimeContext, table: Table, group: ColumnGroup):
    """One group's scan charges, exactly as the serial scan interleaves
    them ahead of the batch yield: a sequential buffer access plus per-page
    tuple CPU for every page of the group."""
    access = ctx.buffer_pool.access
    charge_cpu = ctx.clock.charge_cpu
    cpu_per_tuple = ctx.cost_model.params.cpu_per_tuple
    table_id = table.table_id
    per_page = table.rows_per_page
    total_rows = table.row_count
    for page_no in range(group.first_page, group.last_page):
        access(table_id, page_no, sequential=True)
        charge_cpu(min(per_page, total_rows - page_no * per_page) * cpu_per_tuple)


def _charge_streaming_stages(ctx, stages, scan_rows, stage_rows) -> None:
    """End-of-stream charges for every filter/projection, in serial firing
    order (bottom-up) from exact integer row counts — same formulas and
    ordering as the serial generators' ``finally`` blocks."""
    params = ctx.cost_model.params
    consumed = scan_rows
    for position, stage in enumerate(stages):
        if stage.kind in ("mask", "batch_filter"):
            per_row = max(1, len(stage.node.predicates)) * params.cpu_per_compare
            ctx.clock.charge_cpu(consumed * per_row)
        elif stage.kind in ("take", "batch_project"):
            ctx.clock.charge_cpu(consumed * params.cpu_per_tuple)
        consumed = stage_rows[position]


def _resolver(values_of, group: ColumnGroup, sel):
    """The mask kernels' column resolver: the group's column arrays
    narrowed by the current selection vector (``sel is None`` = all rows).
    Shared by the serial pipeline body and the forked morsel workers —
    conjuncts re-resolve after every narrowing, preserving the serial
    short-circuit."""

    def resolve(column):
        values = values_of(group, column)
        return values if sel is None else values[sel]

    return resolve


def _zone_skips(conditions: tuple, group: ColumnGroup) -> bool:
    zones = group.zones
    for position, check in conditions:
        if check(zones[position]):
            return True
    return False


def _mark_pipeline_completed(
    ctx: RuntimeContext,
    prep: _Prepared,
    scan_rows: int,
    stage_rows: list[int],
    skipped_free_rows: int,
) -> None:
    """Completion actuals for a columnar pipeline, zone-map skips included.

    ``skipped_free_rows`` were excluded from charges (free mode) but are
    exact observations: a skipped group provably contributes its full row
    count to the scan and to every count-preserving stage below the first
    mask, and zero rows at the mask and above — so the actual-row counts
    SCIA and EXPLAIN ANALYZE consume stay exact, not deflated by skipping.
    """
    first_mask = prep.first_mask
    ctx.mark_completed(prep.scan, scan_rows + skipped_free_rows)
    for position, pnode in enumerate(prep.nodes_bottom_up):
        actual = stage_rows[position]
        if skipped_free_rows and first_mask is not None and position < first_mask:
            actual += skipped_free_rows
        ctx.mark_completed(pnode, actual)


def _run_pipeline(
    ctx: RuntimeContext,
    prep: _Prepared,
    key_positions: tuple[int, ...] | None,
    *,
    raw_keys: bool = False,
    yield_groups: bool = False,
) -> Iterator:
    """The columnar pipeline body: per group, zone-check then mask/take in
    column space, materialise, run fallback kernels, yield.

    Two column-space consumer modes skip row materialisation details:
    ``raw_keys`` yields ``(batch, key_array)`` with the single key column
    as a NumPy array (dictionary columns stay in code space) for the
    vectorized join probe; ``yield_groups`` yields
    ``(group, sel, survivors)`` triples for the vectorized aggregate —
    both only offered by callers that verified the whole chain runs in
    column space (``split == len(stages)``)."""
    config = ctx.config
    table = prep.table
    store = table.column_store(ctx.batch_size, config.columnar_dictionary_max)
    scan = prep.scan
    stages = prep.stages
    split = prep.split
    charge_skipped = config.zone_map_cost_mode == "charge"
    conditions = prep.conditions if config.zone_map_skipping else ()
    first_mask = prep.first_mask if conditions else None

    telemetry = ctx.columnar
    telemetry.pipelines += 1
    pipeline_id = telemetry.pipelines
    if key_positions is not None:
        telemetry.keyed_pipelines += 1

    collector: RuntimeCollector | None = None
    collector_node = None
    for stage in stages:
        if stage.kind == "collect":
            collector_node = stage.node
            collector = RuntimeCollector(
                collector_node, collector_node.child.schema, config
            )

    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"columnar-pipeline-{pipeline_id}",
            "pipeline",
            kind="columnar-keyed" if key_positions is not None else "columnar",
            groups=len(store.groups),
            root=prep.nodes_bottom_up[-1].label if prep.nodes_bottom_up else scan.label,
        )

    ctx.mark_started(scan)
    for pnode in prep.nodes_bottom_up:
        ctx.mark_started(pnode)

    values_of = store.values
    rows = table.rows
    scan_rows = 0
    stage_rows = [0] * len(stages)
    groups_read = 0
    groups_skipped = 0
    pages_skipped = 0
    rows_skipped = 0
    # Rows of free-mode-skipped groups: excluded from charges by design,
    # but a zone-map skip is an exact, free cardinality observation — the
    # group provably holds ``row_count`` scan rows and zero mask survivors
    # — so completion actuals add these back (SCIA verdicts and EXPLAIN
    # ANALYZE Q-error must not treat proven rows as missing).
    skipped_free_rows = 0
    try:
        for group in store.groups:
            group_rows = group.row_count
            if conditions and _zone_skips(conditions, group):
                groups_skipped += 1
                pages_skipped += group.page_count
                rows_skipped += group_rows
                if charge_skipped:
                    # Parity mode: the skip saves the real work (tuple
                    # materialisation, predicate evaluation) but replays
                    # the simulated page charges, so every cost/buffer
                    # number matches a path that read the group.
                    _replay_group_charges(ctx, table, group)
                    scan_rows += group_rows
                    for position in range(first_mask):
                        stage_rows[position] += group_rows
                else:
                    skipped_free_rows += group_rows
                continue
            groups_read += 1
            _replay_group_charges(ctx, table, group)
            scan_rows += group_rows

            # -- columnar region: masks narrow a selection vector ------
            sel = None  # row indices into the group; None = all rows
            survivors = group_rows
            position = 0
            for stage in stages[:split]:
                if stage.kind == "mask":
                    # Conjuncts narrow the selection one by one: a row
                    # failing conjunct i never reaches conjunct i+1, the
                    # serial short-circuit (observable when a later
                    # conjunct raises, e.g. comparing a NULL).
                    for fn in stage.fn:
                        mask = fn(_resolver(values_of, group, sel))
                        sel = _np.nonzero(mask)[0] if sel is None else sel[mask]
                        survivors = len(sel)
                        if survivors == 0:
                            break
                stage_rows[position] += survivors
                position += 1
                if survivors == 0:
                    break
            if survivors == 0:
                continue

            if yield_groups:
                # Column-space consumer: the narrowed group is the batch.
                # The commit/charge interleaving matches the serial keyed
                # path — the consumer sees the group at the same clock
                # position a materialised batch would have arrived at.
                yield group, sel, survivors
                continue

            # -- materialise the region's output -----------------------
            full = sel is None or survivors == group_rows
            if prep.identity:
                if full:
                    batch = rows[group.start_row : group.end_row]
                else:
                    start = group.start_row
                    batch = [rows[start + i] for i in sel.tolist()]
            else:
                columns = []
                for column in prep.out_view:
                    values = values_of(group, column)
                    columns.append(values.tolist() if full else values[sel].tolist())
                if len(columns) == 1:
                    batch = [(v,) for v in columns[0]]
                else:
                    batch = list(zip(*columns))

            keys: object = None
            if key_positions is not None:
                if raw_keys:
                    # Vectorized probe: the key column as a raw array
                    # (dictionary codes included), no per-row decode.
                    array = group.arrays[prep.out_view[key_positions[0]]]
                    keys = array if full else array[sel]
                else:
                    key_columns = []
                    for pos in key_positions:
                        values = values_of(group, prep.out_view[pos])
                        key_columns.append(
                            values.tolist() if full else values[sel].tolist()
                        )
                    if len(key_columns) == 1:
                        keys = key_columns[0]
                    else:
                        keys = list(zip(*key_columns))

            # -- fallback batch kernels above the region ----------------
            for stage in stages[split:]:
                if stage.kind == "collect":
                    if batch:
                        collector.observe_batch(batch)
                elif batch:
                    batch = stage.fn(batch)
                stage_rows[position] += len(batch)
                position += 1
            if batch:
                yield batch, keys
    finally:
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)
        telemetry.groups_read += groups_read
        telemetry.groups_skipped += groups_skipped
        telemetry.pages_skipped += pages_skipped
        telemetry.rows_skipped += rows_skipped
        per_scan = telemetry.by_scan.setdefault(
            scan.node_id,
            {"table": scan.table_name, "groups_read": 0,
             "groups_skipped": 0, "pages_skipped": 0, "rows_skipped": 0},
        )
        per_scan["groups_read"] += groups_read
        per_scan["groups_skipped"] += groups_skipped
        per_scan["pages_skipped"] += pages_skipped
        per_scan["rows_skipped"] += rows_skipped

    # Full drain only, matching the serial collector's after-loop (not
    # ``finally``) semantics and the serial completion bookkeeping.
    if collector is not None:
        _finalize_collector(ctx, collector_node, collector)
    _mark_pipeline_completed(
        ctx, prep, scan_rows, stage_rows, skipped_free_rows
    )
    if tracer is not None:
        tracer.end(
            span,
            rows=stage_rows[-1] if stage_rows else scan_rows,
            groups_skipped=groups_skipped,
        )


# ----------------------------------------------------------------------
# Columnar morsels: the column kernels inside forked workers
# ----------------------------------------------------------------------


def _parallel_pipeline(
    ctx: RuntimeContext, prep: _Prepared
) -> Iterator[Batch] | None:
    """Fan the columnar kernels across the morsel worker pool, or None.

    The page groups *are* the batch geometry, so the morsel scheduler's
    range-affine partitioning applies unchanged: workers run the per-group
    columnar body (zone-map check, mask narrowing, materialisation,
    fallback kernels) over contiguous group ranges and ship per-group
    batches plus skip flags; the parent replays each group's charges — or
    its skip, per ``zone_map_cost_mode`` — at merge time, in group order,
    exactly like the serial columnar loop.  Stays serial (None) when the
    knob is off, the table is too small to split, or no pool resolves.
    """
    config = ctx.config
    if not config.columnar_parallel:
        return None
    store = prep.table.column_store(ctx.batch_size, config.columnar_dictionary_max)
    groups = [(group.first_page, group.last_page) for group in store.groups]
    morsels = _group_morsels(groups, config.morsel_pages)
    if len(morsels) < config.parallel_min_morsels:
        return None
    workers, use_pool = _resolve_workers(ctx, len(morsels))
    if not use_pool:
        return None
    return _run_parallel(ctx, prep, store, groups, morsels, workers, use_pool)


def _compile_runner(
    prep: _Prepared,
    store,
    morsels: list[tuple[int, int]],
    config,
    exact_stats: bool,
    conditions: tuple,
):
    """The worker-side morsel executor for columnar morsels.

    A closure over the synced column store (arrays reach forked workers
    copy-on-write, like the row heap) that replicates the serial per-group
    columnar body minus everything parent-owned: charges, telemetry and
    skip accounting happen at merge time, so the worker only computes.
    """
    stages = prep.stages
    split = prep.split
    out_view = prep.out_view
    identity = prep.identity
    table_rows = prep.table.rows
    values_of = store.values
    store_groups = store.groups

    def run(index: int) -> _MorselResult:
        started = time.perf_counter()
        collector: RuntimeCollector | None = None
        for stage in stages:
            if stage.kind == "collect":
                collector = RuntimeCollector(
                    stage.node,
                    stage.node.child.schema,
                    config,
                    collect_reservoirs=not exact_stats,
                    reservoir_seed=(
                        None if exact_stats else _morsel_seed(config.seed, index)
                    ),
                )
        first_group, last_group = morsels[index]
        batches: list[Batch] = []
        counts: list[tuple[int, ...]] = []
        skips: list[bool] = []
        shipped = 0
        for group in store_groups[first_group:last_group]:
            group_rows = group.row_count
            if conditions and _zone_skips(conditions, group):
                skips.append(True)
                batches.append([])
                counts.append((0,) * len(stages))
                continue
            skips.append(False)
            group_counts = [0] * len(stages)
            sel = None
            survivors = group_rows
            position = 0
            alive = True
            for stage in stages[:split]:
                if stage.kind == "mask":
                    for fn in stage.fn:
                        mask = fn(_resolver(values_of, group, sel))
                        sel = _np.nonzero(mask)[0] if sel is None else sel[mask]
                        survivors = len(sel)
                        if survivors == 0:
                            break
                group_counts[position] = survivors
                position += 1
                if survivors == 0:
                    alive = False
                    break
            batch: Batch = []
            if alive:
                full = sel is None or survivors == group_rows
                if identity:
                    if full:
                        batch = table_rows[group.start_row : group.end_row]
                    else:
                        start = group.start_row
                        batch = [table_rows[start + i] for i in sel.tolist()]
                else:
                    columns = []
                    for column in out_view:
                        values = values_of(group, column)
                        columns.append(
                            values.tolist() if full else values[sel].tolist()
                        )
                    if len(columns) == 1:
                        batch = [(v,) for v in columns[0]]
                    else:
                        batch = list(zip(*columns))
                for stage in stages[split:]:
                    if stage.kind == "collect":
                        if batch:
                            collector.observe_batch(batch)
                    elif batch:
                        batch = stage.fn(batch)
                    group_counts[position] = len(batch)
                    position += 1
            batches.append(batch)
            counts.append(tuple(group_counts))
            shipped += len(batch)
        partial = collector.export_partial() if collector is not None else None
        return _MorselResult(
            index=index,
            batches=batches,
            counts=counts,
            partial=partial,
            replay=None,
            groups_out=None,
            shipped_rows=shipped,
            elapsed=time.perf_counter() - started,
            pid=os.getpid(),
            group_skips=skips,
        )

    return run


def _run_parallel(
    ctx: RuntimeContext,
    prep: _Prepared,
    store,
    groups: list[tuple[int, int]],
    morsels: list[tuple[int, int]],
    workers: int,
    use_pool: bool,
) -> Iterator[Batch]:
    """The merging parent for a columnar-morsel pipeline.

    Merge-time replay mirrors the serial columnar loop group by group —
    skip accounting per ``zone_map_cost_mode`` included — so rows, charges,
    buffer stats and observed statistics match the serial columnar path
    (and, under ``"charge"``, the batch path) byte for byte.
    """
    config = ctx.config
    exact_stats = config.parallel_stats == "exact"
    stages = prep.stages
    table = prep.table
    scan = prep.scan
    charge_skipped = config.zone_map_cost_mode == "charge"
    conditions = prep.conditions if config.zone_map_skipping else ()
    first_mask = prep.first_mask if conditions else None

    telemetry = ctx.columnar
    telemetry.pipelines += 1
    telemetry.parallel_pipelines += 1
    parallel = ctx.parallel
    parallel.pipelines += 1
    pipeline_id = parallel.pipelines
    parallel.workers = max(parallel.workers, workers)

    collector_node = None
    merged: RuntimeCollector | None = None
    for stage in stages:
        if stage.kind == "collect":
            collector_node = stage.node
            merged = RuntimeCollector(
                collector_node, collector_node.child.schema, config
            )

    tracer = ctx.tracer
    span = None
    if tracer is not None:
        span = tracer.begin(
            f"columnar-pipeline-{telemetry.pipelines}",
            "pipeline",
            kind="columnar-parallel",
            workers=workers,
            morsels=len(morsels),
            groups=len(store.groups),
            root=(
                prep.nodes_bottom_up[-1].label
                if prep.nodes_bottom_up
                else scan.label
            ),
        )

    ctx.mark_started(scan)
    for pnode in prep.nodes_bottom_up:
        ctx.mark_started(pnode)

    runner = _compile_runner(prep, store, morsels, config, exact_stats, conditions)
    state = _WorkerState(
        rows=table.rows,
        rows_per_page=table.rows_per_page,
        groups=groups,
        morsels=morsels,
        stages=[],
        config=config,
        exact_stats=exact_stats,
        runner=runner,
    )
    windows = _staging_windows(ctx, workers, config.morsel_pages)
    spill_windows = _spill_read_windows(ctx, workers, config.morsel_pages)

    scan_rows = 0
    stage_rows = [0] * len(stages)
    groups_read = 0
    groups_skipped = 0
    pages_skipped = 0
    rows_skipped = 0
    skipped_free_rows = 0
    try:
        results = _merged_results(
            state, workers, use_pool, windows, config.parallel_prefetch, parallel,
            spill_windows=spill_windows,
        )
        for result in results:
            first_group, last_group = morsels[result.index]
            _record_morsel(parallel, pipeline_id, result)
            if tracer is not None:
                tracer.morsel_merged(
                    pipeline_id, result.index, result.pid,
                    result.elapsed, result.shipped_rows,
                )
            for offset, group in enumerate(store.groups[first_group:last_group]):
                group_rows = group.row_count
                if result.group_skips[offset]:
                    groups_skipped += 1
                    pages_skipped += group.page_count
                    rows_skipped += group_rows
                    if charge_skipped:
                        _replay_group_charges(ctx, table, group)
                        scan_rows += group_rows
                        for position in range(first_mask):
                            stage_rows[position] += group_rows
                    else:
                        skipped_free_rows += group_rows
                    continue
                groups_read += 1
                _replay_group_charges(ctx, table, group)
                scan_rows += group_rows
                for position, produced in enumerate(result.counts[offset]):
                    stage_rows[position] += produced
                batch = result.batches[offset]
                if merged is not None and exact_stats:
                    # The collector tops the chain, so the shipped batches
                    # are its input in input order: replay the serial
                    # sampling RNG over them directly.
                    merged.replay_reservoirs(batch)
                if batch:
                    yield batch
            if merged is not None and result.partial is not None:
                merged.absorb_partial(result.partial)
    finally:
        _charge_streaming_stages(ctx, stages, scan_rows, stage_rows)
        telemetry.groups_read += groups_read
        telemetry.groups_skipped += groups_skipped
        telemetry.pages_skipped += pages_skipped
        telemetry.rows_skipped += rows_skipped
        per_scan = telemetry.by_scan.setdefault(
            scan.node_id,
            {"table": scan.table_name, "groups_read": 0,
             "groups_skipped": 0, "pages_skipped": 0, "rows_skipped": 0},
        )
        per_scan["groups_read"] += groups_read
        per_scan["groups_skipped"] += groups_skipped
        per_scan["pages_skipped"] += pages_skipped
        per_scan["rows_skipped"] += rows_skipped

    if merged is not None:
        _finalize_collector(ctx, collector_node, merged)
    _mark_pipeline_completed(
        ctx, prep, scan_rows, stage_rows, skipped_free_rows
    )
    if tracer is not None:
        tracer.end(
            span,
            rows=stage_rows[-1] if stage_rows else scan_rows,
            groups_skipped=groups_skipped,
        )
